"""Save/load: full round-trips of programs and pipelines."""

import json

import pytest

from repro.arch.node import NodeConfig
from repro.compose.jacobi import build_jacobi_program
from repro.compose.kernels import build_saxpy_program
from repro.diagram import serialize
from repro.diagram.program import LoopUntil, VisualProgram
from repro.arch.switch import Endpoint, DeviceKind


def _jacobi_prog() -> VisualProgram:
    return build_jacobi_program(NodeConfig(), (5, 5, 5)).program


class TestRoundTrip:
    def test_jacobi_program_round_trips(self):
        prog = _jacobi_prog()
        text = serialize.dumps(prog)
        back = serialize.loads(text)
        assert serialize.program_to_dict(back) == serialize.program_to_dict(prog)

    def test_saxpy_round_trips(self):
        prog = build_saxpy_program(NodeConfig(), 64).program
        back = serialize.loads(serialize.dumps(prog))
        assert serialize.program_to_dict(back) == serialize.program_to_dict(prog)

    def test_loaded_program_still_generates_microcode(self):
        from repro.codegen.generator import MicrocodeGenerator

        node = NodeConfig()
        prog = serialize.loads(serialize.dumps(_jacobi_prog()))
        machine_prog = MicrocodeGenerator(node).generate(prog)
        assert len(machine_prog.images) == 2

    def test_control_flow_survives(self):
        prog = _jacobi_prog()
        back = serialize.loads(serialize.dumps(prog))
        loops = [op for op in back.control if isinstance(op, LoopUntil)]
        assert len(loops) == 1
        assert loops[0].condition_pipeline == 1

    def test_condition_survives(self):
        prog = _jacobi_prog()
        back = serialize.loads(serialize.dumps(prog))
        cond = back.pipelines[1].condition
        assert cond is not None and cond.comparison == "lt"

    def test_file_round_trip(self, tmp_path):
        prog = _jacobi_prog()
        path = str(tmp_path / "prog.json")
        serialize.save(prog, path)
        back = serialize.load(path)
        assert back.name == prog.name


class TestEndpoints:
    def test_endpoint_round_trip(self):
        ep = Endpoint(DeviceKind.SHIFT_DELAY, 1, "tap3")
        assert serialize.endpoint_from_dict(serialize.endpoint_to_dict(ep)) == ep

    def test_bad_endpoint_rejected(self):
        with pytest.raises(serialize.SerializationError):
            serialize.endpoint_from_dict({"kind": "nope", "device": 0, "port": "a"})


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(serialize.SerializationError, match="invalid JSON"):
            serialize.loads("{not json")

    def test_wrong_format_marker(self):
        with pytest.raises(serialize.SerializationError, match="not a serialized"):
            serialize.loads(json.dumps({"format": "something-else"}))

    def test_corrupt_pipeline_record(self):
        prog_dict = serialize.program_to_dict(_jacobi_prog())
        del prog_dict["pipelines"][0]["als_uses"]
        with pytest.raises(serialize.SerializationError):
            serialize.program_from_dict(prog_dict)

    def test_unknown_control_op(self):
        with pytest.raises(serialize.SerializationError):
            serialize.control_from_dict({"op": "mystery"})
