"""PipelineDiagram: construction, queries, graph structure."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.dma import DMASpec, Direction
from repro.arch.funcunit import Opcode
from repro.arch.switch import (
    DeviceKind,
    fu_in,
    fu_out,
    mem_read,
    mem_write,
    sd_in,
    sd_tap,
)
from repro.diagram.pipeline import (
    ConditionSpec,
    DiagramError,
    InputMod,
    InputModKind,
    PipelineDiagram,
)


@pytest.fixture()
def diagram() -> PipelineDiagram:
    d = PipelineDiagram(number=0, label="test")
    d.add_als(0, ALSKind.DOUBLET, first_fu=4)
    d.add_als(1, ALSKind.SINGLET, first_fu=0)
    return d


class TestALSManagement:
    def test_duplicate_als_rejected(self, diagram):
        with pytest.raises(DiagramError, match="already placed"):
            diagram.add_als(0, ALSKind.DOUBLET, first_fu=4)

    def test_remove_als_scrubs_references(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.connect(mem_read(0), fu_in(4, "a"))
        diagram.connect(fu_out(4), fu_in(0, "a"))
        diagram.set_delay(4, "b", 3)
        diagram.remove_als(0)
        assert 4 not in diagram.fu_ops
        assert diagram.connections == []
        assert diagram.delays == {}

    def test_remove_missing_als(self, diagram):
        with pytest.raises(DiagramError):
            diagram.remove_als(9)

    def test_bypassed_fu_not_programmable(self):
        d = PipelineDiagram()
        d.add_als(0, ALSKind.DOUBLET, first_fu=0, bypassed_slots=(1,))
        with pytest.raises(DiagramError, match="bypassed"):
            d.set_fu_op(1, Opcode.FADD)

    def test_active_fus_of_use(self):
        d = PipelineDiagram()
        use = d.add_als(0, ALSKind.TRIPLET, first_fu=6, bypassed_slots=(1,))
        assert use.active_fus == (6, 8)

    def test_slot_of(self, diagram):
        use = diagram.als_uses[0]
        assert use.slot_of(5) == 1
        with pytest.raises(DiagramError):
            use.slot_of(9)


class TestOpsAndInputs:
    def test_set_op_requires_placed_als(self, diagram):
        with pytest.raises(DiagramError, match="no ALS"):
            diagram.set_fu_op(20, Opcode.FADD)

    def test_clear_op(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.clear_fu_op(4)
        assert diagram.active_fus() == []

    def test_input_source_resolution(self, diagram):
        diagram.connect(mem_read(0), fu_in(4, "a"))
        diagram.set_input_mod(4, "b", InputMod(InputModKind.CONSTANT, value=2.0))
        kind, payload = diagram.input_source(4, "a")
        assert kind == "switch" and payload == mem_read(0)
        kind, payload = diagram.input_source(4, "b")
        assert kind == "mod" and payload.value == 2.0
        assert diagram.input_source(0, "a") is None

    def test_bad_port_rejected(self, diagram):
        with pytest.raises(DiagramError):
            diagram.set_input_mod(4, "c", InputMod(InputModKind.CONSTANT))

    def test_delay_bookkeeping(self, diagram):
        diagram.set_delay(4, "a", 5)
        assert diagram.delays[(4, "a")] == 5
        diagram.set_delay(4, "a", 0)  # zero clears
        assert (4, "a") not in diagram.delays
        with pytest.raises(DiagramError):
            diagram.set_delay(4, "a", -1)


class TestConnections:
    def test_duplicate_connection_rejected(self, diagram):
        diagram.connect(mem_read(0), fu_in(4, "a"))
        with pytest.raises(DiagramError, match="already drawn"):
            diagram.connect(mem_read(0), fu_in(4, "a"))

    def test_disconnect(self, diagram):
        diagram.connect(mem_read(0), fu_in(4, "a"))
        diagram.disconnect(mem_read(0), fu_in(4, "a"))
        assert diagram.connections == []
        with pytest.raises(DiagramError):
            diagram.disconnect(mem_read(0), fu_in(4, "a"))

    def test_driver_and_sinks(self, diagram):
        diagram.connect(fu_out(4), fu_in(0, "a"))
        diagram.connect(fu_out(4), mem_write(3))
        assert diagram.driver_of(fu_in(0, "a")) == fu_out(4)
        assert diagram.driver_of(fu_in(0, "b")) is None
        assert len(diagram.sinks_of(fu_out(4))) == 2

    def test_used_endpoints_includes_dma(self, diagram):
        spec = DMASpec(
            device_kind=DeviceKind.MEMORY,
            device=7,
            direction=Direction.READ,
            variable="x",
        )
        diagram.set_dma(mem_read(7), spec)
        assert mem_read(7) in diagram.used_endpoints()

    def test_dma_only_on_memory_or_cache(self, diagram):
        spec = DMASpec(
            device_kind=DeviceKind.MEMORY,
            device=0,
            direction=Direction.READ,
            variable="x",
        )
        with pytest.raises(DiagramError):
            diagram.set_dma(fu_in(4, "a"), spec)


class TestPlaneQueries:
    def test_planes_touched_direct(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.connect(mem_read(2), fu_in(4, "a"))
        diagram.connect(fu_out(4), mem_write(2))
        assert diagram.planes_touched_by_fu(4) == {2}

    def test_planes_touched_through_sd(self, diagram):
        diagram.set_fu_op(4, Opcode.FABS)
        diagram.connect(mem_read(3), sd_in(0))
        diagram.connect(sd_tap(0, 1), fu_in(4, "a"))
        assert diagram.planes_touched_by_fu(4) == {3}

    def test_plane_writers(self, diagram):
        diagram.connect(fu_out(4), mem_write(1))
        diagram.connect(fu_out(0), mem_write(1))
        writers = diagram.plane_writers()
        assert len(writers[1]) == 2


class TestGraph:
    def test_topological_order(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.set_fu_op(5, Opcode.FMUL)
        diagram.set_fu_op(0, Opcode.FSUB)
        diagram.connect(fu_out(4), fu_in(5, "a"))
        diagram.connect(fu_out(5), fu_in(0, "a"))
        assert diagram.topological_order() == [4, 5, 0]

    def test_internal_edges_in_graph(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.set_fu_op(5, Opcode.FMUL)
        diagram.set_input_mod(5, "a", InputMod(InputModKind.INTERNAL, src_slot=0))
        assert diagram.topological_order() == [4, 5]

    def test_cycle_detected(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.set_fu_op(5, Opcode.FMUL)
        diagram.connect(fu_out(4), fu_in(5, "a"))
        diagram.connect(fu_out(5), fu_in(4, "a"))
        with pytest.raises(DiagramError, match="cycle"):
            diagram.topological_order()

    def test_feedback_is_not_a_cycle(self, diagram):
        diagram.set_fu_op(5, Opcode.MAX)
        diagram.set_input_mod(5, "b", InputMod(InputModKind.FEEDBACK))
        assert diagram.topological_order() == [5]


class TestCopyAndCondition:
    def test_copy_is_independent(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.connect(mem_read(0), fu_in(4, "a"))
        dup = diagram.copy(number=7)
        dup.connect(mem_read(1), fu_in(4, "b"))
        assert dup.number == 7
        assert len(diagram.connections) == 1
        assert len(dup.connections) == 2

    def test_condition_validation(self):
        with pytest.raises(DiagramError):
            ConditionSpec(fu=0, comparison="!=", threshold=0.0)

    def test_condition_evaluation(self):
        spec = ConditionSpec(fu=0, comparison="lt", threshold=1.0)
        assert spec.evaluate(0.5)
        assert not spec.evaluate(1.5)
        ge = ConditionSpec(fu=0, comparison="ge", threshold=1.0)
        assert ge.evaluate(1.0)

    def test_stats(self, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        stats = diagram.stats()
        assert stats["als"] == 2
        assert stats["fus"] == 1
