"""VisualProgram: declarations, pipeline editing ops, control flow."""

import pytest

from repro.diagram.pipeline import ConditionSpec, PipelineDiagram
from repro.diagram.program import (
    CacheSwap,
    Declaration,
    ExecPipeline,
    Halt,
    LoopUntil,
    ProgramError,
    Repeat,
    SwapVars,
    VisualProgram,
)


@pytest.fixture()
def prog() -> VisualProgram:
    p = VisualProgram(name="t")
    p.insert_pipeline(PipelineDiagram(label="a"))
    p.insert_pipeline(PipelineDiagram(label="b"))
    return p


class TestDeclarations:
    def test_declare(self, prog):
        decl = prog.declare("u", plane=0, length=64)
        assert decl.name == "u"

    def test_duplicate_rejected(self, prog):
        prog.declare("u", plane=0, length=64)
        with pytest.raises(ProgramError):
            prog.declare("u", plane=1, length=64)

    def test_bad_declaration_rejected(self):
        with pytest.raises(ProgramError):
            Declaration(name="", plane=0, length=4)
        with pytest.raises(ProgramError):
            Declaration(name="x", plane=0, length=0)
        with pytest.raises(ProgramError):
            Declaration(name="x", plane=-1, length=4)


class TestPipelineOps:
    """The control-panel operations of §5."""

    def test_insert_renumbers(self, prog):
        prog.insert_pipeline(PipelineDiagram(label="c"), at=1)
        assert [p.label for p in prog.pipelines] == ["a", "c", "b"]
        assert [p.number for p in prog.pipelines] == [0, 1, 2]

    def test_delete_renumbers(self, prog):
        prog.delete_pipeline(0)
        assert [p.label for p in prog.pipelines] == ["b"]
        assert prog.pipelines[0].number == 0

    def test_copy_lands_after_original(self, prog):
        idx = prog.copy_pipeline(0)
        assert idx == 1
        assert [p.label for p in prog.pipelines] == ["a", "a", "b"]

    def test_copy_to_explicit_position(self, prog):
        prog.copy_pipeline(0, to=2)
        assert [p.label for p in prog.pipelines] == ["a", "b", "a"]

    def test_copies_are_independent(self, prog):
        prog.copy_pipeline(0)
        prog.pipelines[1].label = "changed"
        assert prog.pipelines[0].label == "a"

    def test_bad_indices(self, prog):
        with pytest.raises(ProgramError):
            prog.delete_pipeline(5)
        with pytest.raises(ProgramError):
            prog.insert_pipeline(PipelineDiagram(), at=9)


class TestControlFlow:
    def test_exec_validates_index(self, prog):
        prog.add_control(ExecPipeline(1))
        with pytest.raises(ProgramError):
            prog.add_control(ExecPipeline(5))

    def test_loop_until_requires_condition(self, prog):
        with pytest.raises(ProgramError, match="no condition"):
            prog.add_control(
                LoopUntil(body=(ExecPipeline(0),), condition_pipeline=0)
            )
        prog.pipelines[0].set_condition(
            ConditionSpec(fu=0, comparison="lt", threshold=1e-6)
        )
        prog.add_control(
            LoopUntil(body=(ExecPipeline(0),), condition_pipeline=0)
        )

    def test_nested_bodies_validated(self, prog):
        with pytest.raises(ProgramError):
            prog.add_control(Repeat(body=(ExecPipeline(9),), times=2))

    def test_swap_vars_validated(self, prog):
        prog.declare("u", plane=0, length=8)
        prog.declare("v", plane=1, length=8)
        prog.declare("w", plane=2, length=16)
        prog.add_control(SwapVars("u", "v"))
        with pytest.raises(ProgramError, match="undeclared"):
            prog.add_control(SwapVars("u", "zz"))
        with pytest.raises(ProgramError, match="equal lengths"):
            prog.add_control(SwapVars("u", "w"))

    def test_repeat_negative_rejected(self):
        with pytest.raises(ProgramError):
            Repeat(body=(), times=-1)

    def test_loop_until_bounds(self):
        with pytest.raises(ProgramError):
            LoopUntil(body=(), condition_pipeline=0, max_iterations=0)

    def test_default_control_runs_all_then_halts(self, prog):
        ops = prog.default_control()
        assert ops == [ExecPipeline(0), ExecPipeline(1), Halt()]

    def test_effective_control_prefers_explicit(self, prog):
        prog.add_control(ExecPipeline(1))
        assert prog.effective_control() == [ExecPipeline(1)]

    def test_cache_swap_accepted(self, prog):
        prog.add_control(CacheSwap(caches=(0, 1)))

    def test_stats(self, prog):
        stats = prog.stats()
        assert stats["pipelines"] == 2
        assert stats["control_ops"] == 3  # default: 2 execs + halt
