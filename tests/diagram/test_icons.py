"""Icons: pads, subimages, bypassed doublets."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.switch import DeviceKind, fu_in, fu_out, mem_read, sd_tap
from repro.diagram.icons import (
    ALSIcon,
    CacheIcon,
    MemoryPlaneIcon,
    ShiftDelayIcon,
    icon_for_endpoint_device,
    make_als_icon,
)


class TestALSIcon:
    def test_pads_per_unit(self):
        icon = make_als_icon(0, ALSKind.TRIPLET, first_fu=20)
        # each active unit: two inputs + one output
        assert len(icon.input_pads()) == 6
        assert len(icon.output_pads()) == 3

    def test_pad_endpoints_use_global_fu_indices(self):
        icon = make_als_icon(12, ALSKind.TRIPLET, first_fu=20)
        eps = {p.endpoint for p in icon.pads()}
        assert fu_in(20, "a") in eps
        assert fu_out(22) in eps

    def test_bypassed_doublet_hides_pads(self):
        """The second doublet form of Fig. 4 exposes only one unit."""
        icon = make_als_icon(5, ALSKind.DOUBLET, first_fu=6, bypassed_slots=(1,))
        assert icon.active_slots == (0,)
        assert len(icon.output_pads()) == 1
        assert fu_out(7) not in {p.endpoint for p in icon.pads()}

    def test_bad_bypass_rejected(self):
        with pytest.raises(ValueError):
            make_als_icon(0, ALSKind.SINGLET, first_fu=0, bypassed_slots=(1,))

    def test_subimages_mark_double_boxes(self):
        icon = make_als_icon(0, ALSKind.DOUBLET, first_fu=0)
        subs = icon.subimages()
        assert subs[0][1] is True   # integer unit drawn as double box
        assert subs[1][1] is False

    def test_subimages_mark_bypassed(self):
        icon = make_als_icon(0, ALSKind.DOUBLET, first_fu=0, bypassed_slots=(1,))
        assert icon.subimages()[1][2] is True

    def test_names(self):
        assert make_als_icon(3, ALSKind.SINGLET, 3).icon_id == "S3"
        assert make_als_icon(12, ALSKind.TRIPLET, 20).icon_id == "T12"


class TestDeviceIcons:
    def test_memory_icon_pads(self):
        icon = MemoryPlaneIcon("M2", DeviceKind.MEMORY, 2)
        labels = {p.label for p in icon.pads()}
        assert labels == {"read", "write"}
        assert mem_read(2) in {p.endpoint for p in icon.output_pads()}

    def test_cache_icon_pads(self):
        icon = CacheIcon("C1", DeviceKind.CACHE, 1)
        assert len(icon.input_pads()) == 1
        assert len(icon.output_pads()) == 1

    def test_sd_icon_taps(self):
        icon = ShiftDelayIcon("SD0", DeviceKind.SHIFT_DELAY, 0, n_taps=4)
        assert len(icon.output_pads()) == 4
        assert sd_tap(0, 3) in {p.endpoint for p in icon.output_pads()}

    def test_factory(self):
        assert isinstance(
            icon_for_endpoint_device(DeviceKind.MEMORY, 1), MemoryPlaneIcon
        )
        assert isinstance(
            icon_for_endpoint_device(DeviceKind.CACHE, 1), CacheIcon
        )
        assert isinstance(
            icon_for_endpoint_device(DeviceKind.SHIFT_DELAY, 1), ShiftDelayIcon
        )
        with pytest.raises(ValueError):
            icon_for_endpoint_device(DeviceKind.FU, 1)
