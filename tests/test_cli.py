"""The nsc-vpe command-line interface."""

import json

import pytest

from repro.arch.node import NodeConfig
from repro.cli import build_parser, main
from repro.compose.kernels import build_saxpy_program
from repro.diagram import serialize


@pytest.fixture()
def saved_program(tmp_path):
    prog = build_saxpy_program(NodeConfig(), 32).program
    path = tmp_path / "saxpy.json"
    serialize.save(prog, str(path))
    return str(path)


class TestInfoCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "FLONET" in out
        assert "640 MFLOPS" in out
        assert "GFLOPS system peak" in out

    def test_info_subset(self, capsys):
        assert main(["--subset", "info"]) == 0
        out = capsys.readouterr().out
        assert "320 MFLOPS" in out

    def test_icons(self, capsys):
        assert main(["icons"]) == 0
        assert "triplet" in capsys.readouterr().out


class TestProgramCommands:
    def test_check_clean(self, saved_program, capsys):
        assert main(["check", saved_program]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_broken_returns_nonzero(self, tmp_path, capsys):
        prog = build_saxpy_program(NodeConfig(), 32).program
        prog.pipelines[0].fu_ops.pop(sorted(prog.pipelines[0].fu_ops)[0])
        path = tmp_path / "broken.json"
        serialize.save(prog, str(path))
        assert main(["check", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_disasm(self, saved_program, capsys):
        assert main(["disasm", saved_program]) == 0
        out = capsys.readouterr().out
        assert ".instruction 0" in out
        assert "fscale" in out

    def test_render(self, saved_program, capsys):
        assert main(["render", saved_program]) == 0
        assert "saxpy" in capsys.readouterr().out

    def test_render_svg(self, saved_program, capsys):
        assert main(["render", saved_program, "--svg"]) == 0
        assert "<svg" in capsys.readouterr().out

    def test_render_bad_index(self, saved_program, capsys):
        assert main(["render", saved_program, "--pipeline", "7"]) == 1

    def test_editor_session_save_accepted(self, tmp_path, capsys):
        """The CLI also accepts EditorSession saves (program + geometry)."""
        from repro.editor.replay import replay_program

        prog = build_saxpy_program(NodeConfig(), 32).program
        session = replay_program(prog)
        path = tmp_path / "session.json"
        session.save(str(path))
        assert main(["check", str(path)]) == 0


class TestSolverCommands:
    def test_jacobi(self, capsys):
        assert main(["jacobi", "-n", "6", "--eps", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "MFLOPS" in out

    def test_solve_rb_sor(self, capsys):
        assert main(
            ["solve", "rb-sor", "-n", "6", "--eps", "1e-4", "--omega", "1.4"]
        ) == 0
        assert "converged=True" in capsys.readouterr().out

    def test_solve_nonconvergent_returns_nonzero(self, capsys):
        assert main(
            ["solve", "jacobi", "-n", "6", "--eps", "0", "--max-sweeps", "3"]
        ) == 1


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
