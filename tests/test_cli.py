"""The nsc-vpe command-line interface."""

import json

import pytest

from repro.arch.node import NodeConfig
from repro.cli import build_parser, main
from repro.compose.kernels import build_saxpy_program
from repro.diagram import serialize
from repro.service.results import canonical_line


@pytest.fixture()
def saved_program(tmp_path):
    prog = build_saxpy_program(NodeConfig(), 32).program
    path = tmp_path / "saxpy.json"
    serialize.save(prog, str(path))
    return str(path)


class TestInfoCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "FLONET" in out
        assert "640 MFLOPS" in out
        assert "GFLOPS system peak" in out

    def test_info_subset(self, capsys):
        assert main(["--subset", "info"]) == 0
        out = capsys.readouterr().out
        assert "320 MFLOPS" in out

    def test_icons(self, capsys):
        assert main(["icons"]) == 0
        assert "triplet" in capsys.readouterr().out


class TestProgramCommands:
    def test_check_clean(self, saved_program, capsys):
        assert main(["check", saved_program]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_broken_returns_nonzero(self, tmp_path, capsys):
        prog = build_saxpy_program(NodeConfig(), 32).program
        prog.pipelines[0].fu_ops.pop(sorted(prog.pipelines[0].fu_ops)[0])
        path = tmp_path / "broken.json"
        serialize.save(prog, str(path))
        assert main(["check", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_disasm(self, saved_program, capsys):
        assert main(["disasm", saved_program]) == 0
        out = capsys.readouterr().out
        assert ".instruction 0" in out
        assert "fscale" in out

    def test_render(self, saved_program, capsys):
        assert main(["render", saved_program]) == 0
        assert "saxpy" in capsys.readouterr().out

    def test_render_svg(self, saved_program, capsys):
        assert main(["render", saved_program, "--svg"]) == 0
        assert "<svg" in capsys.readouterr().out

    def test_render_bad_index(self, saved_program, capsys):
        assert main(["render", saved_program, "--pipeline", "7"]) == 1

    def test_editor_session_save_accepted(self, tmp_path, capsys):
        """The CLI also accepts EditorSession saves (program + geometry)."""
        from repro.editor.replay import replay_program

        prog = build_saxpy_program(NodeConfig(), 32).program
        session = replay_program(prog)
        path = tmp_path / "session.json"
        session.save(str(path))
        assert main(["check", str(path)]) == 0


class TestSolverCommands:
    def test_jacobi(self, capsys):
        assert main(["jacobi", "-n", "6", "--eps", "1e-4"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "MFLOPS" in out

    def test_solve_rb_sor(self, capsys):
        assert main(
            ["solve", "rb-sor", "-n", "6", "--eps", "1e-4", "--omega", "1.4"]
        ) == 0
        assert "converged=True" in capsys.readouterr().out

    def test_solve_nonconvergent_returns_nonzero(self, capsys):
        assert main(
            ["solve", "jacobi", "-n", "6", "--eps", "0", "--max-sweeps", "3"]
        ) == 1


class TestServiceCommands:
    def test_sweep_runs_batch_with_cache_summary(self, tmp_path, capsys):
        results = tmp_path / "results.jsonl"
        assert main([
            "sweep", "--grids", "5,6", "--methods", "jacobi",
            "--eps", "1e-3", "--max-sweeps", "500", "--repeats", "2",
            "--results", str(results),
        ]) == 0
        out = capsys.readouterr().out
        assert "4/4 jobs ok" in out
        assert "cache: 2 hits, 2 misses" in out
        assert len(results.read_text().splitlines()) == 4

    def test_sweep_rerun_reproduces_records(self, tmp_path, capsys):
        argv = ["sweep", "--grids", "5", "--methods", "jacobi,rb-gs",
                "--eps", "1e-3", "--max-sweeps", "500", "--repeats", "1"]
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(argv + ["--results", str(a)]) == 0
        assert main(argv + ["--results", str(b)]) == 0

        def canonical(path):
            return [canonical_line(json.loads(line))
                    for line in path.read_text().splitlines()]

        assert canonical(a) == canonical(b)

    def test_batch_runs_jobs_file(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"method": "jacobi", "n": 5, "eps": 1e-3, "max_sweeps": 500},
            {"method": "rb-gs", "n": 5, "eps": 1e-3, "max_sweeps": 500},
        ]))
        assert main(["batch", str(jobs)]) == 0
        out = capsys.readouterr().out
        assert "2/2 jobs ok" in out

    def test_batch_missing_file_clean_error(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.json")]) == 2
        assert "cannot read jobs file" in capsys.readouterr().err

    def test_batch_invalid_json_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["batch", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_batch_bad_spec_clean_error(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([{"method": "warp-drive"}]))
        assert main(["batch", str(jobs)]) == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_sweep_bad_axes_clean_error(self, capsys):
        assert main(["sweep", "--methods", "frobnicate"]) == 2
        assert "bad sweep axes" in capsys.readouterr().err

    def test_resume_requires_results(self, capsys):
        assert main(["sweep", "--grids", "5", "--methods", "jacobi",
                     "--resume"]) == 2
        assert "--resume needs --results" in capsys.readouterr().err

    def test_sweep_resume_skips_completed_jobs(self, tmp_path, capsys):
        results = tmp_path / "results.jsonl"
        argv = ["sweep", "--grids", "5,6", "--methods", "jacobi",
                "--eps", "1e-3", "--max-sweeps", "500", "--repeats", "1",
                "--results", str(results)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 resumed" in out
        # resumed jobs are redeemed, not re-appended
        assert len(results.read_text().splitlines()) == 2

    def test_batch_retries_transient_faults(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.service.faults import ENV_VAR

        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"method": "jacobi", "n": 5, "eps": 1e-3, "max_sweeps": 500},
        ]))
        monkeypatch.setenv(ENV_VAR, json.dumps({
            "seed": 1,
            "rules": [{"site": "worker.exec", "attempts": [1]}],
        }))
        assert main(["batch", str(jobs), "--max-attempts", "3"]) == 0
        assert "1 retried" in capsys.readouterr().out

    def test_stats_reports_reliability(self, tmp_path, capsys,
                                       monkeypatch):
        from repro.service.faults import ENV_VAR

        results = tmp_path / "results.jsonl"
        monkeypatch.setenv(ENV_VAR, json.dumps({
            "seed": 1,
            "rules": [{"site": "worker.exec", "attempts": [1]}],
        }))
        assert main(["sweep", "--grids", "5", "--methods", "jacobi",
                     "--eps", "1e-3", "--max-sweeps", "500",
                     "--repeats", "1", "--max-attempts", "3",
                     "--results", str(results)]) == 0
        capsys.readouterr()
        assert main(["stats", "--results", str(results)]) == 0
        out = capsys.readouterr().out
        assert "reliability:" in out
        assert "retried jobs" in out

    def test_batch_failure_sets_exit_code(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps({"jobs": [
            {"method": "jacobi", "n": 5, "eps": 1e-3, "max_sweeps": 500},
            # nz=5 cannot split across 2 nodes
            {"method": "jacobi", "n": 5, "hypercube_dim": 1, "eps": 1e-3},
        ]}))
        assert main(["batch", str(jobs)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "1/2 jobs ok" in out
        assert "DecompositionError" in out


class TestSubsetUniformity:
    """--subset must work before or after every subcommand (satellite)."""

    def test_subset_after_subcommand(self, capsys):
        assert main(["info", "--subset"]) == 0
        assert "320 MFLOPS" in capsys.readouterr().out

    def test_subset_before_still_wins_over_subparser_default(self, capsys):
        assert main(["--subset", "info"]) == 0
        assert "320 MFLOPS" in capsys.readouterr().out

    def test_every_subcommand_accepts_subset(self):
        parser = build_parser()
        args = parser.parse_args(["jacobi", "--subset"])
        assert args.subset is True
        args = parser.parse_args(["render", "x.json", "--subset"])
        assert args.subset is True
        args = parser.parse_args(["sweep", "--subset"])
        assert args.subset is True

    def test_batch_subset_flag_defaults_jobs(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(json.dumps([
            {"method": "jacobi", "n": 5, "eps": 1e-3, "max_sweeps": 500},
        ]))
        assert main(["batch", str(jobs), "--subset"]) == 0
        assert "subset" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
