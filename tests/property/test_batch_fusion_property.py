"""Property: batch-fused == per-job-fused == reference, on any sweep.

For randomly drawn mixed sweeps (solver mix, grid size, seeded starts),
the three execution paths — the reference interpreter, N per-job fused
runs, and slab-stacked batch fusion — must agree on everything a job
computes: the solution grids, cycle counts, flop counts, convergence
verdicts, and loop iteration counts.  The tier stamps are the only
things allowed to differ.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.service.runner import BatchRunner
from repro.service.sweep import SweepSpec

#: record keys that must be identical across all three execution paths
_COMPUTED_KEYS = ("converged", "sweeps", "cycles", "error_vs_analytic")


def _spec(backend, n, methods, seeds):
    return SweepSpec(
        grids=(n,),
        methods=methods,
        seeds=seeds,
        eps=1e-3,
        max_sweeps=80,
        backend=backend,
    )


def _run(spec, batch_fusion="off"):
    jobs = [
        # keep_fields so the property covers the grids themselves
        job.__class__.from_dict({**job.to_dict(), "keep_fields": True})
        for job in spec.expand()
    ]
    runner = BatchRunner(workers=1, batch_fusion=batch_fusion)
    records, summary = runner.run(jobs)
    assert summary.succeeded == len(jobs)
    return records


@settings(max_examples=5, deadline=None)
@given(
    n=st.sampled_from([5, 6]),
    methods=st.lists(
        st.sampled_from(["jacobi", "rb-gs", "rb-sor"]),
        min_size=1, max_size=2, unique=True,
    ).map(tuple),
    seeds=st.lists(
        st.integers(0, 7), min_size=1, max_size=3, unique=True
    ).map(tuple),
)
def test_three_paths_agree_on_everything_computed(n, methods, seeds):
    reference = _run(_spec("reference", n, methods, seeds))
    per_job = _run(_spec("fast", n, methods, seeds))
    batched = _run(_spec("fast", n, methods, seeds), batch_fusion="auto")

    assert len(reference) == len(per_job) == len(batched)
    for ref, fused, slab in zip(reference, per_job, batched):
        for key in _COMPUTED_KEYS:
            assert ref[key] == fused[key] == slab[key], key
        assert ref["metrics"]["flops"] \
            == fused["metrics"]["flops"] == slab["metrics"]["flops"]
        np.testing.assert_array_equal(
            ref["fields"]["u"], fused["fields"]["u"]
        )
        np.testing.assert_array_equal(
            ref["fields"]["u"], slab["fields"]["u"]
        )
    # with >1 seed the same-program jacobi/rb jobs really slabbed; with
    # a single seed every group is a singleton and auto == off
    if len(seeds) >= 2:
        assert any(r.get("tier") == "batch_fused" for r in batched)
