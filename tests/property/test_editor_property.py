"""Property-based editor invariants: undo reverses arbitrary action
sequences, and the checker never lets an illegal diagram through silently.
"""


from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.funcunit import Opcode
from repro.arch.switch import fu_in, mem_read
from repro.editor.session import EditorSession


def _snapshot(session):
    """Semantic state of the current diagram (geometry excluded)."""
    d = session.diagram
    return (
        tuple(sorted(d.als_uses)),
        tuple(sorted((fu, a.opcode.value) for fu, a in d.fu_ops.items())),
        tuple(d.connections),
        tuple(sorted(d.input_mods)),
        tuple(sorted(d.delays.items())),
    )


_actions = st.lists(
    st.sampled_from(["place", "connect", "op", "delay"]),
    min_size=1,
    max_size=12,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(actions=_actions, data=st.data())
def test_undo_unwinds_any_action_sequence(actions, data):
    session = EditorSession()
    snapshots = [_snapshot(session)]
    for action in actions:
        if action == "place":
            kind = data.draw(st.sampled_from(["singlet", "doublet", "triplet"]))
            session.select_icon(kind)
            icon = session.drag_to(*session.canvas.suggest_position())
            if icon is None:
                continue
        elif action == "connect":
            fus = [
                fu
                for use in session.diagram.als_uses.values()
                for fu in use.active_fus
            ]
            if not fus:
                continue
            fu = data.draw(st.sampled_from(fus))
            port = data.draw(st.sampled_from(["a", "b"]))
            plane = data.draw(st.integers(0, 3))
            if not session.connect(mem_read(plane), fu_in(fu, port)).ok:
                continue
        elif action == "op":
            fus = [
                fu
                for use in session.diagram.als_uses.values()
                for fu in use.active_fus
            ]
            if not fus:
                continue
            fu = data.draw(st.sampled_from(fus))
            op = data.draw(st.sampled_from([Opcode.FADD, Opcode.FABS,
                                            Opcode.PASS]))
            if not session.assign_op(fu, op).ok:
                continue
        else:  # delay
            fus = [
                fu
                for use in session.diagram.als_uses.values()
                for fu in use.active_fus
            ]
            if not fus:
                continue
            fu = data.draw(st.sampled_from(fus))
            if not session.set_delay(fu, "a", data.draw(st.integers(1, 8))).ok:
                continue
        snapshots.append(_snapshot(session))

    # unwind everything; each undo must restore the prior snapshot
    for expected in reversed(snapshots[:-1]):
        if not session.commands.can_undo:
            break
        session.undo()
        assert _snapshot(session) == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_rejected_edits_never_mutate(data):
    """Whatever illegal thing we try, the semantic state is untouched."""
    session = EditorSession()
    session.select_icon("doublet")
    icon = session.drag_to(40, 2)
    fu = icon.first_fu
    session.connect(mem_read(0), fu_in(fu, "a"))
    before = _snapshot(session)
    bad = data.draw(
        st.sampled_from(
            [
                lambda: session.connect(mem_read(1), fu_in(fu, "a")),  # occupied
                lambda: session.connect(mem_read(1), fu_in(fu, "b")),  # 2nd plane
                lambda: session.assign_op(fu + 1, Opcode.IADD),  # wrong circuitry
                lambda: session.set_delay(fu, "a", 10_000),      # too long
            ]
        )
    )
    report = bad()
    assert not report.ok
    assert _snapshot(session) == before
