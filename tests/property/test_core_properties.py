"""Property-based tests on core data structures and invariants."""

import numpy as np
from hypothesis import given, strategies as st

from repro.arch.params import NSCParameters
from repro.arch.regfile import RegisterFileAllocator, RegisterFileOverflow
from repro.arch.router import HypercubeTopology
from repro.arch.shift_delay import shift_stream
from repro.sim.multinode import gray_code


class TestShiftStreamProperties:
    @given(
        data=st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=64),
        shift=st.integers(-70, 70),
    )
    def test_interior_elements_preserved(self, data, shift):
        """output[i] == input[i+shift] wherever i+shift is in range."""
        x = np.asarray(data, dtype=np.float64)
        out = shift_stream(x, shift)
        assert out.size == x.size
        for i in range(x.size):
            j = i + shift
            if 0 <= j < x.size:
                assert out[i] == x[j]
            else:
                assert out[i] == 0.0

    @given(
        data=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=32),
        a=st.integers(-8, 8),
        b=st.integers(-8, 8),
    )
    def test_same_sign_shifts_compose(self, data, a, b):
        """shift(a) then shift(b) == shift(a+b) when a and b do not change
        direction (no fill values re-enter the window)."""
        if a * b < 0:
            return
        x = np.asarray(data, dtype=np.float64)
        two_step = shift_stream(shift_stream(x, a), b)
        one_step = shift_stream(x, a + b)
        np.testing.assert_array_equal(two_step, one_step)

    @given(data=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=32))
    def test_zero_shift_identity(self, data):
        x = np.asarray(data, dtype=np.float64)
        np.testing.assert_array_equal(shift_stream(x, 0), x)


class TestRegfileProperties:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("const"), st.floats(-100, 100,
                                                      allow_nan=False)),
                st.tuples(st.just("delay"), st.integers(1, 20)),
            ),
            max_size=20,
        )
    )
    def test_usage_never_exceeds_capacity(self, ops):
        rf = RegisterFileAllocator(capacity=32)
        port_cycle = 0
        for kind, value in ops:
            try:
                if kind == "const":
                    rf.alloc_constant(float(value))
                else:
                    rf.alloc_delay("a" if port_cycle % 2 == 0 else "b",
                                   int(value))
                    port_cycle += 1
            except RegisterFileOverflow:
                pass
            assert 0 <= rf.words_used <= rf.capacity


class TestHypercubeProperties:
    @given(
        dim=st.integers(1, 7),
        data=st.data(),
    )
    def test_route_length_equals_hamming_distance(self, dim, data):
        topo = HypercubeTopology(dim)
        src = data.draw(st.integers(0, topo.n_nodes - 1))
        dst = data.draw(st.integers(0, topo.n_nodes - 1))
        path = topo.route(src, dst)
        assert len(path) - 1 == topo.distance(src, dst)
        # each hop flips exactly one bit
        for a, b in zip(path, path[1:]):
            assert (a ^ b).bit_count() == 1
        # no node visited twice
        assert len(set(path)) == len(path)

    @given(dim=st.integers(1, 8))
    def test_gray_code_is_hamiltonian_on_the_cube(self, dim):
        n = 1 << dim
        codes = [gray_code(i) for i in range(n)]
        assert sorted(codes) == list(range(n))
        for a, b in zip(codes, codes[1:]):
            assert (a ^ b).bit_count() == 1


class TestParameterProperties:
    @given(
        singlets=st.integers(0, 8),
        doublets=st.integers(0, 8),
        triplets=st.integers(0, 8),
    )
    def test_consistent_compositions_always_accepted(
        self, singlets, doublets, triplets
    ):
        total = singlets + 2 * doublets + 3 * triplets
        if total == 0:
            return
        p = NSCParameters(
            n_functional_units=total,
            n_singlets=singlets,
            n_doublets=doublets,
            n_triplets=triplets,
        )
        assert p.n_als == singlets + doublets + triplets
        assert p.peak_mflops_per_node == total * p.clock_mhz
