"""Property: the fast backend agrees with the reference on random Jacobi
programs — random grid shapes, tolerances, and input fields."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.sim.machine import NSCMachine

_dims = st.integers(min_value=3, max_value=6)


@st.composite
def jacobi_cases(draw):
    shape = (draw(_dims), draw(_dims), draw(_dims))
    eps = draw(st.sampled_from([1e-2, 1e-3, 1e-4]))
    max_sweeps = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return shape, eps, max_sweeps, seed


@settings(max_examples=20, deadline=None)
@given(case=jacobi_cases())
def test_random_jacobi_programs_agree(case):
    shape, eps, max_sweeps, seed = case
    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps,
                                 max_iterations=max_sweeps)
    program = MicrocodeGenerator(node).generate(setup.program)
    rng = np.random.default_rng(seed)
    u0 = rng.random(shape)
    f = rng.standard_normal(shape)

    runs = {}
    for backend in ("reference", "fast"):
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, u0, f)
        result = machine.run()
        runs[backend] = (machine, result)

    (m_ref, r_ref), (m_fast, r_fast) = runs["reference"], runs["fast"]
    assert r_ref.total_cycles == r_fast.total_cycles
    assert r_ref.total_flops == r_fast.total_flops
    assert r_ref.instructions_issued == r_fast.instructions_issued
    assert r_ref.converged == r_fast.converged
    assert r_ref.loop_iterations == r_fast.loop_iterations
    np.testing.assert_array_equal(
        m_ref.get_variable("u"), m_fast.get_variable("u")
    )
    np.testing.assert_array_equal(
        m_ref.get_variable("u_new"), m_fast.get_variable("u_new")
    )
    assert m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
