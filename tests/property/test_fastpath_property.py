"""Property: the fast backend agrees with the reference on random Jacobi
programs — random grid shapes, tolerances, input fields, and (for the
whole-program compiled engine) random *control scripts* with nested
``Repeat``, ``LoopUntil``, ``SwapVars``, and ``CacheSwap`` ops — drawn
across the coverage dimensions the fused engine handles: residual-skew
(ablation) builds, ``keep_outputs`` retention, and rearmed interrupt
configurations."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.interrupts import InterruptKind
from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.diagram.program import (
    CacheSwap,
    ExecPipeline,
    Halt,
    LoopUntil,
    Repeat,
    SwapVars,
)
from repro.sim.machine import NSCMachine

_dims = st.integers(min_value=3, max_value=6)

#: Armed-set variations the fused engine must replay exactly; handlers
#: are deliberately absent (they force — and get — the fallback path).
_REARM_VARIANTS = (
    (),
    (("arm", InterruptKind.FP_OVERFLOW), ("arm", InterruptKind.FP_INVALID)),
    (("disarm", InterruptKind.CONDITION_FALSE),),
    (("arm", InterruptKind.FP_OVERFLOW),
     ("disarm", InterruptKind.PIPELINE_COMPLETE)),
)


@st.composite
def jacobi_cases(draw):
    shape = (draw(_dims), draw(_dims), draw(_dims))
    eps = draw(st.sampled_from([1e-2, 1e-3, 1e-4]))
    max_sweeps = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return shape, eps, max_sweeps, seed


@settings(max_examples=20, deadline=None)
@given(case=jacobi_cases())
def test_random_jacobi_programs_agree(case):
    shape, eps, max_sweeps, seed = case
    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps,
                                 max_iterations=max_sweeps)
    program = MicrocodeGenerator(node).generate(setup.program)
    rng = np.random.default_rng(seed)
    u0 = rng.random(shape)
    f = rng.standard_normal(shape)

    runs = {}
    for backend in ("reference", "fast"):
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, u0, f)
        result = machine.run()
        runs[backend] = (machine, result)

    (m_ref, r_ref), (m_fast, r_fast) = runs["reference"], runs["fast"]
    assert r_ref.total_cycles == r_fast.total_cycles
    assert r_ref.total_flops == r_fast.total_flops
    assert r_ref.instructions_issued == r_fast.instructions_issued
    assert r_ref.converged == r_fast.converged
    assert r_ref.loop_iterations == r_fast.loop_iterations
    np.testing.assert_array_equal(
        m_ref.get_variable("u"), m_fast.get_variable("u")
    )
    np.testing.assert_array_equal(
        m_ref.get_variable("u_new"), m_fast.get_variable("u_new")
    )
    assert m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()


# ----------------------------------------------------------------------
# random control scripts
# ----------------------------------------------------------------------
@st.composite
def _control_blocks(draw, depth):
    """A random control block over the Jacobi program's two pipelines."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        choices = ["exec", "swap", "cacheswap"]
        if depth < 2:
            choices += ["repeat", "loop"]
        kind = draw(st.sampled_from(choices))
        if kind == "exec":
            ops.append(ExecPipeline(1))
        elif kind == "swap":
            ops.append(SwapVars("u", "u_new"))
        elif kind == "cacheswap":
            caches = draw(st.sampled_from([(0,), (1,), (0, 1)]))
            # swap twice so the update pipeline still sees valid masks
            ops.append(CacheSwap(caches=caches))
            ops.append(CacheSwap(caches=caches))
        elif kind == "repeat":
            body = tuple(draw(_control_blocks(depth=depth + 1)))
            ops.append(Repeat(body=body, times=draw(
                st.integers(min_value=0, max_value=3))))
        else:
            body = tuple(draw(_control_blocks(depth=depth + 1)))
            body += (ExecPipeline(1), SwapVars("u", "u_new"))
            ops.append(LoopUntil(
                body=body,
                condition_pipeline=1,
                max_iterations=draw(st.integers(min_value=1, max_value=12)),
            ))
    return ops


@st.composite
def control_script_cases(draw):
    shape = (draw(_dims), draw(_dims), draw(_dims))
    eps = draw(st.sampled_from([1e-1, 1e-2, 1e-4]))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    script = [ExecPipeline(0), CacheSwap(caches=(0, 1))]
    script += draw(_control_blocks(depth=0))
    if draw(st.booleans()):
        script.append(Halt())
    # the coverage dimensions the fused engine closed: residual skew
    # (auto_balance=False), per-issue output retention, armed-set tweaks
    skewed = draw(st.booleans())
    keep_outputs = draw(st.booleans())
    rearm = draw(st.sampled_from(_REARM_VARIANTS))
    return shape, eps, seed, script, skewed, keep_outputs, rearm


@settings(max_examples=15, deadline=None)
@given(case=control_script_cases())
def test_random_control_scripts_agree(case):
    """Fused == per-issue == reference on arbitrary nested control
    scripts drawn across skew / keep_outputs / rearmed-interrupt space:
    iteration counts, issue traces, relocations, per-FU retained
    streams, end-state grids, and interrupt streams (delivered *and*
    dropped) are all bit-identical."""
    shape, eps, seed, script, skewed, keep_outputs, rearm = case
    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps, loop=False)
    prog = setup.program
    prog.control.clear()
    for op in script:
        prog.add_control(op)
    program = MicrocodeGenerator(node, auto_balance=not skewed).generate(prog)
    rng = np.random.default_rng(seed)
    u0 = rng.random(shape)
    f = rng.standard_normal(shape)

    runs = {}
    for name, backend, fuse in (
        ("reference", "reference", True),
        ("per_issue", "fast", False),
        ("fused", "fast", True),
    ):
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, u0, f)
        for action, kind in rearm:
            if action == "arm":
                machine.interrupts.arm(kind)
            else:
                machine.interrupts.disarm(kind)
        result = machine.run(fuse=fuse, keep_outputs=keep_outputs)
        runs[name] = (machine, result)

    m_ref, r_ref = runs["reference"]
    for other in ("per_issue", "fused"):
        m_fast, r_fast = runs[other]
        assert r_ref.instructions_issued == r_fast.instructions_issued
        assert r_ref.loop_iterations == r_fast.loop_iterations
        assert len(r_ref.issue_trace) == len(r_fast.issue_trace)
        assert r_ref.issue_trace == r_fast.issue_trace
        assert r_ref.total_cycles == r_fast.total_cycles
        assert r_ref.halted == r_fast.halted
        assert r_ref.converged == r_fast.converged
        for name in ("u", "u_new", "f"):
            np.testing.assert_array_equal(
                m_ref.get_variable(name), m_fast.get_variable(name)
            )
        if keep_outputs:
            for p_ref, p_fast in zip(r_ref.pipeline_results,
                                     r_fast.pipeline_results):
                assert set(p_ref.fu_outputs) == set(p_fast.fu_outputs)
                for fu in p_ref.fu_outputs:
                    np.testing.assert_array_equal(
                        p_ref.fu_outputs[fu], p_fast.fu_outputs[fu]
                    )
        assert (
            m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
        )
        # Interrupt.__eq__ compares cycles only; require the full stream
        # (repr: NaN payloads must compare equal to themselves)
        for channel in ("delivered", "dropped"):
            assert [
                repr((i.cycle, i.kind, i.source, i.payload))
                for i in getattr(m_ref.interrupts, channel)
            ] == [
                repr((i.cycle, i.kind, i.source, i.payload))
                for i in getattr(m_fast.interrupts, channel)
            ], channel
