"""Property-based serialization: random built programs must round-trip."""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.compose.builders import BuilderError, ConstOperand, PipelineBuilder
from repro.compose.exprmap import map_expression
from repro.diagram import serialize
from repro.diagram.program import ExecPipeline, Halt, VisualProgram

# reuse the expression strategy from the expr property tests
from property.test_expr_property import VAR_NAMES, _exprs

NODE = NodeConfig()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expr=_exprs(max_leaves=5), delay=st.integers(0, 6),
       eps=st.floats(1e-9, 1.0, allow_nan=False))
def test_random_programs_round_trip(expr, delay, eps):
    prog = VisualProgram(name="roundtrip")
    for i, name in enumerate(VAR_NAMES):
        prog.declare(name, plane=i, length=16)
    prog.declare("result", plane=len(VAR_NAMES), length=16)
    b = PipelineBuilder(NODE, prog, vector_length=16)
    bound = {name: b.read_var(name) for name in VAR_NAMES}
    try:
        root = map_expression(b, expr, bound)
        if isinstance(root, ConstOperand):
            return
        out = b.apply(Opcode.PASS, root)
    except BuilderError:
        assume(False)
        return
    b.write_var(out, "result")
    if delay:
        b.diagram.set_delay(out.fu, "a", delay)
    b.condition(out, "lt", eps)
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())

    text = serialize.dumps(prog)
    back = serialize.loads(text)
    assert serialize.program_to_dict(back) == serialize.program_to_dict(prog)
    # and the round-tripped program generates identical microcode
    from repro.codegen.generator import MicrocodeGenerator

    gen = MicrocodeGenerator(NODE, run_checker=False)
    a = gen.generate(prog)
    c = gen.generate(back)
    for ia, ic in zip(a.images, c.images):
        assert ia.microword == ic.microword
