"""Property-based end-to-end fidelity: random expression pipelines must
simulate to exactly what direct NumPy evaluation gives.

This is the strongest correctness statement in the suite: for arbitrary
dataflow DAGs the whole chain — builder allocation (including internal-route
swaps), checking, timing balancing, microcode emission, and stream
execution — preserves semantics bit-for-bit.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import PipelineBuilder
from repro.compose.exprmap import (
    BinOp,
    Const,
    UnOp,
    Var,
    eval_expression,
    expr_fu_count,
    map_expression,
)
from repro.diagram.program import ExecPipeline, Halt, VisualProgram
from repro.sim.machine import NSCMachine

VAR_NAMES = ("a", "b", "c")

# Leaves are wrapped variables (a unit may not read two planes, so raw Var
# pairs under one BinOp are staged through unary units) or constants.
_wrapped_var = st.builds(
    UnOp,
    opcode=st.sampled_from([Opcode.FABS, Opcode.FNEG]),
    operand=st.builds(Var, name=st.sampled_from(VAR_NAMES)),
)
_leaf = st.one_of(
    _wrapped_var,
    st.builds(Const, value=st.floats(-4, 4, allow_nan=False).map(
        lambda v: round(v, 3))),
)


def _exprs(max_leaves: int = 6):
    return st.recursive(
        _leaf,
        lambda children: st.one_of(
            st.builds(
                BinOp,
                opcode=st.sampled_from(
                    [Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.MAX,
                     Opcode.MIN]
                ),
                left=children,
                right=children,
            ),
            st.builds(
                UnOp,
                opcode=st.sampled_from([Opcode.FNEG, Opcode.FABS]),
                operand=children,
            ),
            st.builds(
                UnOp,
                opcode=st.sampled_from([Opcode.FSCALE, Opcode.FADDC]),
                operand=children,
                constant=st.floats(-2, 2, allow_nan=False).map(
                    lambda v: round(v, 3)),
            ),
        ),
        max_leaves=max_leaves,
    )


NODE = NodeConfig()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expr=_exprs(), data=st.data())
def test_random_expression_pipelines_match_numpy(expr, data):
    if not (1 <= expr_fu_count(expr) <= 24):  # leave room for the PASS unit
        return
    n = 16
    prog = VisualProgram(name="prop")
    env = {}
    for i, name in enumerate(VAR_NAMES):
        prog.declare(name, plane=i, length=n)
        env[name] = np.array(
            data.draw(
                st.lists(
                    st.floats(-3, 3, allow_nan=False).map(lambda v: round(v, 3)),
                    min_size=n,
                    max_size=n,
                )
            )
        )
    prog.declare("result", plane=len(VAR_NAMES), length=n)
    b = PipelineBuilder(NODE, prog, vector_length=n)
    bound = {name: b.read_var(name) for name in VAR_NAMES}
    from repro.compose.builders import BuilderError, ConstOperand

    try:
        root = map_expression(b, expr, bound)
        if isinstance(root, ConstOperand):  # constant-only tree
            return
        out = b.apply(Opcode.PASS, root)
    except BuilderError:
        # tree demanded more min/max circuitry than the machine has
        assume(False)
        return
    b.write_var(out, "result")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())

    report = Checker(NODE).check_program(prog)
    assert report.ok, report.format()

    machine = NSCMachine(NODE)
    machine.load_program(MicrocodeGenerator(NODE).generate(prog))
    for name, values in env.items():
        machine.set_variable(name, values)
    machine.run()
    expected = eval_expression(expr, env)
    np.testing.assert_array_equal(machine.get_variable("result"), expected)
