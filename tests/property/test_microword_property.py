"""Property-based microword encoding: arbitrary field values round-trip."""

from hypothesis import given, settings, strategies as st

from repro.arch.node import NodeConfig
from repro.codegen.microword import Microword, MicrowordLayout

_node = NodeConfig()
LAYOUT = MicrowordLayout(_node.params, _node.n_fus, sorted(_node.switch.sources))
FIELDS = LAYOUT.fields


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_random_words_round_trip(data):
    """Fill a random subset of fields with random in-range values; the raw
    bit encoding must decode to exactly the same assignment."""
    n_fields = data.draw(st.integers(1, 30))
    indices = data.draw(
        st.lists(
            st.integers(0, len(FIELDS) - 1),
            min_size=n_fields,
            max_size=n_fields,
            unique=True,
        )
    )
    word = LAYOUT.new_word()
    expected = {}
    for idx in indices:
        field = FIELDS[idx]
        value = data.draw(st.integers(0, field.max_value))
        word.set(field.name, value)
        expected[field.name] = value
    back = Microword.decode(LAYOUT, word.encode())
    assert back == word
    for name, value in expected.items():
        assert back.get(name) == value


@settings(max_examples=60, deadline=None)
@given(value=st.integers(-(1 << 15), (1 << 15) - 1))
def test_signed_fields_round_trip(value):
    word = LAYOUT.new_word()
    word.set_signed("mem3.dma.stride", value)
    back = Microword.decode(LAYOUT, word.encode())
    assert back.get_signed("mem3.dma.stride") == value


@settings(max_examples=60, deadline=None)
@given(
    value=st.floats(allow_nan=False, allow_infinity=True, width=64)
)
def test_float_threshold_round_trips(value):
    word = LAYOUT.new_word()
    word.set_float("seq.cond.threshold", value)
    back = Microword.decode(LAYOUT, word.encode())
    assert back.get_float("seq.cond.threshold") == value
