"""Hypothesis properties for the daemon's token-bucket rate limiter.

Two laws, checked under arbitrary interleavings of requests and clock
advances (the clock is injected, so hypothesis drives time itself):

- **bounded grant** — however requests arrive, the number granted can
  never exceed ``capacity + refill_rate * elapsed``: the bucket can only
  hand out its initial burst plus what refilled;
- **no starvation** — a rejected client that waits out the returned
  ``retry_after`` is guaranteed its next request, since per-client
  buckets mean nobody else can drain it in between.
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.server.rate_limiter import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


#: one step of an interleaving: either time passes, or a request arrives
STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("advance"),
                  st.floats(0.0, 5.0, allow_nan=False)),
        st.tuples(st.just("acquire"), st.integers(1, 3)),
    ),
    min_size=1,
    max_size=80,
)

CONFIGS = st.tuples(
    st.integers(1, 20),                      # capacity
    st.floats(0.01, 50.0, allow_nan=False),  # refill_rate
)


class TestBoundedGrant:
    @given(config=CONFIGS, steps=STEPS)
    def test_granted_never_exceeds_capacity_plus_refill(self, config, steps):
        capacity, rate = config
        clock = FakeClock()
        bucket = TokenBucket(capacity, rate, clock=clock)
        granted_tokens = 0
        for kind, value in steps:
            if kind == "advance":
                clock.advance(value)
            else:
                ok, retry_after = bucket.try_acquire(value)
                if ok:
                    granted_tokens += value
                    assert retry_after == 0.0
                else:
                    assert retry_after > 0.0
            # the invariant holds at every step, not just at the end
            ceiling = capacity + rate * clock.now
            assert granted_tokens <= ceiling + 1e-6, (
                f"granted {granted_tokens} tokens but only "
                f"{ceiling} could ever have existed")

    @given(config=CONFIGS, steps=STEPS)
    def test_balance_stays_within_bounds(self, config, steps):
        capacity, rate = config
        clock = FakeClock()
        bucket = TokenBucket(capacity, rate, clock=clock)
        for kind, value in steps:
            if kind == "advance":
                clock.advance(value)
            else:
                bucket.try_acquire(value)
            assert -1e-9 <= bucket.tokens <= capacity + 1e-9


class TestNoStarvation:
    @given(config=CONFIGS, steps=STEPS, n=st.integers(1, 3))
    def test_waiting_out_retry_after_always_wins(self, config, steps, n):
        """From *any* reachable bucket state, a rejected request that
        waits the advertised retry_after is granted on retry."""
        capacity, rate = config
        clock = FakeClock()
        bucket = TokenBucket(capacity, rate, clock=clock)
        for kind, value in steps:
            if kind == "advance":
                clock.advance(value)
            else:
                bucket.try_acquire(value)
        n = min(n, int(capacity))  # an n > capacity request can never win
        if n < 1:
            return
        ok, retry_after = bucket.try_acquire(n)
        if ok:
            return  # nothing to starve
        # wait exactly what the bucket advertised (plus float dust)
        clock.advance(retry_after + 1e-9)
        granted, _ = bucket.try_acquire(n)
        assert granted, (
            f"client waited the advertised {retry_after}s and was "
            f"still refused {n} token(s)")

    @given(steps=STEPS)
    def test_one_client_cannot_starve_another(self, steps):
        """Per-client buckets: whatever one client does, a fresh client's
        first request is always granted."""
        clock = FakeClock()
        limiter = RateLimiter(capacity=2, refill_rate=1.0, clock=clock)
        for kind, value in steps:
            if kind == "advance":
                clock.advance(value)
            else:
                limiter.check("greedy", min(value, 2))
        assert limiter.check("newcomer")[0]

    @given(config=CONFIGS)
    def test_retry_after_is_finite_and_consistent(self, config):
        capacity, rate = config
        clock = FakeClock()
        bucket = TokenBucket(capacity, rate, clock=clock)
        bucket.try_acquire(capacity)  # drain the burst
        ok, retry_after = bucket.try_acquire(1)
        if ok:  # capacity tokens drained but integer floor left >= 1
            return
        assert math.isfinite(retry_after)
        # the hint is exact: waiting any less than it must still refuse
        clock.advance(retry_after * 0.5)
        assert not bucket.try_acquire(1)[0]
        clock.advance(retry_after * 0.5 + 1e-9)
        assert bucket.try_acquire(1)[0]
