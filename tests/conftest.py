"""Shared fixtures: machine descriptions and small reference grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.arch.params import SUBSET_PARAMS


@pytest.fixture(scope="session")
def node() -> NodeConfig:
    """The default full NSC node (32 FUs, 16 planes, 16 caches)."""
    return NodeConfig()


@pytest.fixture(scope="session")
def subset_node() -> NodeConfig:
    """The §6 architectural subset (doublets only, half the planes)."""
    return NodeConfig(SUBSET_PARAMS)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def grid6(rng) -> np.ndarray:
    """A 6x6x6 grid with homogeneous Dirichlet boundary."""
    u = rng.random((6, 6, 6))
    u[0] = u[-1] = 0.0
    u[:, 0] = u[:, -1] = 0.0
    u[:, :, 0] = u[:, :, -1] = 0.0
    return u
