"""DMA engine: stream movement, symbolic re-resolution, contention."""

import numpy as np
import pytest

from repro.arch.dma import DMAProgram, DMASpec, DMASpecError, Direction
from repro.arch.memsys import DoubleBufferedCache, PlaneMemory
from repro.arch.params import NSCParameters
from repro.arch.switch import DeviceKind
from repro.sim.dma_engine import DMAEngine


@pytest.fixture()
def engine() -> DMAEngine:
    params = NSCParameters()
    memory = PlaneMemory(params)
    caches = [DoubleBufferedCache(i, 256) for i in range(params.n_caches)]
    return DMAEngine(params, memory, caches)


def _read_prog(plane=0, variable=None, offset=0, stride=1, count=8):
    spec = DMASpec(
        device_kind=DeviceKind.MEMORY,
        device=plane,
        direction=Direction.READ,
        variable=variable,
        offset=offset,
        stride=stride,
    )
    return DMAProgram(spec=spec, base_offset=offset, count=count)


class TestTransfers:
    def test_absolute_read(self, engine):
        engine.memory.plane(0).write(0, np.arange(8.0))
        out = engine.read_stream(_read_prog())
        np.testing.assert_allclose(out, np.arange(8.0))
        assert engine.stats.words_read == 8

    def test_symbolic_read_uses_current_binding(self, engine):
        engine.memory.declare("u", plane=0, length=8, offset=40)
        engine.memory.write_var("u", np.arange(8.0))
        prog = _read_prog(variable="u")
        out = engine.read_stream(prog)
        np.testing.assert_allclose(out, np.arange(8.0))

    def test_unloaded_symbolic_rejected(self, engine):
        with pytest.raises(DMASpecError, match="not loaded"):
            engine.read_stream(_read_prog(variable="ghost"))

    def test_memory_write(self, engine):
        spec = DMASpec(
            device_kind=DeviceKind.MEMORY, device=1,
            direction=Direction.WRITE, offset=16,
        )
        prog = DMAProgram(spec=spec, base_offset=16, count=4)
        engine.write_stream(prog, np.ones(4))
        np.testing.assert_allclose(engine.memory.plane(1).read(16, 4), np.ones(4))
        assert engine.stats.words_written == 4

    def test_cache_round_trip_needs_buffer_swap(self, engine):
        """DMA fills the back buffer (double-buffer protocol); the data is
        visible to reads only after a CacheSwap."""
        wspec = DMASpec(
            device_kind=DeviceKind.CACHE, device=2,
            direction=Direction.WRITE, offset=0,
        )
        engine.write_stream(
            DMAProgram(spec=wspec, base_offset=0, count=4), np.arange(4.0)
        )
        rspec = DMASpec(
            device_kind=DeviceKind.CACHE, device=2,
            direction=Direction.READ, offset=0,
        )
        rprog = DMAProgram(spec=rspec, base_offset=0, count=4)
        before = engine.read_stream(rprog)
        np.testing.assert_allclose(before, np.zeros(4))  # still the front
        engine.caches[2].swap()
        after = engine.read_stream(rprog)
        np.testing.assert_allclose(after, np.arange(4.0))

    def test_overlong_write_truncated_to_count(self, engine):
        spec = DMASpec(
            device_kind=DeviceKind.MEMORY, device=0,
            direction=Direction.WRITE, offset=0,
        )
        prog = DMAProgram(spec=spec, base_offset=0, count=3)
        engine.write_stream(prog, np.arange(10.0))
        assert engine.stats.words_written == 3


class TestContention:
    def test_parallel_devices_overlap(self, engine):
        engine.begin_instruction()
        engine.read_stream(_read_prog(plane=0, count=100))
        engine.read_stream(_read_prog(plane=1, count=100))
        single = _read_prog(plane=0, count=100).cycles(engine.params)
        assert engine.instruction_dma_cycles() == single

    def test_same_device_serializes(self, engine):
        """§3: 'multiple function units working in the same memory plane can
        cause contention problems'."""
        engine.begin_instruction()
        engine.read_stream(_read_prog(plane=0, count=100))
        engine.read_stream(_read_prog(plane=0, count=100, offset=200))
        single = _read_prog(plane=0, count=100).cycles(engine.params)
        assert engine.instruction_dma_cycles() == 2 * single

    def test_begin_instruction_resets(self, engine):
        engine.read_stream(_read_prog())
        engine.begin_instruction()
        assert engine.instruction_dma_cycles() == 0
