"""Stream semantics: plain evaluation, feedback reductions, skew."""

import numpy as np
import pytest

from repro.arch.funcunit import Opcode
from repro.sim.streams import (
    StreamError,
    apply_skew,
    detect_exceptions,
    eval_feedback,
    eval_plain,
)


class TestEvalPlain:
    def test_binary(self):
        out = eval_plain(Opcode.FADD, np.arange(4.0), np.ones(4))
        np.testing.assert_allclose(out, [1, 2, 3, 4])

    def test_unary(self):
        out = eval_plain(Opcode.FNEG, np.arange(3.0))
        np.testing.assert_allclose(out, [0, -1, -2])

    def test_constant(self):
        out = eval_plain(Opcode.FSCALE, np.arange(3.0), constant=2.0)
        np.testing.assert_allclose(out, [0, 2, 4])

    def test_missing_operand_rejected(self):
        with pytest.raises(StreamError, match="two operands"):
            eval_plain(Opcode.FADD, np.arange(3.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(StreamError, match="mismatch"):
            eval_plain(Opcode.FADD, np.arange(3.0), np.arange(4.0))


class TestFeedback:
    def test_max_feedback_is_running_max(self):
        x = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        out = eval_feedback(Opcode.MAX, x, "b", init=0.0)
        np.testing.assert_allclose(out, [3, 3, 4, 4, 5])

    def test_add_feedback_is_prefix_sum(self):
        x = np.arange(1.0, 5.0)
        out = eval_feedback(Opcode.FADD, x, "b", init=10.0)
        np.testing.assert_allclose(out, [11, 13, 16, 20])

    def test_mul_feedback_is_prefix_product(self):
        x = np.array([2.0, 3.0, 4.0])
        out = eval_feedback(Opcode.FMUL, x, "b", init=1.0)
        np.testing.assert_allclose(out, [2, 6, 24])

    def test_maxabs_feedback_residual_semantics(self):
        """The Jacobi residual reduction: max of |x| over the stream."""
        x = np.array([0.5, -2.0, 1.0])
        out = eval_feedback(Opcode.MAXABS, x, "b", init=0.0)
        np.testing.assert_allclose(out, [0.5, 2.0, 2.0])
        assert out[-1] == np.max(np.abs(x))

    def test_min_feedback(self):
        x = np.array([3.0, 1.0, 2.0])
        out = eval_feedback(Opcode.MIN, x, "b", init=np.inf)
        np.testing.assert_allclose(out, [3, 1, 1])

    def test_noncommutative_feedback_port_b(self):
        # out[i] = x[i] - out[i-1]
        x = np.array([5.0, 3.0, 1.0])
        out = eval_feedback(Opcode.FSUB, x, "b", init=0.0)
        np.testing.assert_allclose(out, [5.0, -2.0, 3.0])

    def test_noncommutative_feedback_port_a(self):
        # out[i] = out[i-1] - x[i]
        x = np.array([5.0, 3.0, 1.0])
        out = eval_feedback(Opcode.FSUB, x, "a", init=0.0)
        np.testing.assert_allclose(out, [-5.0, -8.0, -9.0])

    def test_accumulate_matches_loop(self):
        """The fast accumulate path must equal the explicit recurrence."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=50)
        fast = eval_feedback(Opcode.MAX, x, "b", init=-1.0)
        slow = []
        prev = -1.0
        for v in x:
            prev = max(v, prev)
            slow.append(prev)
        np.testing.assert_allclose(fast, slow)

    def test_feedback_on_unary_rejected(self):
        with pytest.raises(StreamError, match="binary"):
            eval_feedback(Opcode.FABS, np.arange(3.0), "b")

    def test_bad_port_rejected(self):
        with pytest.raises(StreamError):
            eval_feedback(Opcode.FADD, np.arange(3.0), "c")

    def test_empty_stream(self):
        out = eval_feedback(Opcode.FADD, np.zeros(0), "b")
        assert out.size == 0


class TestSkewAndExceptions:
    def test_zero_skew_identity(self):
        x = np.arange(4.0)
        assert apply_skew(x, 0) is x

    def test_positive_skew_shifts(self):
        x = np.arange(4.0)
        np.testing.assert_allclose(apply_skew(x, 1), [1, 2, 3, 0])

    def test_detect_overflow(self):
        assert "overflow" in detect_exceptions(np.array([1.0, np.inf]))

    def test_detect_invalid(self):
        assert "invalid" in detect_exceptions(np.array([np.nan]))

    def test_clean_stream(self):
        assert detect_exceptions(np.arange(4.0)) == []
