"""RunMetrics: rate, efficiency, and utilization accounting."""

import pytest

from repro.sim.metrics import RunMetrics


def _metrics(**kw):
    base = dict(
        cycles=10_000,
        instructions=5,
        flops=64_000,
        words_moved=12_000,
        clock_mhz=20.0,
        peak_mflops=640.0,
        n_fus=32,
        active_fu_cycles=64_000,
        interrupts_delivered=5,
    )
    base.update(kw)
    return RunMetrics(**base)


class TestRates:
    def test_elapsed_time(self):
        m = _metrics()
        assert m.elapsed_us == pytest.approx(500.0)

    def test_achieved_mflops(self):
        m = _metrics()
        # 64000 flops / 500 us = 128 MFLOPS
        assert m.achieved_mflops == pytest.approx(128.0)

    def test_efficiency(self):
        m = _metrics()
        assert m.efficiency == pytest.approx(128.0 / 640.0)

    def test_fu_utilization(self):
        m = _metrics()
        assert m.fu_utilization == pytest.approx(64_000 / (32 * 10_000))

    def test_words_per_flop(self):
        m = _metrics()
        assert m.words_per_flop == pytest.approx(12_000 / 64_000)

    def test_zero_cycles_degenerate(self):
        m = _metrics(cycles=0, active_fu_cycles=0)
        assert m.achieved_mflops == 0.0
        assert m.fu_utilization == 0.0

    def test_zero_flops_degenerate(self):
        m = _metrics(flops=0)
        assert m.words_per_flop == 0.0

    def test_summary_keys(self):
        summary = _metrics().summary()
        for key in ("cycles", "achieved_mflops", "efficiency",
                    "fu_utilization"):
            assert key in summary

    def test_format_mentions_peak(self):
        text = _metrics().format()
        assert "640" in text
        assert "MFLOPS" in text

    def test_efficiency_never_exceeds_one_for_real_runs(self):
        """Sanity tie-in: a real saxpy run stays below peak."""
        import numpy as np

        from repro.arch.node import NodeConfig
        from repro.codegen.generator import MicrocodeGenerator
        from repro.compose.kernels import build_saxpy_program
        from repro.sim.machine import NSCMachine
        from repro.sim.metrics import collect_metrics

        node = NodeConfig()
        setup = build_saxpy_program(node, 2048)
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        machine.set_variable("x", np.ones(2048))
        machine.set_variable("y", np.ones(2048))
        result = machine.run()
        metrics = collect_metrics(machine, result)
        assert 0 < metrics.efficiency < 1
        assert 0 < metrics.fu_utilization < 1
