"""Pipeline execution: data paths, write-back, interrupts, cycle model."""

import numpy as np
import pytest

from repro.arch.interrupts import InterruptKind
from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import PipelineBuilder
from repro.compose.kernels import (
    build_saxpy_program,
    build_stream_max_program,
)
from repro.arch.funcunit import Opcode
from repro.diagram.program import ExecPipeline, Halt, VisualProgram
from repro.sim.machine import NSCMachine
from repro.sim.pipeline_exec import execute_image


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


def _loaded_machine(node, setup):
    machine = NSCMachine(node)
    program = MicrocodeGenerator(node).generate(setup.program)
    machine.load_program(program)
    return machine, program


class TestDataPath:
    def test_saxpy_values(self, node, rng):
        setup = build_saxpy_program(node, 64, alpha=3.0)
        machine, program = _loaded_machine(node, setup)
        x, y = rng.random(64), rng.random(64)
        machine.set_variable("x", x)
        machine.set_variable("y", y)
        res = execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        np.testing.assert_allclose(machine.get_variable("out"), 3.0 * x + y)
        assert res.flops == 2 * 64

    def test_stream_max_feedback(self, node, rng):
        setup = build_stream_max_program(node, 32)
        machine, program = _loaded_machine(node, setup)
        x = rng.normal(size=32)
        machine.set_variable("x", x)
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        out = machine.get_variable("out")
        np.testing.assert_allclose(out, np.maximum.accumulate(x))

    def test_keep_outputs_captures_streams(self, node, rng):
        setup = build_saxpy_program(node, 16)
        machine, program = _loaded_machine(node, setup)
        machine.set_variable("x", rng.random(16))
        machine.set_variable("y", rng.random(16))
        res = execute_image(program.images[0], machine, keep_outputs=True)
        assert set(res.fu_outputs) == set(program.images[0].fu_order)
        res2 = execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        assert res2.fu_outputs == {}


class TestInterrupts:
    def test_completion_interrupt_posted(self, node, rng):
        setup = build_saxpy_program(node, 16)
        machine, program = _loaded_machine(node, setup)
        machine.set_variable("x", rng.random(16))
        machine.set_variable("y", rng.random(16))
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        assert machine.interrupts.pending() == 1
        irq = machine.interrupts.drain()[0]
        assert irq.kind is InterruptKind.PIPELINE_COMPLETE

    def test_division_by_zero_detected_when_armed(self, node):
        prog = VisualProgram()
        prog.declare("x", plane=0, length=8)
        prog.declare("out", plane=1, length=8)
        b = PipelineBuilder(node, prog, label="recip", vector_length=8)
        x = b.read_var("x")
        r = b.apply(Opcode.FRECIP, x)
        out = b.apply(Opcode.PASS, r)
        b.write_var(out, "out")
        b.build()
        prog.add_control(ExecPipeline(0))
        prog.add_control(Halt())
        machine = NSCMachine(node)
        machine_prog = MicrocodeGenerator(node).generate(prog)
        machine.load_program(machine_prog)
        machine.interrupts.arm(InterruptKind.FP_OVERFLOW)
        machine.set_variable("x", np.zeros(8))
        res = execute_image(machine_prog.images[0], machine)
        assert any("overflow" in e for e in res.exceptions)
        kinds = {i.kind for i in machine.interrupts.drain()}
        assert InterruptKind.FP_OVERFLOW in kinds


class TestCycleModel:
    def test_cycles_scale_with_vector_length(self, node, rng):
        def cycles(n):
            setup = build_saxpy_program(node, n)
            machine, program = _loaded_machine(node, setup)
            machine.set_variable("x", rng.random(n))
            machine.set_variable("y", rng.random(n))
            return execute_image(program.images[0], machine).cycles

        assert cycles(2048) > cycles(64)

    def test_dma_and_compute_overlap(self, node, rng):
        """Total cycles are a max of compute and DMA, not a sum."""
        setup = build_saxpy_program(node, 512)
        machine, program = _loaded_machine(node, setup)
        machine.set_variable("x", rng.random(512))
        machine.set_variable("y", rng.random(512))
        res = execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        assert res.cycles < res.compute_cycles + res.dma_cycles
        assert res.cycles >= max(res.compute_cycles, res.dma_cycles)

    def test_condition_value_surfaced(self, node, rng):
        from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs

        setup = build_jacobi_program(node, (5, 5, 5), loop=False)
        machine, program = _loaded_machine(node, setup)
        u0 = np.zeros((5, 5, 5))
        u0[2, 2, 2] = 1.0
        load_jacobi_inputs(machine, setup, u0, np.zeros((5, 5, 5)))
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        res = execute_image(program.images[1], machine)
        assert res.condition_value is not None
        assert res.condition_value > 0
        assert res.condition_result is False  # far from converged
