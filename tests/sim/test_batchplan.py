"""The whole-batch slab engine: parity with N per-job fused runs.

One :class:`~repro.sim.batchplan.BatchProgramRun` sweeping a stack of
same-program jobs must be observationally indistinguishable from running
each job through the compiled per-job engine — results, variables,
metrics, DMA statistics, and the interrupt stream all bit-identical per
job, including when convergence diverges across the stack.  And a slab
that declines, for any reason at any point, must leave every machine
pristine for the per-job fallback (the commit-point contract).
"""

import copy

import numpy as np
import pytest

from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.diagram.program import ExecPipeline, Halt, LoopUntil, SwapVars
from repro.sim import batchplan, progplan
from repro.sim.machine import NSCMachine
from repro.sim.sequencer import SequencerError


def _generate(node, shape=(6, 6, 6), eps=1e-4, max_iterations=300):
    setup = build_jacobi_program(
        node, shape, eps=eps, max_iterations=max_iterations
    )
    return setup, MicrocodeGenerator(node).generate(setup.program)


def _machines(node, setup, program, seeds, backend="fast"):
    machines = []
    for seed in seeds:
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        u0 = np.random.default_rng(seed).random(setup.shape)
        f = np.random.default_rng(1000 + seed).standard_normal(setup.shape)
        load_jacobi_inputs(machine, setup, u0, f)
        machines.append(machine)
    return machines


def _irq_stream(machine):
    return [
        (i.cycle, i.kind, i.source, i.payload)
        for i in machine.interrupts.delivered
    ]


def _assert_job_identical(m_ref, r_ref, m_batch, r_batch):
    assert r_ref.total_cycles == r_batch.total_cycles
    assert r_ref.total_flops == r_batch.total_flops
    assert r_ref.instructions_issued == r_batch.instructions_issued
    assert r_ref.loop_iterations == r_batch.loop_iterations
    assert r_ref.converged == r_batch.converged
    assert r_ref.halted == r_batch.halted
    for name in m_ref.memory.variables:
        np.testing.assert_array_equal(
            m_ref.get_variable(name), m_batch.get_variable(name)
        )
    assert m_ref.metrics(r_ref).summary() == m_batch.metrics(r_batch).summary()
    assert m_ref.cycle == m_batch.cycle
    assert m_ref.dma.stats == m_batch.dma.stats
    assert m_ref.dma.device_busy == m_batch.dma.device_busy
    assert _irq_stream(m_ref) == _irq_stream(m_batch)
    assert m_ref.interrupts.pending() == m_batch.interrupts.pending()


def _assert_pristine(machine, before_u, before_stats):
    assert machine.cycle == 0
    assert machine.dma.stats == before_stats
    assert machine.interrupts.pending() == 0
    assert not machine.interrupts.delivered
    np.testing.assert_array_equal(machine.get_variable("u"), before_u)


class TestBatchParity:
    def test_divergent_convergence_bit_identical(self, node):
        """Seeded starts converge at different iteration counts; every
        job's frozen state and accounting must still match its own
        per-job fused run exactly."""
        setup, program = _generate(node)
        seeds = (0, 1, 2, 3)
        per_job = _machines(node, setup, program, seeds)
        results_ref = [m.run(fuse=True) for m in per_job]
        batch = _machines(node, setup, program, seeds)
        results = batchplan.try_run_batch_fused(batch, program)
        assert results is not None
        iteration_counts = {
            sum(r.loop_iterations.values()) for r in results
        }
        assert len(iteration_counts) > 1  # divergence really exercised
        for m_ref, r_ref, m_b, r_b in zip(
            per_job, results_ref, batch, results
        ):
            _assert_job_identical(m_ref, r_ref, m_b, r_b)
        assert all(r.converged for r in results)

    def test_bounded_non_converging_run(self, node):
        setup, program = _generate(node, eps=1e-30, max_iterations=7)
        seeds = (5, 6, 7)
        per_job = _machines(node, setup, program, seeds)
        results_ref = [m.run(fuse=True) for m in per_job]
        batch = _machines(node, setup, program, seeds)
        results = batchplan.try_run_batch_fused(batch, program)
        assert results is not None
        assert all(r.converged is False for r in results)
        for m_ref, r_ref, m_b, r_b in zip(
            per_job, results_ref, batch, results
        ):
            _assert_job_identical(m_ref, r_ref, m_b, r_b)

    def test_single_job_slab(self, node):
        setup, program = _generate(node)
        (ref,) = _machines(node, setup, program, (9,))
        r_ref = ref.run(fuse=True)
        (solo,) = batch = _machines(node, setup, program, (9,))
        results = batchplan.try_run_batch_fused(batch, program)
        assert results is not None
        _assert_job_identical(ref, r_ref, solo, results[0])


class TestBatchDeclines:
    def test_reference_backend_declines(self, node):
        setup, program = _generate(node)
        machines = _machines(node, setup, program, (0, 1))
        machines += _machines(node, setup, program, (2,),
                              backend="reference")
        assert batchplan.try_run_batch_fused(machines, program) is None

    def test_empty_slab_declines(self, node):
        _setup, program = _generate(node)
        assert batchplan.try_run_batch_fused([], program) is None

    def test_non_finite_declines_pristine(self, node):
        """A non-finite value anywhere in the stack declines the whole
        slab (per-job tiers own FP-exception semantics), touching no
        machine — including the finite ones."""
        setup, program = _generate(node, max_iterations=10)
        machines = _machines(node, setup, program, (0, 1, 2))
        poisoned = machines[1].get_variable("u").copy()
        poisoned[3] = np.inf
        machines[1].set_variable("u", poisoned)
        snapshots = [
            (m.get_variable("u").copy(), copy.deepcopy(m.dma.stats))
            for m in machines
        ]
        with np.errstate(invalid="ignore", over="ignore"):
            assert batchplan.try_run_batch_fused(machines, program) is None
        for machine, (before_u, before_stats) in zip(machines, snapshots):
            _assert_pristine(machine, before_u, before_stats)

    def test_budget_fault_pristine_then_reproduced(self, node):
        """Budget exhaustion mid-slab declines with every machine
        pristine; the per-job fallback then faults authoritatively, with
        state committed to the fault point as the reference tier would."""
        setup, program = _generate(node, eps=1e-30, max_iterations=50)
        machines = _machines(node, setup, program, (0, 1))
        snapshots = [
            (m.get_variable("u").copy(), copy.deepcopy(m.dma.stats))
            for m in machines
        ]
        assert batchplan.try_run_batch_fused(
            machines, program, max_instructions=5
        ) is None
        for machine, (before_u, before_stats) in zip(machines, snapshots):
            _assert_pristine(machine, before_u, before_stats)
        with pytest.raises(SequencerError):
            machines[0].run(fuse=True, max_instructions=5)

    def test_mid_run_injection_pristine(self, node, monkeypatch):
        """A FusionUnsupported surfacing mid-execution (injected into the
        shared kernel issue path) unwinds the slab with nothing
        committed."""
        setup, program = _generate(node, max_iterations=15)
        machines = _machines(node, setup, program, (0, 1, 2))
        snapshots = [
            (m.get_variable("u").copy(), copy.deepcopy(m.dma.stats))
            for m in machines
        ]
        calls = {"n": 0}
        real_issue = progplan.BoundImage.issue_compute

        def flaky_issue(self):
            calls["n"] += 1
            if calls["n"] == 3:
                raise progplan.FusionUnsupported("injected mid-slab")
            return real_issue(self)

        monkeypatch.setattr(
            progplan.BoundImage, "issue_compute", flaky_issue
        )
        assert batchplan.try_run_batch_fused(machines, program) is None
        assert calls["n"] >= 3  # the injection really fired mid-run
        for machine, (before_u, before_stats) in zip(machines, snapshots):
            _assert_pristine(machine, before_u, before_stats)


class TestCheckBatchable:
    def _plan_for(self, node, control_ops):
        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-3, loop=False)
        prog = setup.program
        prog.control.clear()
        for op in control_ops:
            prog.add_control(op)
        program = MicrocodeGenerator(node).generate(prog)
        return progplan.compiled_plan(program, node.params)

    def test_plain_convergence_script_is_batchable(self, node):
        setup, program = _generate(node)
        plan = progplan.compiled_plan(program, node.params)
        batchplan.check_batchable(plan)  # must not raise

    def test_keep_outputs_plan_declines(self, node):
        setup, program = _generate(node)
        plan = progplan.compiled_plan(
            program, node.params, keep_outputs=True
        )
        with pytest.raises(progplan.FusionUnsupported,
                           match="keep_outputs"):
            batchplan.check_batchable(plan)

    def test_halt_inside_loop_declines(self, node):
        plan = self._plan_for(node, [
            ExecPipeline(0),
            LoopUntil(
                body=(ExecPipeline(1), Halt(), SwapVars("u", "u_new")),
                condition_pipeline=1,
                max_iterations=4,
            ),
        ])
        with pytest.raises(progplan.FusionUnsupported, match="Halt"):
            batchplan.check_batchable(plan)

    def test_nested_loop_declines(self, node):
        plan = self._plan_for(node, [
            ExecPipeline(0),
            LoopUntil(
                body=(
                    ExecPipeline(1),
                    LoopUntil(
                        body=(ExecPipeline(1),),
                        condition_pipeline=1,
                        max_iterations=2,
                    ),
                ),
                condition_pipeline=1,
                max_iterations=4,
            ),
        ])
        with pytest.raises(progplan.FusionUnsupported, match="nested"):
            batchplan.check_batchable(plan)

    def test_verdict_memoized_on_plan(self, node):
        setup, program = _generate(node)
        plan = progplan.compiled_plan(program, node.params)
        batchplan.check_batchable(plan)
        assert plan.__dict__.get("_batchable") == ""
