"""The batched multi-node engine: whole-run parity with the reference loop."""

import numpy as np
import pytest

from repro.apps.poisson3d import manufactured_solution
from repro.sim.multinode import MultiNodeStencil

RESULT_FIELDS = (
    "n_nodes",
    "iterations",
    "converged",
    "compute_cycles",
    "comm_cycles",
    "words_exchanged",
    "flops",
    "clock_mhz",
    "peak_gflops",
    "residual_history",
)


def _pair(dim, shape, eps, max_iterations, seed_grid=None):
    """Run the same problem on both backends; returns both (stencil, result)."""
    out = {}
    for backend in ("reference", "fast"):
        stencil = MultiNodeStencil(
            hypercube_dim=dim, shape=shape, eps=eps, backend=backend
        )
        if seed_grid is not None:
            stencil.scatter("u", seed_grid)
        result = stencil.run(max_iterations=max_iterations)
        out[backend] = (stencil, result)
    return out["reference"], out["fast"]


class TestMultiNodeParity:
    def test_converging_run_identical(self):
        shape = (6, 6, 8)
        u_star, _f, _h = manufactured_solution(shape)
        (s_ref, r_ref), (s_fast, r_fast) = _pair(
            dim=2, shape=shape, eps=1e-4, max_iterations=500, seed_grid=u_star
        )
        for field in RESULT_FIELDS:
            assert getattr(r_ref, field) == getattr(r_fast, field), field
        assert r_fast.converged
        np.testing.assert_array_equal(s_ref.gather("u"), s_fast.gather("u"))
        np.testing.assert_array_equal(
            s_ref.gather("u_new"), s_fast.gather("u_new")
        )

    def test_bounded_run_identical(self):
        """A run that hits the iteration bound (the bench configuration)."""
        shape = (5, 5, 8)
        u_star, _f, _h = manufactured_solution(shape)
        (s_ref, r_ref), (s_fast, r_fast) = _pair(
            dim=3, shape=shape, eps=1e-30, max_iterations=7, seed_grid=u_star
        )
        for field in RESULT_FIELDS:
            assert getattr(r_ref, field) == getattr(r_fast, field), field
        assert not r_fast.converged
        assert r_fast.iterations == 7
        np.testing.assert_array_equal(s_ref.gather("u"), s_fast.gather("u"))

    def test_single_node_system(self):
        """dim=0: no halo traffic, the batch has one row."""
        shape = (5, 5, 5)
        u_star, _f, _h = manufactured_solution(shape)
        (s_ref, r_ref), (s_fast, r_fast) = _pair(
            dim=0, shape=shape, eps=1e-3, max_iterations=300, seed_grid=u_star
        )
        for field in RESULT_FIELDS:
            assert getattr(r_ref, field) == getattr(r_fast, field), field
        assert r_fast.comm_cycles == 0
        np.testing.assert_array_equal(s_ref.gather("u"), s_fast.gather("u"))

    def test_router_statistics_identical(self):
        shape = (4, 4, 8)
        u_star, _f, _h = manufactured_solution(shape)
        (s_ref, _), (s_fast, _) = _pair(
            dim=2, shape=shape, eps=1e-30, max_iterations=5, seed_grid=u_star
        )
        ref_stats = {
            key: (stats.messages, stats.words)
            for key, stats in s_ref.router.link_stats.items()
        }
        fast_stats = {
            key: (stats.messages, stats.words)
            for key, stats in s_fast.router.link_stats.items()
        }
        assert ref_stats == fast_stats
        assert s_ref.router.messages_sent == s_fast.router.messages_sent

    def test_machines_usable_after_fast_run(self):
        """finish() must leave per-machine memory exactly as a reference
        run would for the grid variables."""
        shape = (4, 4, 8)
        u_star, _f, _h = manufactured_solution(shape)
        (s_ref, _), (s_fast, _) = _pair(
            dim=1, shape=shape, eps=1e-30, max_iterations=4, seed_grid=u_star
        )
        for ref_machine, fast_machine in zip(s_ref.machines, s_fast.machines):
            for name in ("u", "u_new", "f", "mask", "invmask"):
                np.testing.assert_array_equal(
                    ref_machine.get_variable(name),
                    fast_machine.get_variable(name),
                )

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            MultiNodeStencil(hypercube_dim=1, shape=(4, 4, 4), backend="warp")
