"""The vectorized fast path: single-node parity with the reference.

The fast backend's contract is bit-identical observable behaviour — grids,
cycle/flop counts, DMA statistics, exception flags, interrupts — so every
test here runs the same program through both backends and compares whole
results, not tolerances.
"""

import numpy as np
import pytest

from repro.codegen.generator import MicrocodeGenerator
from repro.codegen.timing import instruction_cycles
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.sim.fastpath import (
    BACKENDS,
    execute_image_fast,
    plan_for,
    shift_last,
    validate_backend,
)
from repro.sim.machine import NSCMachine
from repro.sim.pipeline_exec import execute_image


def _loaded_machine(node, setup, program, u0, f, backend="reference"):
    machine = NSCMachine(node, backend=backend)
    machine.load_program(program)
    load_jacobi_inputs(machine, setup, u0, f)
    return machine


@pytest.fixture(scope="module")
def jacobi8(node):
    setup = build_jacobi_program(node, (8, 8, 8), eps=1e-5,
                                 max_iterations=2000)
    program = MicrocodeGenerator(node).generate(setup.program)
    return setup, program


class TestBackendValidation:
    def test_known_backends(self):
        assert BACKENDS == ("reference", "fast")
        for backend in BACKENDS:
            assert validate_backend(backend) == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="turbo"):
            validate_backend("turbo")

    def test_machine_rejects_unknown_backend(self, node):
        with pytest.raises(ValueError, match="unknown execution backend"):
            NSCMachine(node, backend="nope")

    def test_run_override_is_per_run(self, node, jacobi8):
        setup, program = jacobi8
        u0 = np.zeros((8, 8, 8))
        machine = _loaded_machine(node, setup, program, u0, np.zeros((8, 8, 8)))
        assert machine.backend == "reference"
        machine.run(backend="fast", max_instructions=10_000)
        # the override applies to that run only
        assert machine.backend == "reference"
        with pytest.raises(ValueError, match="unknown execution backend"):
            machine.run(backend="warp")
        assert machine.backend == "reference"


class TestShiftLast:
    def test_matches_shift_stream_1d(self, rng):
        from repro.arch.shift_delay import shift_stream

        x = rng.random(37)
        for shift in (-40, -5, -1, 0, 1, 7, 40):
            np.testing.assert_array_equal(
                shift_last(x, shift), shift_stream(x, shift)
            )

    def test_batched_rows_match_per_row(self, rng):
        x = rng.random((5, 19))
        for shift in (-3, 0, 4):
            batched = shift_last(x, shift)
            for row in range(5):
                np.testing.assert_array_equal(
                    batched[row], shift_last(x[row], shift)
                )


class TestSingleNodeParity:
    def test_full_run_bit_identical(self, node, jacobi8, rng):
        setup, program = jacobi8
        shape = (8, 8, 8)
        u0 = rng.random(shape)
        u0[0] = u0[-1] = u0[:, 0] = u0[:, -1] = 0.0
        u0[:, :, 0] = u0[:, :, -1] = 0.0
        f = rng.random(shape)
        machines = {}
        results = {}
        for backend in BACKENDS:
            machine = _loaded_machine(node, setup, program, u0, f, backend)
            results[backend] = machine.run()
            machines[backend] = machine
        ref, fast = results["reference"], results["fast"]
        assert ref.total_cycles == fast.total_cycles
        assert ref.total_flops == fast.total_flops
        assert ref.instructions_issued == fast.instructions_issued
        assert ref.issue_trace == fast.issue_trace
        assert ref.converged == fast.converged
        np.testing.assert_array_equal(
            machines["reference"].get_variable("u"),
            machines["fast"].get_variable("u"),
        )
        m_ref = machines["reference"].metrics(ref)
        m_fast = machines["fast"].metrics(fast)
        assert m_ref.summary() == m_fast.summary()
        assert m_ref.interrupts_delivered == m_fast.interrupts_delivered

    def test_per_image_results_match(self, node, jacobi8):
        setup, program = jacobi8
        shape = (8, 8, 8)
        u0 = np.linspace(0.0, 1.0, 512).reshape(shape)
        f = np.zeros(shape)
        outs = {}
        for backend in BACKENDS:
            machine = _loaded_machine(node, setup, program, u0, f, backend)
            execute_image(program.images[0], machine, backend=backend)
            machine.swap_caches(0, 1)
            res = execute_image(
                program.images[1], machine, keep_outputs=True, backend=backend
            )
            outs[backend] = (machine, res)
        (_, r_ref), (_, r_fast) = outs["reference"], outs["fast"]
        assert r_ref.cycles == r_fast.cycles
        assert r_ref.compute_cycles == r_fast.compute_cycles
        assert r_ref.dma_cycles == r_fast.dma_cycles
        assert r_ref.condition_value == r_fast.condition_value
        assert r_ref.condition_result == r_fast.condition_result
        assert r_ref.exceptions == r_fast.exceptions
        assert set(r_ref.fu_outputs) == set(r_fast.fu_outputs)
        for fu in r_ref.fu_outputs:
            np.testing.assert_array_equal(
                r_ref.fu_outputs[fu], r_fast.fu_outputs[fu]
            )
        m_ref, m_fast = outs["reference"][0], outs["fast"][0]
        assert m_ref.dma.stats.words_moved == m_fast.dma.stats.words_moved
        assert m_ref.dma.stats.transfers == m_fast.dma.stats.transfers
        assert m_ref.dma.stats.busy_cycles == m_fast.dma.stats.busy_cycles

    def test_exception_flags_match(self, node, jacobi8):
        """Non-finite data must raise the same per-FU flags on both paths."""
        setup, program = jacobi8
        shape = (8, 8, 8)
        u0 = np.zeros(shape)
        u0[3, 3, 3] = np.inf
        u0[4, 4, 4] = np.nan
        f = np.zeros(shape)
        flags = {}
        for backend in BACKENDS:
            machine = _loaded_machine(node, setup, program, u0, f, backend)
            execute_image(program.images[0], machine, backend=backend)
            machine.swap_caches(0, 1)
            res = execute_image(program.images[1], machine, backend=backend)
            flags[backend] = res.exceptions
        assert flags["reference"] == flags["fast"]
        assert flags["reference"]  # the scenario does produce exceptions


class TestFastPlan:
    def test_plan_cached_per_image(self, node, jacobi8):
        _setup, program = jacobi8
        image = program.images[1]
        plan_a = plan_for(image, node.params)
        plan_b = plan_for(image, node.params)
        assert plan_a is plan_b

    def test_plan_dma_cycles_match_engine_accounting(self, node, jacobi8):
        setup, program = jacobi8
        image = program.images[1]
        plan = plan_for(image, node.params)
        machine = _loaded_machine(
            node, setup, program, np.zeros((8, 8, 8)), np.zeros((8, 8, 8))
        )
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        res = execute_image_fast(image, machine)
        assert machine.dma.instruction_dma_cycles() == plan.dma_cycles
        assert res.cycles == instruction_cycles(
            image.total_cycles, plan.dma_cycles, node.params
        )
