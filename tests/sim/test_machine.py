"""NSCMachine: loading, variables, swap semantics, lifecycle."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.kernels import build_saxpy_program
from repro.sim.machine import MachineError, NSCMachine


@pytest.fixture()
def machine() -> NSCMachine:
    return NSCMachine(NodeConfig())


class TestLoading:
    def test_load_declares_variables(self, machine):
        setup = build_saxpy_program(machine.node, 32)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        assert set(machine.memory.variables) == {"x", "y", "out"}

    def test_variable_offsets_match_codegen_layout(self, machine):
        setup = build_saxpy_program(machine.node, 32)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        for name, (plane, offset) in program.variable_layout.items():
            var = machine.memory.lookup(name)
            assert (var.plane, var.offset) == (plane, offset)

    def test_run_without_program_rejected(self, machine):
        with pytest.raises(MachineError, match="no program"):
            machine.run()

    def test_reload_is_idempotent(self, machine):
        setup = build_saxpy_program(machine.node, 32)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        machine.load_program(program)  # second load must not redeclare
        assert len(machine.memory.variables) == 3


class TestVariables:
    def test_set_get_round_trip(self, machine, rng):
        setup = build_saxpy_program(machine.node, 32)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        x = rng.random(32)
        machine.set_variable("x", x)
        np.testing.assert_allclose(machine.get_variable("x"), x)

    def test_3d_arrays_flattened(self, machine):
        setup = build_saxpy_program(machine.node, 8)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        machine.set_variable("x", np.ones((2, 2, 2)))
        assert machine.get_variable("x").shape == (8,)

    def test_swap_exchanges_contents_not_bindings(self, machine):
        machine.memory.declare("a", plane=0, length=4)
        machine.memory.declare("b", plane=1, length=4)
        machine.set_variable("a", np.ones(4))
        machine.set_variable("b", np.full(4, 2.0))
        cost = machine.swap_vars("a", "b")
        assert cost > 0
        np.testing.assert_allclose(machine.get_variable("a"), np.full(4, 2.0))
        np.testing.assert_allclose(machine.get_variable("b"), np.ones(4))
        # bindings unchanged: pipelines stay wired to the same planes
        assert machine.memory.lookup("a").plane == 0
        assert machine.memory.lookup("b").plane == 1

    def test_same_plane_swap_costs_more(self, machine):
        machine.memory.declare("a", plane=0, length=100)
        machine.memory.declare("b", plane=0, length=100)
        machine.memory.declare("c", plane=1, length=100)
        same = machine.swap_vars("a", "b")
        cross = machine.swap_vars("a", "c")
        assert same > cross

    def test_mismatched_swap_rejected(self, machine):
        machine.memory.declare("a", plane=0, length=4)
        machine.memory.declare("b", plane=1, length=8)
        with pytest.raises(MachineError):
            machine.swap_vars("a", "b")


class TestLifecycle:
    def test_rerun_is_deterministic(self, machine, rng):
        setup = build_saxpy_program(machine.node, 64)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        machine.set_variable("x", rng.random(64))
        machine.set_variable("y", rng.random(64))
        r1 = machine.run()
        out1 = machine.get_variable("out").copy()
        r2 = machine.run()
        np.testing.assert_allclose(machine.get_variable("out"), out1)
        assert r1.total_cycles == r2.total_cycles

    def test_reset_clears_interrupts(self, machine, rng):
        setup = build_saxpy_program(machine.node, 16)
        program = MicrocodeGenerator(machine.node).generate(setup.program)
        machine.load_program(program)
        machine.set_variable("x", rng.random(16))
        machine.set_variable("y", rng.random(16))
        machine.run()
        machine.reset()
        assert machine.cycle == 0
        assert machine.interrupts.pending() == 0

    def test_repr(self, machine):
        assert "program='none'" in repr(machine) or "program=" in repr(machine)
