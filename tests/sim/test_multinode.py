"""Multi-node hypercube simulation: decomposition, exchange, scaling."""

import numpy as np
import pytest

from repro.apps.poisson3d import jacobi_reference_run
from repro.sim.multinode import (
    DecompositionError,
    MultiNodeStencil,
    gray_code,
)


class TestGrayCode:
    def test_adjacent_codes_differ_by_one_bit(self):
        for i in range(31):
            assert bin(gray_code(i) ^ gray_code(i + 1)).count("1") == 1

    def test_codes_are_a_permutation(self):
        codes = [gray_code(i) for i in range(16)]
        assert sorted(codes) == list(range(16))

    def test_slab_neighbours_are_hypercube_neighbours(self):
        """The instance mapping: adjacent slabs must land on nodes whose
        ids differ in exactly one bit (one router hop apart)."""
        mn = MultiNodeStencil(hypercube_dim=3, shape=(4, 4, 8))
        assert sorted(mn.node_of_slab) == list(range(8))
        for slab in range(mn.n_nodes - 1):
            lo, hi = mn.node_of_slab[slab], mn.node_of_slab[slab + 1]
            assert bin(lo ^ hi).count("1") == 1

    def test_slab_zero_maps_to_node_zero(self):
        mn = MultiNodeStencil(hypercube_dim=2, shape=(4, 4, 8))
        assert mn.node_of_slab[0] == 0


class TestDecomposition:
    def test_indivisible_grid_rejected(self):
        with pytest.raises(DecompositionError):
            MultiNodeStencil(hypercube_dim=2, shape=(6, 6, 6))  # 6 % 4 != 0

    def test_error_message_names_the_mismatch(self):
        with pytest.raises(DecompositionError, match="nz=6.*4 nodes"):
            MultiNodeStencil(hypercube_dim=2, shape=(6, 6, 6))

    def test_more_nodes_than_planes_rejected(self):
        with pytest.raises(DecompositionError):
            MultiNodeStencil(hypercube_dim=3, shape=(6, 6, 4))  # 4 % 8 != 0

    def test_empty_z_extent_rejected(self):
        # nz=0 divides evenly but leaves no plane per node
        with pytest.raises(DecompositionError):
            MultiNodeStencil(hypercube_dim=2, shape=(6, 6, 0))

    def test_one_plane_per_node_is_allowed(self):
        mn = MultiNodeStencil(hypercube_dim=2, shape=(4, 4, 4))
        assert mn.nz_local == 1
        assert mn.local_shape == (4, 4, 3)

    def test_scatter_gather_round_trip(self, rng):
        mn = MultiNodeStencil(hypercube_dim=1, shape=(6, 6, 8))
        grid = rng.random((8, 6, 6))
        mn.scatter("u", grid)
        np.testing.assert_allclose(mn.gather("u"), grid)

    def test_ghost_planes_filled_on_scatter(self, rng):
        mn = MultiNodeStencil(hypercube_dim=1, shape=(4, 4, 8))
        grid = rng.random((8, 4, 4))
        mn.scatter("u", grid)
        lo = mn.machines[1].get_variable("u").reshape(6, 4, 4)
        np.testing.assert_allclose(lo[0], grid[3])  # neighbour's last plane


class TestCorrectness:
    def test_multinode_matches_reference(self, rng):
        shape = (6, 6, 8)
        u0 = rng.random((8, 6, 6))
        u0[0] = u0[-1] = 0
        u0[:, 0] = u0[:, -1] = 0
        u0[:, :, 0] = u0[:, :, -1] = 0
        f = np.zeros((8, 6, 6))
        mn = MultiNodeStencil(hypercube_dim=1, shape=shape, eps=1e-4)
        mn.scatter("u", u0)
        mn.scatter("f", f)
        res = mn.run(max_iterations=400)
        assert res.converged
        ref, iters, _ = jacobi_reference_run(
            u0, f, shape, mn.setup.h, eps=1e-4, max_iterations=400
        )
        # the multi-node residual is checked against the same eps, so the
        # iteration counts agree and the fields match exactly
        assert res.iterations == iters
        np.testing.assert_allclose(mn.gather("u").reshape(-1), ref)

    def test_single_node_degenerate_case(self, rng):
        mn = MultiNodeStencil(hypercube_dim=0, shape=(5, 5, 5), eps=1e-3)
        u0 = rng.random((5, 5, 5))
        mn.scatter("u", u0)
        mn.scatter("f", np.zeros((5, 5, 5)))
        res = mn.run(max_iterations=200)
        assert res.n_nodes == 1
        assert res.comm_cycles == 0  # nothing to exchange

    def test_single_node_matches_reference(self, rng):
        """The degenerate decomposition must still be the same Jacobi."""
        shape = (5, 5, 5)
        u0 = rng.random(shape)
        u0[0] = u0[-1] = 0
        u0[:, 0] = u0[:, -1] = 0
        u0[:, :, 0] = u0[:, :, -1] = 0
        f = np.zeros(shape)
        mn = MultiNodeStencil(hypercube_dim=0, shape=shape, eps=1e-4)
        mn.scatter("u", u0)
        mn.scatter("f", f)
        res = mn.run(max_iterations=400)
        ref, iters, _ = jacobi_reference_run(
            u0, f, shape, mn.setup.h, eps=1e-4, max_iterations=400
        )
        assert res.iterations == iters
        np.testing.assert_allclose(mn.gather("u").reshape(-1), ref)

    def test_single_node_exchanges_no_words(self, rng):
        mn = MultiNodeStencil(hypercube_dim=0, shape=(5, 5, 5), eps=0.0)
        mn.scatter("u", rng.random((5, 5, 5)))
        mn.scatter("f", np.zeros((5, 5, 5)))
        res = mn.run(max_iterations=3)
        assert res.words_exchanged == 0


class TestPrecompiled:
    def test_precompiled_program_reused(self, rng):
        """The service hands MultiNodeStencil an already-compiled program;
        results must match a self-compiled stencil exactly."""
        first = MultiNodeStencil(hypercube_dim=1, shape=(4, 4, 8), eps=1e-3)
        second = MultiNodeStencil(
            hypercube_dim=1, shape=(4, 4, 8), eps=1e-3,
            precompiled=(first.setup, first.machine_program),
        )
        assert second.machine_program is first.machine_program
        u0 = rng.random((8, 4, 4))
        for mn in (first, second):
            mn.scatter("u", u0)
            mn.scatter("f", np.zeros((8, 4, 4)))
        res1 = first.run(max_iterations=50)
        res2 = second.run(max_iterations=50)
        assert res1.iterations == res2.iterations
        assert res1.compute_cycles == res2.compute_cycles
        np.testing.assert_allclose(first.gather("u"), second.gather("u"))

    def test_precompiled_shape_mismatch_rejected(self):
        donor = MultiNodeStencil(hypercube_dim=1, shape=(4, 4, 8))
        with pytest.raises(DecompositionError, match="local shape"):
            MultiNodeStencil(
                hypercube_dim=1, shape=(6, 6, 8),
                precompiled=(donor.setup, donor.machine_program),
            )


class TestPerformanceShape:
    def test_comm_fraction_grows_with_nodes(self, rng):
        """More nodes, same grid: communication share must rise."""
        results = {}
        for dim in (0, 2):
            mn = MultiNodeStencil(hypercube_dim=dim, shape=(6, 6, 8), eps=1e-3)
            mn.scatter("u", rng.random((8, 6, 6)))
            mn.scatter("f", np.zeros((8, 6, 6)))
            results[dim] = mn.run(max_iterations=50)
        assert results[2].comm_fraction > results[0].comm_fraction

    def test_words_exchanged_accounting(self, rng):
        mn = MultiNodeStencil(hypercube_dim=1, shape=(4, 4, 8), eps=0.0)
        mn.scatter("u", rng.random((8, 4, 4)))
        mn.scatter("f", np.zeros((8, 4, 4)))
        res = mn.run(max_iterations=3)
        # 2 transfers of one 4x4 plane per sweep between 2 nodes
        assert res.words_exchanged == 3 * 2 * 16

    def test_peak_gflops_scales_with_nodes(self):
        mn1 = MultiNodeStencil(hypercube_dim=0, shape=(4, 4, 4))
        mn4 = MultiNodeStencil(hypercube_dim=2, shape=(4, 4, 8))
        assert mn4.n_nodes == 4
        assert mn4.run(max_iterations=1).peak_gflops == pytest.approx(
            4 * mn1.run(max_iterations=1).peak_gflops
        )

    def test_aggregate_flops_counted(self, rng):
        mn = MultiNodeStencil(hypercube_dim=1, shape=(4, 4, 8), eps=0.0)
        mn.scatter("u", rng.random((8, 4, 4)))
        mn.scatter("f", np.zeros((8, 4, 4)))
        res = mn.run(max_iterations=2)
        per_sweep = mn.machine_program.images[1].flops_per_element
        local_points = 4 * 4 * (4 + 2)
        assert res.flops == 2 * 2 * per_sweep * local_points  # 2 sweeps x 2 nodes
