"""Sequencer: control scripts, loops, convergence, swap and halt."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.compose.kernels import build_heat1d_program, build_saxpy_program
from repro.diagram.program import (
    ExecPipeline,
    Halt,
    LoopUntil,
    Repeat,
)
from repro.sim.machine import NSCMachine
from repro.sim.sequencer import Sequencer, SequencerError


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


def _machine_for(node, setup):
    machine = NSCMachine(node)
    program = MicrocodeGenerator(node).generate(setup.program)
    machine.load_program(program)
    return machine, program


class TestStraightLine:
    def test_halt_stops_execution(self, node, rng):
        setup = build_saxpy_program(node, 16)
        machine, program = _machine_for(node, setup)
        machine.set_variable("x", rng.random(16))
        machine.set_variable("y", rng.random(16))
        result = machine.run()
        assert result.halted
        assert result.instructions_issued == 1
        assert result.issue_trace == [0]

    def test_metrics_collected(self, node, rng):
        setup = build_saxpy_program(node, 256)
        machine, program = _machine_for(node, setup)
        machine.set_variable("x", rng.random(256))
        machine.set_variable("y", rng.random(256))
        result = machine.run()
        metrics = machine.metrics(result)
        assert metrics.flops == 512
        assert 0 < metrics.achieved_mflops < metrics.peak_mflops
        assert 0 < metrics.fu_utilization < 1


class TestRepeat:
    def test_repeat_runs_body_n_times(self, node, rng):
        setup = build_heat1d_program(node, 64, steps=5)
        machine, program = _machine_for(node, setup)
        u = rng.random(64)
        u[0] = u[-1] = 0.0

        machine.set_variable("u", u)
        mask = np.zeros(64)
        mask[1:-1] = 1.0
        machine.set_variable("mask", mask)
        machine.set_variable("invmask", 1.0 - mask)
        machine.set_variable("u_new", np.zeros(64))
        result = machine.run()
        # 1 cache load + 5 smoothing sweeps
        assert result.instructions_issued == 6

    def test_heat_smoother_converges_toward_linear(self, node):
        """Physics check: the 1-D heat smoother damps interior bumps."""
        setup = build_heat1d_program(node, 32, r=0.25, steps=200)
        machine, program = _machine_for(node, setup)
        u = np.zeros(32)
        u[10:20] = 1.0
        mask = np.zeros(32)
        mask[1:-1] = 1.0
        machine.set_variable("u", u)
        machine.set_variable("mask", mask)
        machine.set_variable("invmask", 1.0 - mask)
        machine.set_variable("u_new", np.zeros(32))
        machine.run()
        final = machine.get_variable("u")
        assert np.max(final) < 0.5  # bump diffused substantially
        assert final[0] == 0.0 and final[-1] == 0.0  # boundaries pinned


class TestLoopUntil:
    def test_jacobi_converges_and_reports(self, node, grid6):
        setup = build_jacobi_program(node, (6, 6, 6), eps=1e-4)
        machine, program = _machine_for(node, setup)
        load_jacobi_inputs(machine, setup, grid6, np.zeros((6, 6, 6)))
        result = machine.run()
        assert result.converged is True
        assert result.loop_iterations[1] > 1
        # final residual below eps
        last = result.last_result_for(1)
        assert last is not None and last.condition_value < 1e-4

    def test_max_iterations_bound(self, node, grid6):
        setup = build_jacobi_program(node, (6, 6, 6), eps=0.0, max_iterations=7)
        machine, program = _machine_for(node, setup)
        load_jacobi_inputs(machine, setup, grid6, np.zeros((6, 6, 6)))
        result = machine.run()
        assert result.converged is False
        assert result.loop_iterations[1] == 7

    def test_instruction_budget_guards_runaway(self, node, grid6):
        setup = build_jacobi_program(node, (6, 6, 6), eps=0.0, max_iterations=10_000)
        machine, program = _machine_for(node, setup)
        load_jacobi_inputs(machine, setup, grid6, np.zeros((6, 6, 6)))
        with pytest.raises(SequencerError, match="budget"):
            machine.run(max_instructions=50)


class TestErrors:
    def test_bad_pipeline_index(self, node, rng):
        setup = build_saxpy_program(node, 16)
        machine, program = _machine_for(node, setup)
        program.control = [ExecPipeline(5), Halt()]
        machine.set_variable("x", rng.random(16))
        machine.set_variable("y", rng.random(16))
        with pytest.raises(SequencerError, match="no pipeline 5"):
            machine.run()

    def test_loop_watching_unexecuted_pipeline(self, node, grid6):
        setup = build_jacobi_program(node, (6, 6, 6))
        machine, program = _machine_for(node, setup)
        load_jacobi_inputs(machine, setup, grid6, np.zeros((6, 6, 6)))
        program.control = [
            LoopUntil(body=(ExecPipeline(0),), condition_pipeline=1,
                      max_iterations=3),
            Halt(),
        ]
        with pytest.raises(SequencerError, match="never executed"):
            machine.run()
