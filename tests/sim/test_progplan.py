"""The whole-program compiled engine: parity with the reference sequencer.

The compiled schedule's contract is the same as the per-issue fast path's —
bit-identical observable behaviour — but it covers the *control script*
too: loop iteration counts, issue traces, relocations, cache swaps, the
interrupt stream, and DMA statistics all have to match a step-by-step
reference run exactly.
"""

import numpy as np
import pytest

from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.diagram.program import (
    CacheSwap,
    ExecPipeline,
    Halt,
    LoopUntil,
    Repeat,
    SwapVars,
)
from repro.sim import progplan
from repro.sim.fastpath import PLAN_CACHE
from repro.sim.machine import NSCMachine
from repro.sim.sequencer import SequencerError


def _generate(node, shape=(6, 6, 6), eps=1e-4, max_iterations=300, loop=True):
    setup = build_jacobi_program(
        node, shape, eps=eps, max_iterations=max_iterations, loop=loop
    )
    return setup, MicrocodeGenerator(node).generate(setup.program)


def _run(node, setup, program, u0, f, backend, fuse=True, **kwargs):
    shape = setup.shape
    machine = NSCMachine(node, backend=backend)
    machine.load_program(program)
    load_jacobi_inputs(machine, setup, u0, f)
    result = machine.run(fuse=fuse, **kwargs)
    return machine, result


def _irq_stream(machine):
    return [
        (i.cycle, i.kind, i.source, i.payload)
        for i in machine.interrupts.delivered
    ]


def _assert_runs_identical(ref, fused):
    (m_ref, r_ref), (m_fast, r_fast) = ref, fused
    assert r_ref.total_cycles == r_fast.total_cycles
    assert r_ref.total_flops == r_fast.total_flops
    assert r_ref.instructions_issued == r_fast.instructions_issued
    assert r_ref.issue_trace == r_fast.issue_trace
    assert r_ref.loop_iterations == r_fast.loop_iterations
    assert r_ref.converged == r_fast.converged
    assert r_ref.halted == r_fast.halted
    assert len(r_ref.pipeline_results) == len(r_fast.pipeline_results)
    for p_ref, p_fast in zip(r_ref.pipeline_results, r_fast.pipeline_results):
        assert p_ref.cycles == p_fast.cycles
        assert p_ref.condition_result == p_fast.condition_result
        assert p_ref.condition_value == p_fast.condition_value
        assert p_ref.exceptions == p_fast.exceptions
    for name in m_ref.memory.variables:
        np.testing.assert_array_equal(
            m_ref.get_variable(name), m_fast.get_variable(name)
        )
    assert m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
    assert m_ref.cycle == m_fast.cycle
    assert m_ref.dma.stats == m_fast.dma.stats
    assert m_ref.dma.device_busy == m_fast.dma.device_busy
    # Interrupt.__eq__ compares cycles only; parity means the full
    # (cycle, kind, source, payload) stream matches
    assert _irq_stream(m_ref) == _irq_stream(m_fast)
    assert m_ref.interrupts.pending() == m_fast.interrupts.pending()


class TestFusedRunParity:
    def test_convergence_run_bit_identical(self, node, rng):
        setup, program = _generate(node)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast", fuse=True)
        _assert_runs_identical(ref, fused)
        assert fused[1].converged

    def test_fused_matches_per_issue_path(self, node, rng):
        setup, program = _generate(node)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        unfused = _run(node, setup, program, u0, f, "fast", fuse=False)
        fused = _run(node, setup, program, u0, f, "fast", fuse=True)
        _assert_runs_identical(unfused, fused)

    def test_bounded_run_not_converged(self, node, rng):
        setup, program = _generate(node, eps=1e-30, max_iterations=9)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)
        assert not fused[1].converged
        assert fused[1].loop_iterations[setup.update_pipeline] == 9

    def test_exception_flags_and_drops_match(self, node):
        """Non-finite data must route through the exact path with the
        reference's per-FU flags and dropped FP interrupts."""
        setup, program = _generate(node, max_iterations=20)
        shape = (6, 6, 6)
        u0 = np.zeros(shape)
        u0[2, 2, 2] = np.inf
        u0[3, 3, 3] = np.nan
        f = np.zeros(shape)
        m_ref, r_ref = _run(node, setup, program, u0, f, "reference")
        m_fast, r_fast = _run(node, setup, program, u0, f, "fast")
        assert [p.exceptions for p in r_ref.pipeline_results] == [
            p.exceptions for p in r_fast.pipeline_results
        ]
        assert any(p.exceptions for p in r_fast.pipeline_results)
        assert [
            (i.cycle, i.kind, i.source) for i in m_ref.interrupts.dropped
        ] == [
            (i.cycle, i.kind, i.source) for i in m_fast.interrupts.dropped
        ]
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )

    def test_keep_outputs_fused_bit_identical(self, node, rng):
        """keep_outputs now runs through the fused engine: every issue's
        per-FU output streams must match the reference bit for bit."""
        setup, program = _generate(node, max_iterations=5)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        m_ref, r_ref = _run(
            node, setup, program, u0, f, "reference", keep_outputs=True
        )
        m_fast, r_fast = _run(
            node, setup, program, u0, f, "fast", keep_outputs=True
        )
        assert r_ref.total_cycles == r_fast.total_cycles
        assert _irq_stream(m_ref) == _irq_stream(m_fast)
        assert len(r_ref.pipeline_results) == len(r_fast.pipeline_results)
        for p_ref, p_fast in zip(r_ref.pipeline_results,
                                 r_fast.pipeline_results):
            assert set(p_ref.fu_outputs) == set(p_fast.fu_outputs)
            if p_ref.active_fus:
                assert p_ref.fu_outputs  # retention actually happened
            for fu in p_ref.fu_outputs:
                np.testing.assert_array_equal(
                    p_ref.fu_outputs[fu], p_fast.fu_outputs[fu]
                )
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )

    def test_keep_outputs_uses_fused_engine(self, node, rng):
        """The gap this PR closes: keep_outputs must not skip fusion."""
        setup, program = _generate(node, max_iterations=5)
        machine = NSCMachine(node, backend="fast")
        machine.load_program(program)
        load_jacobi_inputs(
            machine, setup, rng.random((6, 6, 6)),
            rng.standard_normal((6, 6, 6)),
        )
        result = progplan.try_run_fused(
            machine, program, 1_000_000, keep_outputs=True
        )
        assert result is not None
        assert all(
            p.fu_outputs for p in result.pipeline_results if p.active_fus
        )
        assert any(p.fu_outputs for p in result.pipeline_results)

    def test_keep_outputs_exact_path_does_not_alias_buffers(self, node, rng):
        """Exact-path outputs of a PASS unit are the live tap/stream view
        itself; captured fu_outputs must be copies, or the next issue's
        tap refill silently mutates the record (rb-sor keeps real PASS
        steps, and a NaN forces every issue down the exact path)."""
        from repro.compose.iterative import (
            build_rbsor_program,
            load_rbsor_inputs,
        )

        shape = (5, 5, 5)
        setup = build_rbsor_program(node, shape, omega=1.3, eps=1e-4,
                                    max_iterations=8)
        program = MicrocodeGenerator(node).generate(setup.program)
        u0 = rng.random(shape)
        u0[2, 2, 2] = np.nan
        f = rng.standard_normal(shape)
        runs = {}
        for backend in ("reference", "fast"):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_rbsor_inputs(machine, setup, u0, f)
            runs[backend] = machine.run(keep_outputs=True)
        r_ref, r_fast = runs["reference"], runs["fast"]
        assert len(r_ref.pipeline_results) == len(r_fast.pipeline_results)
        assert any(p.exceptions for p in r_fast.pipeline_results)
        for p_ref, p_fast in zip(r_ref.pipeline_results,
                                 r_fast.pipeline_results):
            assert set(p_ref.fu_outputs) == set(p_fast.fu_outputs)
            for fu in p_ref.fu_outputs:
                np.testing.assert_array_equal(
                    p_ref.fu_outputs[fu], p_fast.fu_outputs[fu]
                )

    def test_instruction_budget_error_matches(self, node, rng):
        setup, program = _generate(node, eps=1e-30, max_iterations=50)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        for backend in ("reference", "fast"):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, u0, f)
            with pytest.raises(SequencerError, match="instruction budget"):
                machine.run(max_instructions=10)

    def test_negative_feedback_init_reduces_identically(self, node, rng):
        """The folded residual reduction must seed |init| exactly like
        eval_feedback does — a negative register-file init value changes
        the MAXABS running value's floor."""
        import dataclasses

        setup, program = _generate(node, shape=(5, 5, 5), eps=5e-1,
                                   max_iterations=40)
        image = program.images[1]
        fb_key = next(
            key for key, resolved in image.inputs.items()
            if resolved.kind == "feedback"
        )
        image.inputs[fb_key] = dataclasses.replace(
            image.inputs[fb_key], value=-0.75
        )
        u0 = rng.random((5, 5, 5))
        f = rng.standard_normal((5, 5, 5))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)

    @pytest.mark.parametrize(
        "arm, disarm",
        [
            (("FP_OVERFLOW", "FP_INVALID"), ()),
            ((), ("CONDITION_FALSE",)),
            (("FP_OVERFLOW",), ("PIPELINE_COMPLETE",)),
            ((), ("CONDITION_TRUE", "CONDITION_FALSE")),
        ],
    )
    def test_rearmed_interrupt_configs_fuse_bit_identically(
        self, node, rng, arm, disarm
    ):
        """Armed-set variations fold into the fused heap replay: the
        delivered *and* dropped interrupt streams match the reference,
        including FP exceptions raised by non-finite data."""
        from repro.arch.interrupts import InterruptKind

        setup, program = _generate(node, max_iterations=20)
        u0 = rng.random((6, 6, 6))
        u0[2, 2, 2] = np.inf
        u0[3, 3, 3] = np.nan
        f = rng.standard_normal((6, 6, 6))

        def configured(backend):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, u0, f)
            for name in arm:
                machine.interrupts.arm(InterruptKind[name])
            for name in disarm:
                machine.interrupts.disarm(InterruptKind[name])
            return machine

        fused_probe = configured("fast")
        assert progplan.try_run_fused(fused_probe, program, 1_000_000) \
            is not None, "armed-set variation must not disable fusion"

        m_ref = configured("reference")
        r_ref = m_ref.run()
        m_fast = configured("fast")
        r_fast = m_fast.run()
        assert r_ref.total_cycles == r_fast.total_cycles

        def streams(machine):
            # repr: NaN condition payloads must compare equal
            return (
                [repr(x) for x in _irq_stream(machine)],
                [
                    repr((i.cycle, i.kind, i.source, i.payload))
                    for i in machine.interrupts.dropped
                ],
            )

        assert streams(m_ref) == streams(m_fast)
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )

    def test_registered_handler_falls_back(self, node, rng):
        """Handlers observe mid-run delivery; the fused engine declines
        (via the public configuration API) and the per-issue path still
        produces reference behaviour."""
        from repro.arch.interrupts import InterruptKind

        setup, program = _generate(node, max_iterations=10)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        seen = []

        def make(backend):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, u0, f)
            machine.interrupts.on(
                InterruptKind.PIPELINE_COMPLETE, seen.append
            )
            return machine

        probe = make("fast")
        assert progplan.try_run_fused(probe, program, 1_000_000) is None

        m_ref = make("reference")
        r_ref = m_ref.run()
        n_after_ref = len(seen)
        m_fast = make("fast")
        r_fast = m_fast.run()
        assert r_ref.total_cycles == r_fast.total_cycles
        assert len(seen) == 2 * n_after_ref  # handler fired on both runs
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )

    def test_pending_interrupts_fall_back(self, node, rng):
        """A pre-queued interrupt would interleave with the replay; the
        fused engine declines."""
        from repro.arch.interrupts import InterruptKind

        setup, program = _generate(node, max_iterations=5)
        machine = NSCMachine(node, backend="fast")
        machine.load_program(program)
        load_jacobi_inputs(
            machine, setup, rng.random((6, 6, 6)),
            rng.standard_normal((6, 6, 6)),
        )
        machine.interrupts.post(InterruptKind.PIPELINE_COMPLETE, 5,
                                source="host")
        assert progplan.try_run_fused(machine, program, 1_000_000) is None


class TestResidualSkewFusion:
    """Ablation builds (auto_balance=False: residual stream skew) now
    compile — skewed operands become offset windows into padded copies."""

    def _skewed(self, node, shape=(5, 6, 7), eps=1e-4, max_iterations=40,
                loop=True):
        setup = build_jacobi_program(
            node, shape, eps=eps, max_iterations=max_iterations, loop=loop
        )
        program = MicrocodeGenerator(node, auto_balance=False).generate(
            setup.program
        )
        return setup, program

    def test_skewed_program_compiles(self, node):
        setup, program = self._skewed(node)
        plan = progplan.compiled_plan(program, node.params)
        assert any(
            kernel._stream_skews or kernel._row_skews or kernel._tap_skews
            for kernel in plan.kernels.values()
        ), "ablation build produced no skew: the test lost its subject"

    def test_skewed_run_bit_identical(self, node, rng):
        setup, program = self._skewed(node)
        u0 = rng.random((5, 6, 7))
        f = rng.standard_normal((5, 6, 7))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)

    def test_skewed_matches_per_issue_path(self, node, rng):
        setup, program = self._skewed(node)
        u0 = rng.random((5, 6, 7))
        f = rng.standard_normal((5, 6, 7))
        unfused = _run(node, setup, program, u0, f, "fast", fuse=False)
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(unfused, fused)

    def test_skewed_exception_flags_match(self, node):
        """Skew can shift a non-finite element out of a consumer's
        window, so propagation coverage must not be assumed — per-FU
        flags and dropped FP interrupts still match the reference."""
        setup, program = self._skewed(node, max_iterations=10)
        u0 = np.zeros((5, 6, 7))
        u0[2, 3, 1] = np.inf
        u0[1, 2, 3] = np.nan
        f = np.zeros((5, 6, 7))
        m_ref, r_ref = _run(node, setup, program, u0, f, "reference")
        m_fast, r_fast = _run(node, setup, program, u0, f, "fast")
        assert [p.exceptions for p in r_ref.pipeline_results] == [
            p.exceptions for p in r_fast.pipeline_results
        ]
        assert [
            (i.cycle, i.kind, i.source) for i in m_ref.interrupts.dropped
        ] == [
            (i.cycle, i.kind, i.source) for i in m_fast.interrupts.dropped
        ]
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )


class TestMidRunRejection:
    def test_mid_run_fusion_rejection_falls_back_cleanly(self, node, rng,
                                                         monkeypatch):
        """A FusionUnsupported surfacing after execution has begun must
        not escape as a crash: the machine is untouched up to the commit
        point, so the per-issue fallback reproduces the reference run."""
        setup, program = _generate(node, max_iterations=15)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        ref = _run(node, setup, program, u0, f, "reference")

        calls = {"n": 0}
        real_issue = progplan.BoundImage.issue_compute

        def flaky_issue(self):
            calls["n"] += 1
            if calls["n"] == 4:
                raise progplan.FusionUnsupported("injected mid-run")
            return real_issue(self)

        monkeypatch.setattr(progplan.BoundImage, "issue_compute", flaky_issue)
        fused = _run(node, setup, program, u0, f, "fast")
        assert calls["n"] >= 4  # the rejection really fired mid-run
        _assert_runs_identical(ref, fused)

    def test_mid_run_rejection_leaves_machine_unmutated(self, node, rng,
                                                        monkeypatch):
        """Until the commit point nothing lands on the machine: cycle,
        DMA statistics, interrupt queues, and memory stay pristine when a
        fused run aborts."""
        setup, program = _generate(node, max_iterations=15)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        machine = NSCMachine(node, backend="fast")
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, u0, f)
        import copy

        before_u = machine.get_variable("u").copy()
        before_stats = copy.deepcopy(machine.dma.stats)

        calls = {"n": 0}
        real_issue = progplan.BoundImage.issue_compute

        def flaky_issue(self):
            calls["n"] += 1
            if calls["n"] == 4:
                raise progplan.FusionUnsupported("injected mid-run")
            return real_issue(self)

        monkeypatch.setattr(progplan.BoundImage, "issue_compute", flaky_issue)
        assert progplan.try_run_fused(machine, program, 1_000_000) is None
        assert machine.cycle == 0
        assert machine.dma.stats == before_stats
        assert machine.interrupts.pending() == 0
        assert not machine.interrupts.delivered
        np.testing.assert_array_equal(machine.get_variable("u"), before_u)


class TestMultiNodeSteppers:
    def _skewed_pair(self, backend):
        from repro.arch.node import NodeConfig
        from repro.sim.multinode import MultiNodeStencil

        node = NodeConfig()
        setup = build_jacobi_program(node, (4, 4, 6), eps=1e-30, loop=False)
        program = MicrocodeGenerator(node, auto_balance=False).generate(
            setup.program
        )
        stencil = MultiNodeStencil(
            hypercube_dim=1,
            shape=(4, 4, 8),
            eps=1e-30,
            precompiled=(setup, program),
            backend=backend,
        )
        return stencil

    def test_skewed_multinode_program_now_fuses(self):
        """The ablation build used to drop to the reference stepper; it
        must now run through the batched fused engine, bit-identically."""
        fast = self._skewed_pair("fast")
        # fused_stepper accepting the program proves the engine engaged
        progplan.fused_stepper(self._skewed_pair("fast"))
        results = {}
        for backend, stencil in (("reference", self._skewed_pair("reference")),
                                 ("fast", fast)):
            results[backend] = (stencil, stencil.run(max_iterations=4))
        (s_ref, r_ref), (s_fast, r_fast) = (
            results["reference"], results["fast"]
        )
        assert r_ref.compute_cycles == r_fast.compute_cycles
        assert r_ref.residual_history == r_fast.residual_history
        np.testing.assert_array_equal(s_ref.gather("u"), s_fast.gather("u"))

    def test_declined_program_uses_per_issue_middle_tier(self, monkeypatch):
        """When the whole-system compiler declines, the fast backend must
        land on the per-issue *fast* path — not the reference
        interpreter — with identical results."""
        import repro.sim.multinode as multinode_mod
        import repro.sim.pipeline_exec as pipeline_exec_mod

        def refuse(stencil):
            raise progplan.FusionUnsupported("forced for the test")

        monkeypatch.setattr(progplan, "fused_stepper", refuse)
        backends_seen = []
        real_execute = pipeline_exec_mod.execute_image

        def spying_execute(image, machine, keep_outputs=False,
                           backend="reference"):
            backends_seen.append(backend)
            return real_execute(image, machine, keep_outputs=keep_outputs,
                                backend=backend)

        monkeypatch.setattr(multinode_mod, "execute_image", spying_execute)
        ref = self._skewed_pair("reference")
        r_ref = ref.run(max_iterations=4)
        assert set(backends_seen) == {"reference"}
        backends_seen.clear()
        fast = self._skewed_pair("fast")
        r_fast = fast.run(max_iterations=4)
        assert backends_seen and set(backends_seen) == {"fast"}
        assert r_ref.compute_cycles == r_fast.compute_cycles
        assert r_ref.residual_history == r_fast.residual_history
        np.testing.assert_array_equal(ref.gather("u"), fast.gather("u"))


class TestControlScriptShapes:
    """Fused execution of scripts beyond the straight convergence loop."""

    def _custom_program(self, node, control_ops):
        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-3, loop=False)
        prog = setup.program
        prog.control.clear()
        for op in control_ops:
            prog.add_control(op)
        return setup, MicrocodeGenerator(node).generate(prog)

    def _parity(self, node, setup, program, rng):
        u0 = rng.random((5, 5, 5))
        f = rng.standard_normal((5, 5, 5))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)
        return fused

    def test_nested_repeat_with_swaps(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            Repeat(
                body=(
                    ExecPipeline(1),
                    SwapVars("u", "u_new"),
                    Repeat(body=(ExecPipeline(1), SwapVars("u", "u_new")), times=2),
                ),
                times=3,
            ),
            Halt(),
        ]
        setup, program = self._custom_program(node, ops)
        _m, result = self._parity(node, setup, program, rng)
        assert result.instructions_issued == 1 + 3 * 3
        assert result.halted

    def test_halt_inside_repeat_stops_everything(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            Repeat(body=(ExecPipeline(1), Halt()), times=5),
            ExecPipeline(1),
        ]
        setup, program = self._custom_program(node, ops)
        _m, result = self._parity(node, setup, program, rng)
        assert result.instructions_issued == 2
        assert result.halted

    def test_loop_with_multi_op_body(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            LoopUntil(
                body=(
                    ExecPipeline(1),
                    SwapVars("u", "u_new"),
                    CacheSwap(caches=(0,)),
                    CacheSwap(caches=(0,)),
                ),
                condition_pipeline=1,
                max_iterations=40,
            ),
            Halt(),
        ]
        setup, program = self._custom_program(node, ops)
        self._parity(node, setup, program, rng)

    def test_repeat_zero_times_is_noop(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            Repeat(body=(ExecPipeline(1),), times=0),
            ExecPipeline(1),
            Halt(),
        ]
        setup, program = self._custom_program(node, ops)
        _m, result = self._parity(node, setup, program, rng)
        assert result.instructions_issued == 2


class TestPlanCache:
    def test_program_plans_shared_across_machines(self, node, rng):
        setup, program = _generate(node, max_iterations=10)
        plan_a = progplan.compiled_plan(program, node.params)
        plan_b = progplan.compiled_plan(program, node.params)
        assert plan_a is plan_b

    def test_control_script_distinguishes_plans(self, node):
        """Identical microwords, different loop bound: distinct plans."""
        setup_a, prog_a = _generate(node, max_iterations=10)
        setup_b, prog_b = _generate(node, max_iterations=20)
        assert prog_a.fingerprint() == prog_b.fingerprint()  # same microcode
        assert (
            progplan.program_fingerprint(prog_a)
            != progplan.program_fingerprint(prog_b)
        )
        plan_a = progplan.compiled_plan(prog_a, node.params)
        plan_b = progplan.compiled_plan(prog_b, node.params)
        assert plan_a is not plan_b

    def test_input_constants_distinguish_plans(self, node):
        """Identical microwords, different literal operand: distinct plans.

        A ``const``-kind FU input's value lives in the constant table,
        not the microword bits, so two pipelines differing only in a
        literal share :meth:`MachineProgram.fingerprint`.  The plan key
        must still separate them — the compiled kernels bake the
        constant in, and a collision replays the wrong arithmetic on
        every later program (found by the analysis property suite)."""
        from repro.arch.funcunit import Opcode
        from repro.compose.builders import PipelineBuilder
        from repro.diagram.program import VisualProgram

        def build(const_value):
            prog = VisualProgram(name="const-collision")
            prog.declare("a", plane=0, length=8)
            prog.declare("result", plane=1, length=8)
            b = PipelineBuilder(node, prog, vector_length=8)
            total = b.apply(Opcode.FADD, b.read_var("a"),
                            b.constant(const_value))
            b.write_var(b.apply(Opcode.PASS, total), "result")
            b.build()
            prog.add_control(ExecPipeline(0))
            prog.add_control(Halt())
            return MicrocodeGenerator(node).generate(prog)

        prog_a = build(0.0)
        prog_b = build(1.0)
        assert prog_a.fingerprint() == prog_b.fingerprint()
        assert (
            progplan.program_fingerprint(prog_a)
            != progplan.program_fingerprint(prog_b)
        )

    def test_two_param_sets_on_one_image_do_not_thrash(self, node, subset_node,
                                                       monkeypatch):
        """Alternating params on one image must not recompile each time."""
        import repro.sim.fastpath as fastpath

        setup, program = _generate(node, shape=(4, 4, 4))
        image = program.images[1]
        image.__dict__.pop("_fastpath_plan", None)
        builds = []
        real_build = fastpath._build_plan

        def counting_build(img, params):
            builds.append(params)
            return real_build(img, params)

        monkeypatch.setattr(fastpath, "_build_plan", counting_build)
        PLAN_CACHE.clear()
        for _round in range(4):
            fastpath.plan_for(image, node.params)
            fastpath.plan_for(image, subset_node.params)
        assert len(builds) == 2  # one compile per params set, ever
        stats = PLAN_CACHE.stats
        assert stats.misses == 2
        assert stats.hits >= 4

    def test_plan_cache_lru_bound(self):
        from repro.sim.fastpath import PlanCache

        cache = PlanCache(maxsize=2)
        for i in range(5):
            cache.get_or_build(("k", i), lambda i=i: i)
        assert len(cache) == 2
        assert ("k", 4) in cache and ("k", 3) in cache


class TestServicePlanLayer:
    def test_program_cache_exposes_shared_plan_layer(self):
        from repro.service.cache import ProgramCache

        cache = ProgramCache()
        assert cache.plans is PLAN_CACHE

    def test_warm_plan_populates_engine_cache(self, node):
        from repro.service.cache import ProgramCache

        setup, program = _generate(node, shape=(4, 4, 4), max_iterations=5)
        PLAN_CACHE.clear()
        cache = ProgramCache()
        plan = cache.warm_plan(program, node.params)
        assert plan is not None
        assert progplan.compiled_plan(program, node.params) is plan
        assert PLAN_CACHE.stats.hits >= 1
