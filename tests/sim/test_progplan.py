"""The whole-program compiled engine: parity with the reference sequencer.

The compiled schedule's contract is the same as the per-issue fast path's —
bit-identical observable behaviour — but it covers the *control script*
too: loop iteration counts, issue traces, relocations, cache swaps, the
interrupt stream, and DMA statistics all have to match a step-by-step
reference run exactly.
"""

import numpy as np
import pytest

from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.diagram.program import (
    CacheSwap,
    ExecPipeline,
    Halt,
    LoopUntil,
    Repeat,
    SwapVars,
)
from repro.sim import progplan
from repro.sim.fastpath import PLAN_CACHE
from repro.sim.machine import NSCMachine
from repro.sim.sequencer import SequencerError


def _generate(node, shape=(6, 6, 6), eps=1e-4, max_iterations=300, loop=True):
    setup = build_jacobi_program(
        node, shape, eps=eps, max_iterations=max_iterations, loop=loop
    )
    return setup, MicrocodeGenerator(node).generate(setup.program)


def _run(node, setup, program, u0, f, backend, fuse=True, **kwargs):
    shape = setup.shape
    machine = NSCMachine(node, backend=backend)
    machine.load_program(program)
    load_jacobi_inputs(machine, setup, u0, f)
    result = machine.run(fuse=fuse, **kwargs)
    return machine, result


def _irq_stream(machine):
    return [
        (i.cycle, i.kind, i.source, i.payload)
        for i in machine.interrupts.delivered
    ]


def _assert_runs_identical(ref, fused):
    (m_ref, r_ref), (m_fast, r_fast) = ref, fused
    assert r_ref.total_cycles == r_fast.total_cycles
    assert r_ref.total_flops == r_fast.total_flops
    assert r_ref.instructions_issued == r_fast.instructions_issued
    assert r_ref.issue_trace == r_fast.issue_trace
    assert r_ref.loop_iterations == r_fast.loop_iterations
    assert r_ref.converged == r_fast.converged
    assert r_ref.halted == r_fast.halted
    assert len(r_ref.pipeline_results) == len(r_fast.pipeline_results)
    for p_ref, p_fast in zip(r_ref.pipeline_results, r_fast.pipeline_results):
        assert p_ref.cycles == p_fast.cycles
        assert p_ref.condition_result == p_fast.condition_result
        assert p_ref.condition_value == p_fast.condition_value
        assert p_ref.exceptions == p_fast.exceptions
    for name in m_ref.memory.variables:
        np.testing.assert_array_equal(
            m_ref.get_variable(name), m_fast.get_variable(name)
        )
    assert m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
    assert m_ref.cycle == m_fast.cycle
    assert m_ref.dma.stats == m_fast.dma.stats
    assert m_ref.dma.device_busy == m_fast.dma.device_busy
    # Interrupt.__eq__ compares cycles only; parity means the full
    # (cycle, kind, source, payload) stream matches
    assert _irq_stream(m_ref) == _irq_stream(m_fast)
    assert m_ref.interrupts.pending() == m_fast.interrupts.pending()


class TestFusedRunParity:
    def test_convergence_run_bit_identical(self, node, rng):
        setup, program = _generate(node)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast", fuse=True)
        _assert_runs_identical(ref, fused)
        assert fused[1].converged

    def test_fused_matches_per_issue_path(self, node, rng):
        setup, program = _generate(node)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        unfused = _run(node, setup, program, u0, f, "fast", fuse=False)
        fused = _run(node, setup, program, u0, f, "fast", fuse=True)
        _assert_runs_identical(unfused, fused)

    def test_bounded_run_not_converged(self, node, rng):
        setup, program = _generate(node, eps=1e-30, max_iterations=9)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)
        assert not fused[1].converged
        assert fused[1].loop_iterations[setup.update_pipeline] == 9

    def test_exception_flags_and_drops_match(self, node):
        """Non-finite data must route through the exact path with the
        reference's per-FU flags and dropped FP interrupts."""
        setup, program = _generate(node, max_iterations=20)
        shape = (6, 6, 6)
        u0 = np.zeros(shape)
        u0[2, 2, 2] = np.inf
        u0[3, 3, 3] = np.nan
        f = np.zeros(shape)
        m_ref, r_ref = _run(node, setup, program, u0, f, "reference")
        m_fast, r_fast = _run(node, setup, program, u0, f, "fast")
        assert [p.exceptions for p in r_ref.pipeline_results] == [
            p.exceptions for p in r_fast.pipeline_results
        ]
        assert any(p.exceptions for p in r_fast.pipeline_results)
        assert [
            (i.cycle, i.kind, i.source) for i in m_ref.interrupts.dropped
        ] == [
            (i.cycle, i.kind, i.source) for i in m_fast.interrupts.dropped
        ]
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )

    def test_keep_outputs_still_matches_reference(self, node, rng):
        """keep_outputs uses the per-issue path; behaviour is unchanged."""
        setup, program = _generate(node, max_iterations=5)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        m_ref, r_ref = _run(
            node, setup, program, u0, f, "reference", keep_outputs=True
        )
        m_fast, r_fast = _run(
            node, setup, program, u0, f, "fast", keep_outputs=True
        )
        assert r_ref.total_cycles == r_fast.total_cycles
        last_ref = r_ref.pipeline_results[-1]
        last_fast = r_fast.pipeline_results[-1]
        assert set(last_ref.fu_outputs) == set(last_fast.fu_outputs)
        for fu in last_ref.fu_outputs:
            np.testing.assert_array_equal(
                last_ref.fu_outputs[fu], last_fast.fu_outputs[fu]
            )

    def test_instruction_budget_error_matches(self, node, rng):
        setup, program = _generate(node, eps=1e-30, max_iterations=50)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        for backend in ("reference", "fast"):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, u0, f)
            with pytest.raises(SequencerError, match="instruction budget"):
                machine.run(max_instructions=10)

    def test_negative_feedback_init_reduces_identically(self, node, rng):
        """The folded residual reduction must seed |init| exactly like
        eval_feedback does — a negative register-file init value changes
        the MAXABS running value's floor."""
        import dataclasses

        setup, program = _generate(node, shape=(5, 5, 5), eps=5e-1,
                                   max_iterations=40)
        image = program.images[1]
        fb_key = next(
            key for key, resolved in image.inputs.items()
            if resolved.kind == "feedback"
        )
        image.inputs[fb_key] = dataclasses.replace(
            image.inputs[fb_key], value=-0.75
        )
        u0 = rng.random((5, 5, 5))
        f = rng.standard_normal((5, 5, 5))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)

    def test_non_default_interrupt_config_falls_back(self, node, rng):
        """An armed-set tweak disables fusion but not correctness."""
        from repro.arch.interrupts import InterruptKind

        setup, program = _generate(node, max_iterations=30)
        u0 = rng.random((6, 6, 6))
        f = rng.standard_normal((6, 6, 6))
        results = {}
        for backend in ("reference", "fast"):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, u0, f)
            machine.interrupts.arm(InterruptKind.FP_OVERFLOW)
            results[backend] = (machine, machine.run())
        (m_ref, r_ref), (m_fast, r_fast) = (
            results["reference"], results["fast"]
        )
        assert r_ref.total_cycles == r_fast.total_cycles
        np.testing.assert_array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u")
        )


class TestMultiNodeFallback:
    def test_unfusable_program_falls_back_to_reference_stepper(self):
        """An ablation build (no auto-balancing: residual stream skew) is
        unfusable; the fast backend must still run it, bit-identically."""
        from repro.arch.node import NodeConfig
        from repro.sim.multinode import MultiNodeStencil

        node = NodeConfig()
        setup = build_jacobi_program(node, (4, 4, 6), eps=1e-30, loop=False)
        program = MicrocodeGenerator(node, auto_balance=False).generate(
            setup.program
        )
        results = {}
        for backend in ("reference", "fast"):
            stencil = MultiNodeStencil(
                hypercube_dim=1,
                shape=(4, 4, 8),
                eps=1e-30,
                precompiled=(setup, program),
                backend=backend,
            )
            results[backend] = (stencil, stencil.run(max_iterations=4))
        (s_ref, r_ref), (s_fast, r_fast) = (
            results["reference"], results["fast"]
        )
        assert r_ref.compute_cycles == r_fast.compute_cycles
        assert r_ref.residual_history == r_fast.residual_history
        np.testing.assert_array_equal(s_ref.gather("u"), s_fast.gather("u"))


class TestControlScriptShapes:
    """Fused execution of scripts beyond the straight convergence loop."""

    def _custom_program(self, node, control_ops):
        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-3, loop=False)
        prog = setup.program
        prog.control.clear()
        for op in control_ops:
            prog.add_control(op)
        return setup, MicrocodeGenerator(node).generate(prog)

    def _parity(self, node, setup, program, rng):
        u0 = rng.random((5, 5, 5))
        f = rng.standard_normal((5, 5, 5))
        ref = _run(node, setup, program, u0, f, "reference")
        fused = _run(node, setup, program, u0, f, "fast")
        _assert_runs_identical(ref, fused)
        return fused

    def test_nested_repeat_with_swaps(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            Repeat(
                body=(
                    ExecPipeline(1),
                    SwapVars("u", "u_new"),
                    Repeat(body=(ExecPipeline(1), SwapVars("u", "u_new")), times=2),
                ),
                times=3,
            ),
            Halt(),
        ]
        setup, program = self._custom_program(node, ops)
        _m, result = self._parity(node, setup, program, rng)
        assert result.instructions_issued == 1 + 3 * 3
        assert result.halted

    def test_halt_inside_repeat_stops_everything(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            Repeat(body=(ExecPipeline(1), Halt()), times=5),
            ExecPipeline(1),
        ]
        setup, program = self._custom_program(node, ops)
        _m, result = self._parity(node, setup, program, rng)
        assert result.instructions_issued == 2
        assert result.halted

    def test_loop_with_multi_op_body(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            LoopUntil(
                body=(
                    ExecPipeline(1),
                    SwapVars("u", "u_new"),
                    CacheSwap(caches=(0,)),
                    CacheSwap(caches=(0,)),
                ),
                condition_pipeline=1,
                max_iterations=40,
            ),
            Halt(),
        ]
        setup, program = self._custom_program(node, ops)
        self._parity(node, setup, program, rng)

    def test_repeat_zero_times_is_noop(self, node, rng):
        ops = [
            ExecPipeline(0),
            CacheSwap(caches=(0, 1)),
            Repeat(body=(ExecPipeline(1),), times=0),
            ExecPipeline(1),
            Halt(),
        ]
        setup, program = self._custom_program(node, ops)
        _m, result = self._parity(node, setup, program, rng)
        assert result.instructions_issued == 2


class TestPlanCache:
    def test_program_plans_shared_across_machines(self, node, rng):
        setup, program = _generate(node, max_iterations=10)
        plan_a = progplan.compiled_plan(program, node.params)
        plan_b = progplan.compiled_plan(program, node.params)
        assert plan_a is plan_b

    def test_control_script_distinguishes_plans(self, node):
        """Identical microwords, different loop bound: distinct plans."""
        setup_a, prog_a = _generate(node, max_iterations=10)
        setup_b, prog_b = _generate(node, max_iterations=20)
        assert prog_a.fingerprint() == prog_b.fingerprint()  # same microcode
        assert (
            progplan.program_fingerprint(prog_a)
            != progplan.program_fingerprint(prog_b)
        )
        plan_a = progplan.compiled_plan(prog_a, node.params)
        plan_b = progplan.compiled_plan(prog_b, node.params)
        assert plan_a is not plan_b

    def test_two_param_sets_on_one_image_do_not_thrash(self, node, subset_node,
                                                       monkeypatch):
        """Alternating params on one image must not recompile each time."""
        import repro.sim.fastpath as fastpath

        setup, program = _generate(node, shape=(4, 4, 4))
        image = program.images[1]
        image.__dict__.pop("_fastpath_plan", None)
        builds = []
        real_build = fastpath._build_plan

        def counting_build(img, params):
            builds.append(params)
            return real_build(img, params)

        monkeypatch.setattr(fastpath, "_build_plan", counting_build)
        PLAN_CACHE.clear()
        for _round in range(4):
            fastpath.plan_for(image, node.params)
            fastpath.plan_for(image, subset_node.params)
        assert len(builds) == 2  # one compile per params set, ever
        stats = PLAN_CACHE.stats
        assert stats.misses == 2
        assert stats.hits >= 4

    def test_plan_cache_lru_bound(self):
        from repro.sim.fastpath import PlanCache

        cache = PlanCache(maxsize=2)
        for i in range(5):
            cache.get_or_build(("k", i), lambda i=i: i)
        assert len(cache) == 2
        assert ("k", 4) in cache and ("k", 3) in cache


class TestServicePlanLayer:
    def test_program_cache_exposes_shared_plan_layer(self):
        from repro.service.cache import ProgramCache

        cache = ProgramCache()
        assert cache.plans is PLAN_CACHE

    def test_warm_plan_populates_engine_cache(self, node):
        from repro.service.cache import ProgramCache

        setup, program = _generate(node, shape=(4, 4, 4), max_iterations=5)
        PLAN_CACHE.clear()
        cache = ProgramCache()
        plan = cache.warm_plan(program, node.params)
        assert plan is not None
        assert progplan.compiled_plan(program, node.params) is plan
        assert PLAN_CACHE.stats.hits >= 1
