"""WorkerPool: deterministic ordering, failure isolation, timeouts,
and graceful recovery from hard-killed workers."""

import os
import time

import pytest

from repro.service.pool import WorkerOutcome, WorkerPool


# top-level functions so the process pool can pickle them
def _square(x):
    return x * x


def _explode_on_three(x):
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x


def _sleep_inverse(x):
    # later items finish first: exposes any completion-order leakage
    time.sleep(0.15 - 0.04 * x)
    return x


def _hang(x):
    time.sleep(20)
    return x


def _kill_worker_always(arg):
    """Hard-kill the worker on the victim value, every single time."""
    _latch, x = arg
    if x == 2:
        os._exit(9)
    return x * x


def _kill_worker_once(arg):
    """Hard-kill the worker the first time the victim value runs.

    ``arg`` is ``(latch_path, x)``: the exclusive-create latch makes the
    kill a one-shot across the rebuilt executor's fresh workers, so the
    resubmitted item completes.  ``os._exit`` skips all cleanup — the
    executor sees a vanished process, i.e. ``BrokenProcessPool``.
    """
    latch, x = arg
    if x == 2:
        try:
            with open(latch, "x"):
                pass
            os._exit(9)
        except FileExistsError:
            pass
    return x * x


class TestSerial:
    def test_results_in_order(self):
        pool = WorkerPool(max_workers=1)
        outcomes = pool.map(_square, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        assert all(o.ok for o in outcomes)

    def test_failure_captured_not_raised(self):
        pool = WorkerPool(max_workers=1)
        outcomes = pool.map(_explode_on_three, [1, 3, 5])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "ValueError"
        assert "boom at 3" in outcomes[1].error
        assert "boom at 3" in outcomes[1].traceback

    def test_empty_items(self):
        assert WorkerPool(max_workers=1).map(_square, []) == []

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)
        with pytest.raises(ValueError):
            WorkerPool(timeout=0)


class TestParallel:
    def test_results_ordered_despite_completion_order(self):
        pool = WorkerPool(max_workers=3)
        outcomes = pool.map(_sleep_inverse, [0, 1, 2])
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.value for o in outcomes] == [0, 1, 2]

    def test_one_bad_job_does_not_sink_the_batch(self):
        pool = WorkerPool(max_workers=2)
        outcomes = pool.map(_explode_on_three, [1, 2, 3, 4])
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert outcomes[2].error_type == "ValueError"
        assert [o.value for o in outcomes if o.ok] == [1, 2, 4]

    def test_timeout_reported_as_failure(self):
        # two items: a single item would short-circuit to the serial path
        outcomes = WorkerPool(max_workers=2, timeout=0.5).map(_hang, [1, 2])
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "TimeoutError"


class TestChunkedSubmission:
    """Many small jobs ride a bounded number of futures, in order."""

    def test_ordering_preserved_across_chunks(self):
        pool = WorkerPool(max_workers=2)
        items = list(range(40))
        outcomes = pool.map(_square, items)
        assert [o.index for o in outcomes] == items
        assert [o.value for o in outcomes] == [i * i for i in items]

    def test_throughput_bounded_future_count(self):
        """The chunked path submits at most workers * CHUNKS_PER_WORKER
        futures — a 64-job batch must not pay 64 executor round-trips."""
        pool = WorkerPool(max_workers=2)
        outcomes = pool.map(_square, list(range(64)))
        assert len(outcomes) == 64
        assert 0 < pool.last_submitted <= 2 * WorkerPool.CHUNKS_PER_WORKER

    def test_failures_inside_chunks_stay_isolated(self):
        pool = WorkerPool(max_workers=2)
        outcomes = pool.map(_explode_on_three, list(range(10)))
        assert [o.ok for o in outcomes] == [i != 3 for i in range(10)]
        assert outcomes[3].error_type == "ValueError"
        assert "boom at 3" in outcomes[3].traceback

    def test_timeout_forces_per_item_futures(self):
        """A timeout must bound each job individually, so the chunked
        path is bypassed and every item gets its own future."""
        pool = WorkerPool(max_workers=2, timeout=30.0)
        outcomes = pool.map(_square, [1, 2, 3, 4])
        assert [o.value for o in outcomes] == [1, 4, 9, 16]
        assert pool.last_submitted == 4


class TestBrokenPoolRecovery:
    """A hard-killed worker costs a rebuild, never a result."""

    def test_chunked_path_rebuilds_once_and_loses_nothing(self, tmp_path):
        pool = WorkerPool(max_workers=2)
        items = [(str(tmp_path / "latch"), x) for x in range(6)]
        outcomes = pool.map(_kill_worker_once, items)
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [x * x for x in range(6)]
        assert pool.last_rebuilds == 1

    def test_timeout_path_rebuilds_once_and_loses_nothing(self, tmp_path):
        # a timeout forces per-item futures; the rebuild must resubmit
        # exactly the items whose results the crash took down
        pool = WorkerPool(max_workers=2, timeout=30.0)
        items = [(str(tmp_path / "latch"), x) for x in range(4)]
        outcomes = pool.map(_kill_worker_once, items)
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
        assert pool.last_rebuilds == 1

    def test_repeat_crashes_degrade_to_failures(self, tmp_path):
        # the victim kills its worker on every execution: the rebuild
        # happens once, the repeat crash is *captured* as a
        # BrokenProcessPool failure — never raised, and never an
        # endless rebuild loop
        pool = WorkerPool(max_workers=2, timeout=30.0)
        items = [(None, x) for x in range(4)]
        outcomes = pool.map(_kill_worker_always, items)
        assert pool.last_rebuilds == 1
        by_value = {x: o for (_l, x), o in zip(items, outcomes)}
        assert not by_value[2].ok
        assert by_value[2].error_type == "BrokenProcessPool"
        assert all(by_value[x].ok for x in (0, 1, 3))

    def test_timeout_cancels_stragglers(self):
        # both jobs hang: their futures are still running when the map
        # gives up, and the pool must count (and cancel) every one so
        # executor shutdown cannot block on them
        pool = WorkerPool(max_workers=2, timeout=0.5)
        outcomes = pool.map(_hang, [1, 2])
        assert all(o.error_type == "TimeoutError" for o in outcomes)
        assert pool.last_stragglers == 2


class TestOutcome:
    def test_failure_constructor(self):
        outcome = WorkerOutcome.failure(4, KeyError("missing"))
        assert outcome.index == 4
        assert not outcome.ok
        assert outcome.error_type == "KeyError"
