"""Chaos suite: injected faults, retries, resume, degradation.

The claims under test are the reliability layer's contracts
(``docs/RELIABILITY.md``):

- a transient fault plus a retry budget produces a result store
  *canonically identical* to the fault-free run (per injection site);
- a run crashed mid-sweep leaves a clean store prefix, and ``resume``
  converges it to the uninterrupted run's digest — even when the crash
  tore the trailing record in half;
- a hard-killed pool worker loses zero jobs (the pool rebuilds once);
- shared-memory transport trouble demotes the batch to pickling with
  the demotion recorded, never failing the batch.

Digest-equality assertions run serially (``workers=1``): ``cache_hit``
on parallel runs depends on which worker a job landed in, which is
scheduling, not simulation.  Parallel chaos tests assert the stable
subset (converged / sweeps / cycles) instead.
"""

import json

import pytest

from repro.service import faults
from repro.service.faults import (
    ENV_VAR,
    FaultConfigError,
    FaultInjected,
    FaultPlan,
    FaultRule,
)
from repro.service.jobs import SimJob
from repro.service.results import ResultStore
from repro.service.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    classify_error_type,
    classify_record,
)
from repro.service.runner import BatchRunner

FAST = dict(eps=1e-3, max_sweeps=500)
#: Distinct shapes so each job has its own job_id — identical specs
#: share a content hash, and a ``match`` rule would hit all of them.
SHAPES = [(5, 5, 5), (5, 5, 6), (5, 5, 7), (5, 5, 8)]


def _jobs(n=2, **extra):
    return [
        SimJob(method="jacobi", shape=SHAPES[i], **FAST, **extra)
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Injection must never outlive a test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    yield
    faults.install(None)


class TestFaultPlan:
    def test_decide_is_deterministic(self):
        plan = FaultPlan(
            rules=(FaultRule(site="worker.exec", rate=0.5, attempts=()),),
            seed=42,
        )
        triples = [("worker.exec", f"job{i}", a)
                   for i in range(20) for a in (1, 2)]
        first = [plan.decide(*t) is not None for t in triples]
        second = [plan.decide(*t) is not None for t in triples]
        assert first == second
        # a 0.5 rate over 40 draws fires some and skips some
        assert any(first) and not all(first)

    def test_rate_endpoints(self):
        always = FaultPlan(rules=(FaultRule(site="worker.exec"),))
        never = FaultPlan(
            rules=(FaultRule(site="worker.exec", rate=0.0),)
        )
        assert always.decide("worker.exec", "k") is not None
        assert never.decide("worker.exec", "k") is None

    def test_attempts_gate_defaults_to_first_only(self):
        plan = FaultPlan(rules=(FaultRule(site="worker.exec"),))
        assert plan.decide("worker.exec", "k", attempt=1) is not None
        assert plan.decide("worker.exec", "k", attempt=2) is None
        every = FaultPlan(
            rules=(FaultRule(site="worker.exec", attempts=()),)
        )
        assert every.decide("worker.exec", "k", attempt=7) is not None

    def test_match_targets_one_key(self):
        plan = FaultPlan(
            rules=(FaultRule(site="pool.submit", match="victim"),)
        )
        assert plan.decide("pool.submit", "victim") is not None
        assert plan.decide("pool.submit", "bystander") is None

    def test_sites_are_independent(self):
        plan = FaultPlan(rules=(FaultRule(site="store.append"),))
        assert plan.decide("store.append", "k") is not None
        assert plan.decide("worker.exec", "k") is None

    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="worker.exec", kind="hang", rate=0.25,
                          attempts=(1, 2), hang_s=3.0),
                FaultRule(site="shm.attach", match="abc"),
            ),
            seed=7,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_hook_round_trip(self, monkeypatch):
        plan = FaultPlan(rules=(FaultRule(site="worker.exec"),), seed=3)
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert faults.active_plan() == plan
        # the in-process plan wins over the environment
        other = FaultPlan(seed=99)
        with faults.active(other):
            assert faults.active_plan() == other
        assert faults.active_plan() == plan

    @pytest.mark.parametrize("bad", [
        dict(site="worker.explode"),
        dict(site="worker.exec", kind="meteor"),
        dict(site="pool.submit", kind="kill"),  # kill is worker-side
        dict(site="worker.exec", rate=1.5),
        dict(site="worker.exec", attempts=(0,)),
        dict(site="worker.exec", kind="hang", hang_s=0),
    ])
    def test_bad_rules_rejected(self, bad):
        with pytest.raises(FaultConfigError):
            FaultRule(**bad)

    def test_once_requires_latch_dir(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(rules=(FaultRule(site="worker.exec", once=True),))

    def test_bad_env_json_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.from_json("not json")
        with pytest.raises(FaultConfigError):
            FaultPlan.from_json("[1, 2]")

    def test_check_without_plan_is_a_no_op(self):
        faults.check("worker.exec", "anything")  # must not raise

    def test_check_raises_fault_injected(self):
        plan = FaultPlan(rules=(FaultRule(site="worker.exec"),))
        with faults.active(plan):
            with pytest.raises(FaultInjected) as info:
                faults.check("worker.exec", "k")
        assert info.value.site == "worker.exec"
        assert info.value.attempt == 1

    def test_kill_demotes_to_transient_in_parent(self, tmp_path):
        # os._exit in the parent would take down the orchestrator (and
        # the test runner); in MainProcess a kill must raise instead
        plan = FaultPlan(
            rules=(FaultRule(site="worker.exec", kind="kill",
                             once=True),),
            latch_dir=str(tmp_path),
        )
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                faults.check("worker.exec", "k")
            # once=True: the latch is claimed, a second check passes
            faults.check("worker.exec", "k")


class TestClassification:
    @pytest.mark.parametrize("name", [
        "TimeoutError", "BrokenProcessPool", "ShmAttachError",
        "FaultInjected",
    ])
    def test_infrastructure_failures_are_transient(self, name):
        assert classify_error_type(name) == TRANSIENT

    @pytest.mark.parametrize("name", [
        "DecompositionError", "CheckerError", "ValueError", None,
    ])
    def test_simulation_failures_are_permanent(self, name):
        assert classify_error_type(name) == PERMANENT

    def test_classify_record(self):
        assert classify_record({"ok": True}) is None
        assert classify_record(
            {"ok": False, "error_type": "TimeoutError"}
        ) == TRANSIENT
        # legacy records without the stamp: the "ExcName: msg" prefix
        assert classify_record(
            {"ok": False, "error": "TimeoutError: job exceeded 5s"}
        ) == TRANSIENT
        assert classify_record(
            {"ok": False, "error": "ValueError: bad"}
        ) == PERMANENT

    def test_retry_policy_schedule(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.5)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert RetryPolicy(max_attempts=3).delay(2) == 0.0
        assert policy.should_retry(2, TRANSIENT)
        assert not policy.should_retry(3, TRANSIENT)
        assert not policy.should_retry(1, PERMANENT)
        assert not policy.should_retry(1, None)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1)


class TestRetryDigestParity:
    """Per injection site: a fault plus retries changes *nothing* the
    store's canonical projection can see."""

    def _reference(self, tmp_path, jobs):
        store = ResultStore(str(tmp_path / "clean.jsonl"))
        _, summary = BatchRunner(workers=1, store=store).run(jobs)
        assert summary.failed == 0
        return store

    @pytest.mark.parametrize("site", ["worker.exec", "pool.submit"])
    def test_transient_fault_store_matches_fault_free(
        self, tmp_path, site
    ):
        jobs = _jobs(2, max_attempts=3)
        clean = self._reference(tmp_path, jobs)
        plan = FaultPlan(rules=(FaultRule(site=site),), seed=1)
        store = ResultStore(str(tmp_path / "faulty.jsonl"))
        runner = BatchRunner(workers=1, store=store, fault_plan=plan)
        records, summary = runner.run(jobs)
        assert summary.failed == 0
        assert summary.retried == 2
        assert [r["attempts"] for r in records] == [2, 2]
        assert all(
            r["retry_reasons"] == ["FaultInjected"] for r in records
        )
        assert store.digest() == clean.digest()
        counters = runner.last_telemetry.counters
        assert counters["retry.scheduled"] == 2
        if site == "pool.submit":
            # parent-side site: its firings land in the batch tracer
            # (worker.exec fires under the job's own shadowing tracer)
            assert counters["fault.pool.submit"] == 2

    def test_batch_level_policy_overrides_jobs(self, tmp_path):
        jobs = _jobs(1)  # max_attempts=1 on the job itself
        plan = FaultPlan(rules=(FaultRule(site="worker.exec"),))
        records, summary = BatchRunner(
            workers=1, fault_plan=plan, retry=RetryPolicy(max_attempts=2)
        ).run(jobs)
        assert summary.failed == 0
        assert records[0]["attempts"] == 2

    def test_exhausted_budget_fails_with_classification(self, tmp_path):
        jobs = _jobs(1, max_attempts=2)
        plan = FaultPlan(
            rules=(FaultRule(site="worker.exec", attempts=()),)
        )
        runner = BatchRunner(workers=1, fault_plan=plan)
        records, summary = runner.run(jobs)
        assert summary.failed == 1
        assert records[0]["attempts"] == 2
        assert records[0]["error_type"] == "FaultInjected"
        assert runner.last_telemetry.counters["retry.exhausted"] == 1

    def test_permanent_failure_is_not_retried(self):
        # nz=5 cannot split across 2 nodes: a simulation error, so the
        # retry budget must not burn attempts reproducing it
        job = SimJob(method="jacobi", shape=(5, 5, 5), hypercube_dim=1,
                     max_attempts=3, **FAST)
        records, summary = BatchRunner(workers=1).run([job])
        assert summary.failed == 1
        assert records[0]["attempts"] == 1
        assert "DecompositionError" in records[0]["error"]

    def test_env_hook_drives_pool_workers(self, tmp_path, monkeypatch):
        # no fault_plan argument: the environment alone must reach the
        # parent and every pool worker (the CI chaos job's path)
        plan = FaultPlan(rules=(FaultRule(site="worker.exec"),), seed=5)
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        jobs = _jobs(2, max_attempts=3)
        records, summary = BatchRunner(workers=2).run(jobs)
        assert summary.failed == 0
        assert [r["attempts"] for r in records] == [2, 2]
        assert all(
            r["retry_reasons"] == ["FaultInjected"] for r in records
        )


class TestPoolRecovery:
    def test_hard_killed_worker_loses_zero_jobs(self, tmp_path):
        # one job's first execution hard-kills its worker process
        # (os._exit — no exception, no cleanup).  The pool must rebuild
        # once and finish every job; the runner never even retries.
        jobs = _jobs(4)
        plan = FaultPlan(
            rules=(FaultRule(site="worker.exec", kind="kill",
                             match=jobs[1].job_id, once=True),),
            latch_dir=str(tmp_path / "latches"),
        )
        runner = BatchRunner(workers=2, fault_plan=plan)
        records, summary = runner.run(jobs)
        assert summary.failed == 0
        assert len(records) == len(jobs)
        assert [r["attempts"] for r in records] == [1, 1, 1, 1]
        assert runner.last_telemetry.counters["pool.rebuild"] == 1

    def test_hang_is_timed_out_and_retried(self, tmp_path):
        # the victim's first execution sleeps past the pool timeout; the
        # pool kills the hung worker, the runner classifies the
        # TimeoutError transient and the retry completes the job
        jobs = _jobs(2, max_attempts=2)
        plan = FaultPlan(
            rules=(FaultRule(site="worker.exec", kind="hang",
                             match=jobs[0].job_id, hang_s=30.0),),
        )
        records, summary = BatchRunner(
            workers=2, timeout=1.5, fault_plan=plan
        ).run(jobs)
        assert summary.failed == 0
        assert records[0]["attempts"] == 2
        assert records[0]["retry_reasons"] == ["TimeoutError"]
        assert records[1]["attempts"] == 1


class TestTransportDegradation:
    def test_shm_attach_failure_demotes_to_pickle(self, tmp_path):
        jobs = _jobs(2, max_attempts=2)
        clean, _ = BatchRunner(workers=2, transport="shm").run(jobs)
        plan = FaultPlan(rules=(FaultRule(site="shm.attach"),), seed=2)
        runner = BatchRunner(
            workers=2, transport="shm", fault_plan=plan
        )
        records, summary = runner.run(jobs)
        assert summary.failed == 0
        assert all(r["attempts"] == 2 for r in records)
        assert all("shm.attach" in r["transport_fallback"]
                   for r in records)
        assert runner.last_telemetry.counters["transport.fallback"] == 1
        # the demotion is a transport decision: simulation output is
        # identical to the healthy shm run
        for healthy, degraded in zip(clean, records):
            for key in ("converged", "sweeps", "cycles",
                        "error_vs_analytic"):
                assert healthy[key] == degraded[key]


class TestCrashAndResume:
    def _reference_digest(self, tmp_path, jobs):
        store = ResultStore(str(tmp_path / "reference.jsonl"))
        _, summary = BatchRunner(workers=1, store=store).run(jobs)
        assert summary.failed == 0
        return store.digest()

    def test_resume_after_mid_sweep_crash_converges(self, tmp_path):
        jobs = _jobs(4)
        reference = self._reference_digest(tmp_path, jobs)
        # crash the run at the third job's checkpoint append — the
        # moment a kill -9 mid-sweep would hit hardest
        plan = FaultPlan(
            rules=(FaultRule(site="store.append",
                             match=jobs[2].job_id),),
        )
        store = ResultStore(str(tmp_path / "crashed.jsonl"))
        with pytest.raises(FaultInjected):
            BatchRunner(workers=1, store=store, fault_plan=plan).run(jobs)
        assert len(store) == 2  # a clean prefix, nothing torn
        resumed = BatchRunner(workers=1, store=store, resume=True)
        records, summary = resumed.run(jobs)
        assert summary.failed == 0
        assert summary.resumed == 2
        assert store.digest() == reference
        counters = resumed.last_telemetry.counters
        assert counters["resume.skipped"] == 2

    def test_resume_after_torn_tail_converges(self, tmp_path):
        jobs = _jobs(3)
        reference = self._reference_digest(tmp_path, jobs)
        store = ResultStore(str(tmp_path / "torn.jsonl"))
        _, summary = BatchRunner(workers=1, store=store).run(jobs)
        assert summary.failed == 0
        # tear the last record in half, byte-level — the signature of a
        # writer killed inside its final write
        raw = store.path.read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n") + 1
        store.path.write_bytes(raw[: cut + 25])
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            records, summary = BatchRunner(
                workers=1, store=store, resume=True
            ).run(jobs)
        assert summary.failed == 0
        assert summary.resumed == 2  # the torn third record reran
        # the healed store still warns about the (now interior) torn
        # fragment on load, but decodes to the uninterrupted records
        with pytest.warns(RuntimeWarning, match="undecodable line"):
            assert store.digest() == reference
            assert store.truncated_tail is None

    def test_resume_over_empty_store_is_a_fresh_run(self, tmp_path):
        jobs = _jobs(2)
        store = ResultStore(str(tmp_path / "fresh.jsonl"))
        records, summary = BatchRunner(
            workers=1, store=store, resume=True
        ).run(jobs)
        assert summary.failed == 0
        assert summary.resumed == 0
        assert all("resumed" not in r for r in records)

    def test_resume_honors_repeats_as_a_multiset(self, tmp_path):
        # two instances of the same job share a job_id; one prior
        # success must redeem exactly one of them
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        store = ResultStore(str(tmp_path / "repeats.jsonl"))
        _, summary = BatchRunner(workers=1, store=store).run([job])
        assert summary.failed == 0
        records, summary = BatchRunner(
            workers=1, store=store, resume=True
        ).run([job, job])
        assert summary.failed == 0
        assert summary.resumed == 1
        assert len(store) == 2

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="resume"):
            BatchRunner(workers=1, resume=True)


class TestStoreTruncation:
    def _store_with_records(self, tmp_path, n=3):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store.extend([{"job_id": f"j{i}", "ok": True, "i": i}
                      for i in range(n)])
        return store

    def test_truncated_tail_skipped_with_warning(self, tmp_path):
        store = self._store_with_records(tmp_path)
        raw = store.path.read_bytes()
        store.path.write_bytes(raw[:-10])  # tear the last record
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            records = store.load()
        assert [r["i"] for r in records] == [0, 1]
        assert store.truncated_tail is not None

    def test_append_after_tear_starts_a_clean_line(self, tmp_path):
        store = self._store_with_records(tmp_path)
        raw = store.path.read_bytes()
        store.path.write_bytes(raw[:-10])
        store.append({"job_id": "j9", "ok": True, "i": 9})
        # the torn fragment is now an interior undecodable line; the
        # new record must be whole, not glued to the fragment
        with pytest.warns(RuntimeWarning, match="undecodable line"):
            records = store.load()
        assert [r["i"] for r in records] == [0, 1, 9]
        lines = store.path.read_text().splitlines()
        json.loads(lines[-1])  # the appended record parses alone

    def test_interior_garbage_skipped(self, tmp_path):
        store = self._store_with_records(tmp_path, n=2)
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write("%% not json %%\n")
        store.append({"job_id": "j9", "ok": True, "i": 9})
        with pytest.warns(RuntimeWarning, match="undecodable line"):
            records = store.load()
        assert [r["i"] for r in records] == [0, 1, 9]
        assert store.truncated_tail is None

    def test_clean_file_loads_silently(self, tmp_path):
        store = self._store_with_records(tmp_path)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            records = store.load()
        assert len(records) == 3
        assert store.truncated_tail is None


class TestStatsReliability:
    def test_aggregate_reports_retries_resume_and_fallbacks(self):
        from repro.obs import aggregate_records, format_record_stats

        records = [
            {"ok": True, "attempts": 3,
             "retry_reasons": ["TimeoutError", "FaultInjected"]},
            {"ok": True, "attempts": 1, "resumed": True},
            {"ok": True, "attempts": 1,
             "transport_fallback": "ShmAttachError: gone"},
        ]
        stats = aggregate_records(records)
        rel = stats["reliability"]
        assert rel["retried_jobs"] == 1
        assert rel["extra_attempts"] == 2
        assert rel["retry_reasons"] == {
            "FaultInjected": 1, "TimeoutError": 1,
        }
        assert rel["resumed"] == 1 and rel["fresh"] == 2
        assert rel["transport_fallbacks"] == 1
        text = format_record_stats(stats)
        assert "reliability:" in text
        assert "1 retried jobs" in text
        assert "1 resumed" in text

    def test_fault_free_records_render_no_reliability_line(self):
        from repro.obs import aggregate_records, format_record_stats

        stats = aggregate_records([{"ok": True, "attempts": 1}])
        assert "reliability" not in format_record_stats(stats)
