"""Concurrent-writer safety for the JSONL result store.

The store's appends take an exclusive ``flock`` for the duration of the
write.  The regression here is real: a record payload larger than the
stdio buffer flushes as several ``write(2)`` calls, and two unlocked
appenders running in separate *processes* can interleave those calls
into a torn line mid-file — corruption ``load()``'s torn-*tail*
tolerance cannot forgive.  These tests hammer one store from multiple
processes and require every line to come back intact.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import sys

import pytest

from repro.service.results import ResultStore

#: big enough that one record overflows the io buffer into multiple
#: write(2) calls — the interleaving window the lock must close
BLOB_BYTES = 256 * 1024


def _append_records(path: str, writer: int, count: int) -> None:
    store = ResultStore(path)
    for i in range(count):
        store.append({
            "job_id": f"w{writer}-r{i}",
            "ok": True,
            "writer": writer,
            "blob": "x" * BLOB_BYTES,
        })


@pytest.mark.skipif(sys.platform == "win32", reason="flock is POSIX-only")
class TestConcurrentAppenders:
    def test_interleaved_processes_never_tear_a_line(self, tmp_path):
        path = str(tmp_path / "shared.jsonl")
        writers, per_writer = 4, 12
        procs = [
            mp.Process(target=_append_records, args=(path, w, per_writer))
            for w in range(writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0

        # every raw line must be complete, parseable JSON — no torn
        # lines, no interleaved fragments, nothing silently skipped
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == writers * per_writer
        seen = set()
        for line in lines:
            record = json.loads(line)  # raises on any torn line
            assert len(record["blob"]) == BLOB_BYTES
            seen.add(record["job_id"])
        assert seen == {f"w{w}-r{i}"
                        for w in range(writers) for i in range(per_writer)}

        # and the store-level view agrees, with no truncated tail
        store = ResultStore(path)
        assert len(store.load()) == writers * per_writer
        assert store.truncated_tail is None

    def test_concurrent_extend_batches_stay_contiguous(self, tmp_path):
        """extend() is one locked write: a batch's records may never be
        split by another writer's records."""
        path = str(tmp_path / "batched.jsonl")
        writers, batches, batch_size = 3, 6, 4
        procs = [mp.Process(target=_extend_batches,
                            args=(path, w, batches, batch_size))
                 for w in range(writers)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0

        records = ResultStore(path).load()
        assert len(records) == writers * batches * batch_size
        # batches are contiguous runs: scanning linearly, a (writer,
        # batch) group's records always appear back to back
        position = 0
        while position < len(records):
            head = records[position]
            group = records[position:position + batch_size]
            assert [(r["writer"], r["batch"]) for r in group] == (
                [(head["writer"], head["batch"])] * batch_size)
            position += batch_size


def _extend_batches(path: str, writer: int, batches: int,
                    batch_size: int) -> None:
    store = ResultStore(path)
    for b in range(batches):
        store.extend([
            {"job_id": f"w{writer}-b{b}-{i}", "writer": writer,
             "batch": b, "blob": "y" * BLOB_BYTES}
            for i in range(batch_size)
        ])
