"""run_checker="static": analyzer-earned trust marks and digest parity."""

import json

import pytest

import repro.analysis
from repro.analysis import AnalysisVerdict, Finding
from repro.checker.checker import Checker
from repro.service.cache import ProgramCache
from repro.service.jobs import SimJob
from repro.service.results import ResultStore
from repro.service.runner import BatchRunner, execute_job
from repro.service.sweep import SweepSpec

FAST = dict(eps=1e-3, max_sweeps=500)


@pytest.fixture
def check_calls(monkeypatch):
    """Count (and still perform) every Checker.check_program call."""
    calls = []
    real = Checker.check_program

    def counting(self, program):
        calls.append(program.name)
        return real(self, program)

    monkeypatch.setattr(Checker, "check_program", counting)
    return calls


def _static_job(**overrides):
    spec = dict(method="jacobi", shape=(5, 5, 5),
                run_checker="static", **FAST)
    spec.update(overrides)
    return SimJob(**spec)


class TestStaticTrust:
    def test_cold_compile_trusts_the_analyzer(self, check_calls):
        cache = ProgramCache()
        job = _static_job()
        record = execute_job(job.to_dict(), cache=cache)
        assert record["ok"]
        assert record["checker"] == "static"
        assert check_calls == []  # dynamic checker never executed
        assert cache.stats.static_clean == 1
        key = job.cache_key()
        # the verdict rides next to the trust mark, queryable later
        payload = cache.static_verdict(key)
        assert payload is not None and payload["ok"] is True
        assert cache.verified_fingerprint(key) == \
            record["program_fingerprint"]

    def test_warm_trust_mark_skips_reanalysis(self, check_calls):
        cache = ProgramCache()
        job = _static_job()
        execute_job(job.to_dict(), cache=cache)
        cache.clear()  # forget the program, keep the trust mark
        second = execute_job(job.to_dict(), cache=cache)
        assert second["checker"] == "skipped"
        assert check_calls == []
        assert cache.stats.static_clean == 1  # not re-earned

    def test_verdict_persists_to_disk(self, tmp_path, check_calls):
        d = str(tmp_path / "cache")
        cache = ProgramCache(d)
        job = _static_job()
        execute_job(job.to_dict(), cache=cache)
        key = job.cache_key()
        path = tmp_path / "cache" / "analysis" / f"{key}.json"
        assert path.exists()
        on_disk = json.loads(path.read_text())
        assert on_disk["ok"] is True
        # a fresh cache over the same directory can answer without
        # recompiling or re-analyzing anything
        fresh = ProgramCache(d)
        assert fresh.static_verdict(key)["ok"] is True

    def test_error_verdict_falls_back_to_dynamic_checker(
        self, check_calls, monkeypatch
    ):
        bad = AnalysisVerdict(
            program="p", fingerprint="f" * 64,
            findings=(Finding(rule="uninit-read", severity="error",
                              site="mem[0]", issue="pipeline 0",
                              message="synthetic"),),
        )
        monkeypatch.setattr(repro.analysis, "analyze_program",
                            lambda program: bad)
        cache = ProgramCache()
        job = _static_job()
        record = execute_job(job.to_dict(), cache=cache)
        assert record["ok"]
        assert record["checker"] == "ran"  # demoted to a checked compile
        assert len(check_calls) == 1
        assert cache.stats.static_clean == 0
        # the damning verdict is still recorded for post-mortems
        assert cache.static_verdict(job.cache_key())["ok"] is False

    def test_static_and_always_records_are_digest_identical(self, tmp_path):
        # the acceptance bar: trusting the analyzer must not change a
        # single canonical byte of the batch output
        spec = SweepSpec(grids=(5, 6), methods=("jacobi", "rb-gs"), **FAST)
        digests = []
        for mode in ("always", "static"):
            store = ResultStore(str(tmp_path / f"{mode}.jsonl"))
            runner = BatchRunner(workers=1, store=store, run_checker=mode)
            records, summary = runner.run(spec.expand())
            assert summary.failed == 0
            digests.append(store.digest())
        assert digests[0] == digests[1]
