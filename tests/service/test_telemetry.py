"""Tier-selection telemetry and the per-record observability stamps.

The record schema contract: every batch/sweep record carries ``timings``
(one entry per :data:`repro.obs.tracer.STAGES`, zeros when a stage did
not run) and ``tier`` (which execution tier actually ran).  The counter
contract: the sequencer and the multi-node steppers record the selected
tier — and, for a ``FusionUnsupported`` decline, the fallback tier *and
the reason* — into the active tracer.
"""

import numpy as np
import pytest

from repro.obs import tracer as obs
from repro.obs.tracer import STAGES, Tracer
from repro.service.cache import ProgramCache
from repro.service.jobs import SimJob
from repro.service.runner import BatchRunner, execute_job
from repro.sim import progplan
from repro.sim.machine import NSCMachine
from repro.sim.multinode import MultiNodeStencil


FAST = dict(eps=1e-3, max_sweeps=300)


@pytest.fixture(autouse=True)
def _no_leaked_active_tracer():
    yield
    assert obs.current() is None


def _single(backend, **kw):
    return SimJob(method="jacobi", shape=(5, 5, 5), backend=backend,
                  **FAST, **kw)


def _multi(backend):
    return SimJob(method="jacobi", shape=(4, 4, 8), hypercube_dim=2,
                  backend=backend, **FAST)


class TestRecordTierStamp:
    def test_fast_single_node_stamps_fused(self):
        record = execute_job(_single("fast").to_dict(), cache=ProgramCache())
        assert record["ok"]
        assert record["tier"] == "fused"

    def test_reference_single_node_stamps_reference(self):
        record = execute_job(_single("reference").to_dict(),
                             cache=ProgramCache())
        assert record["ok"]
        assert record["tier"] == "reference"

    def test_fast_falls_back_to_per_issue_when_fusion_declines(
        self, monkeypatch
    ):
        monkeypatch.setattr(progplan, "try_run_fused",
                            lambda *a, **kw: None)
        record = execute_job(_single("fast").to_dict(), cache=ProgramCache())
        assert record["ok"]
        assert record["tier"] == "per_issue"

    def test_multinode_tiers(self):
        fast = execute_job(_multi("fast").to_dict(), cache=ProgramCache())
        ref = execute_job(_multi("reference").to_dict(),
                          cache=ProgramCache())
        assert fast["ok"] and ref["ok"]
        assert fast["tier"] == "fused"
        assert ref["tier"] == "reference"

    def test_multinode_decline_stamps_per_issue_and_reason(
        self, monkeypatch
    ):
        def decline(stencil):
            raise progplan.FusionUnsupported("declined for the test")

        monkeypatch.setattr(progplan, "fused_stepper", decline)
        record = execute_job(_multi("fast").to_dict(), cache=ProgramCache())
        assert record["ok"]
        assert record["tier"] == "per_issue"
        assert record["fallback_reason"] == "declined for the test"


class TestTierCounters:
    def _machine(self, backend):
        from repro.codegen.generator import MicrocodeGenerator
        from repro.compose.jacobi import (
            build_jacobi_program,
            load_jacobi_inputs,
        )
        from repro.arch.node import NodeConfig

        node = NodeConfig()
        setup = build_jacobi_program(node, (6, 6, 6), eps=1e-4,
                                     max_iterations=15)
        program = MicrocodeGenerator(node).generate(setup.program)
        rng = np.random.default_rng(7)
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, rng.random((6, 6, 6)),
                           rng.standard_normal((6, 6, 6)))
        return machine

    def test_fused_run_counts_tier_fused(self):
        tracer = Tracer()
        machine = self._machine("fast")
        with obs.use(tracer):
            machine.run()
        assert tracer.counters["tier.fused"] == 1
        assert "tier.per_issue" not in tracer.counters
        assert tracer.annotations["tier"] == "fused"

    def test_reference_run_counts_tier_reference(self):
        tracer = Tracer()
        machine = self._machine("reference")
        with obs.use(tracer):
            machine.run()
        assert tracer.counters["tier.reference"] == 1
        assert tracer.annotations["tier"] == "reference"

    def test_unfused_fast_run_counts_tier_per_issue(self):
        tracer = Tracer()
        machine = self._machine("fast")
        with obs.use(tracer):
            machine.run(fuse=False)
        assert tracer.counters["tier.per_issue"] == 1
        assert tracer.annotations["tier"] == "per_issue"

    def test_mid_run_rejection_records_fallback_tier_and_reason(
        self, monkeypatch
    ):
        # PR 5's injection hook: the compiler accepts the program, then
        # a FusionUnsupported surfaces mid-execution — the run must land
        # on the per-issue tier with the decline's reason on record
        calls = {"n": 0}
        real_issue = progplan.BoundImage.issue_compute

        def flaky_issue(self):
            calls["n"] += 1
            if calls["n"] == 4:
                raise progplan.FusionUnsupported("injected mid-run")
            return real_issue(self)

        monkeypatch.setattr(progplan.BoundImage, "issue_compute",
                            flaky_issue)
        tracer = Tracer(keep_events=True)
        machine = self._machine("fast")
        with obs.use(tracer):
            result = machine.run()
        assert calls["n"] >= 4  # the rejection really fired mid-run
        assert result.converged is not None
        assert tracer.counters["fusion.fallback"] == 1
        assert tracer.counters["tier.per_issue"] == 1
        assert "tier.fused" not in tracer.counters
        assert tracer.annotations["tier"] == "per_issue"
        assert tracer.annotations["fallback_reason"] == "injected mid-run"
        [event] = [e for e in tracer.events
                   if e["type"] == "fusion_fallback"]
        assert event["reason"] == "injected mid-run"


class TestRecordSchema:
    def test_every_record_carries_full_timings_and_tier(self):
        runner = BatchRunner(workers=1)
        records, _ = runner.run([_single("fast"), _single("reference")])
        for record in records:
            assert tuple(record["timings"]) == STAGES
            assert record["tier"] in ("fused", "reference")
            assert record["duration_s"] > 0.0
        fast, ref = records
        assert fast["timings"]["compile"] > 0.0  # first compile is real
        assert fast["timings"]["execute"] > 0.0

    def test_failed_job_still_carries_schema(self):
        # nz=7 does not divide across 4 nodes: the job fails in-process
        bad = SimJob(method="jacobi", shape=(5, 5, 7), hypercube_dim=2,
                     **FAST)
        records, summary = BatchRunner(workers=1).run([bad])
        assert summary.failed == 1
        [record] = records
        assert tuple(record["timings"]) == STAGES
        assert record["tier"] is None

    def test_cache_and_plan_counters_flow_to_tracer(self):
        cache = ProgramCache()
        spec = _single("fast").to_dict()
        outer = Tracer()
        # execute_job activates its own per-job tracer, so drive the
        # cache directly for counter assertions
        execute_job(spec, cache=cache)
        with obs.use(outer):
            execute_job(spec, cache=cache)
            value = cache.get_or_compile(
                SimJob.from_dict(spec).cache_key(), lambda: None
            )
        assert value is not None
        assert outer.counters["cache.hit"] == 1
        assert outer.span_counts["compile"] == 1

    def test_checker_skip_counter(self, tmp_path):
        cache = ProgramCache(str(tmp_path / "cache"))
        spec = _single("fast", run_checker="auto").to_dict()
        execute_job(spec, cache=cache)  # compiles, checks, marks verified
        # force a recompile that rides the registry: drop the compiled
        # layers (memory and disk) but keep the verified fingerprints
        cache.clear()
        for entry in (tmp_path / "cache").glob("*.pkl"):
            entry.unlink()
        tracer = Tracer()
        with obs.use(tracer):
            record = execute_job(spec, cache=cache, tracer=tracer)
        assert record["checker"] == "skipped"
        assert tracer.counters["cache.check_skipped"] == 1

    def test_shm_transport_records_keep_schema(self):
        jobs = [SimJob(method="jacobi", shape=(5, 5, 5), backend="fast",
                       keep_fields=True, label=f"shm#{i}", **FAST)
                for i in range(2)]
        runner = BatchRunner(workers=2, transport="shm")
        records, summary = runner.run(jobs)
        assert summary.failed == 0
        for record in records:
            assert tuple(record["timings"]) == STAGES
            assert record["tier"] == "fused"
            # the worker-side segment attach rides the transport stage
            assert record["timings"]["transport"] >= 0.0
            assert record["duration_s"] > 0.0
        # parent-side arena setup landed in the batch telemetry
        assert runner.last_telemetry is not None
        assert runner.last_telemetry.span_counts["arena_setup"] == 1
