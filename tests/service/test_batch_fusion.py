"""Batch fusion through the service: slabs, fallbacks, stamps, CLI.

``batch_fusion="auto"`` must be invisible in everything a job computes —
records identical to the ``"off"`` path modulo the execution-tier stamps
and wall-clock — while being fully visible in the telemetry: slab jobs
carry ``tier="batch_fused"`` + ``slab_size``, declined slabs fall back
per job with the reason recorded, and the stats aggregator reports the
slab mix.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.obs.stats import aggregate_records, format_record_stats
from repro.service.jobs import SimJob
from repro.service.runner import BatchRunner
from repro.service.sweep import SweepSpec
from repro.sim import batchplan
from repro.sim.progplan import FusionUnsupported

#: keys that legitimately differ between the off and auto paths: wall
#: clock, and the tier stamps naming which engine ran
_TIER_KEYS = ("duration_s", "timings", "tier", "slab_size",
              "fallback_reason")


def _comparable(record):
    return {k: v for k, v in record.items() if k not in _TIER_KEYS}


def _mixed_jobs():
    fast = dict(eps=1e-3, max_sweeps=500, backend="fast")
    return (
        [SimJob(method="jacobi", shape=(5, 5, 5), u0_seed=s, **fast)
         for s in range(3)]
        + [SimJob(method="rb-gs", shape=(5, 5, 5), **fast)]
        + [SimJob(method="jacobi", shape=(5, 5, 5), eps=1e-3,
                  max_sweeps=500, backend="reference")]
    )


def _run(jobs, mode, **kwargs):
    runner = BatchRunner(workers=1, batch_fusion=mode, **kwargs)
    return runner.run(jobs)


class TestAutoMatchesOff:
    def test_mixed_batch_records_identical(self):
        jobs = _mixed_jobs()
        off_records, off_summary = _run(jobs, "off")
        auto_records, auto_summary = _run(jobs, "auto")
        assert [_comparable(r) for r in off_records] \
            == [_comparable(r) for r in auto_records]
        assert off_summary.total_cycles == auto_summary.total_cycles
        assert off_summary.succeeded == auto_summary.succeeded == len(jobs)

    def test_tier_stamps_name_the_engines(self):
        records, _ = _run(_mixed_jobs(), "auto")
        tiers = [r["tier"] for r in records]
        # three seeded same-program jacobi jobs slab; the rb-gs job is a
        # singleton (per-job fused); the reference job never fuses
        assert tiers == ["batch_fused"] * 3 + ["fused", "reference"]
        assert [r.get("slab_size") for r in records[:3]] == [3, 3, 3]
        assert all("slab_size" not in r for r in records[3:])

    def test_cache_hits_match_off_path(self):
        jobs = _mixed_jobs()
        off_records, _ = _run(jobs, "off")
        auto_records, _ = _run(jobs, "auto")
        assert [r.get("cache_hit") for r in off_records] \
            == [r.get("cache_hit") for r in auto_records]

    def test_keep_fields_rides_the_slab(self):
        fast = dict(eps=1e-3, max_sweeps=500, backend="fast",
                    keep_fields=True)
        jobs = [SimJob(method="jacobi", shape=(5, 5, 6), u0_seed=s, **fast)
                for s in range(2)]
        off_records, _ = _run(jobs, "off")
        auto_records, _ = _run(jobs, "auto")
        assert all(r["tier"] == "batch_fused" for r in auto_records)
        for off, auto in zip(off_records, auto_records):
            np.testing.assert_array_equal(
                off["fields"]["u"], auto["fields"]["u"]
            )
            assert auto["fields"]["u"].shape == (6, 5, 5)

    def test_slab_mix_in_stats(self):
        records, _ = _run(_mixed_jobs(), "auto")
        stats = aggregate_records(records)
        assert stats["tiers"]["batch_fused"] == 3
        assert stats["slabs"] == {
            "jobs": 3, "slabs": 1, "sizes": {"3": 3},
        }
        assert "3 batch-fused jobs across 1 slabs" \
            in format_record_stats(stats)


class TestDeclinedSlabFallback:
    def test_mid_slab_decline_falls_back_per_job(self, monkeypatch):
        """A slab that declines mid-run must yield records identical to
        the off path, plus the recorded decline reason."""
        real_run = batchplan.BatchProgramRun.run

        def failing_run(self):
            raise FusionUnsupported("injected mid-slab")

        jobs = _mixed_jobs()
        off_records, _ = _run(jobs, "off")
        monkeypatch.setattr(batchplan.BatchProgramRun, "run", failing_run)
        auto_records, auto_summary = _run(jobs, "auto")
        monkeypatch.setattr(batchplan.BatchProgramRun, "run", real_run)
        assert auto_summary.succeeded == len(jobs)

        # the slab's compile stage warms the shared program cache before
        # the decline, so the fallback's compile-history keys (cache_hit,
        # checker) legitimately differ from a cold off run — the same
        # reason the bench treats them as backend-dependent.  Everything
        # the jobs computed must still be identical.
        def computed(record):
            return {k: v for k, v in _comparable(record).items()
                    if k not in ("cache_hit", "checker")}

        assert [computed(r) for r in off_records] \
            == [computed(r) for r in auto_records]
        # the fallback ran the real fused tier and said why
        assert [r["tier"] for r in auto_records[:3]] == ["fused"] * 3
        for record in auto_records[:3]:
            assert record["fallback_reason"] \
                == "batch_fusion: injected mid-slab"
        # non-slab jobs never gain a decline stamp
        assert all("fallback_reason" not in r for r in auto_records[3:])

    def test_unexpected_exception_also_falls_back(self, monkeypatch):
        def exploding_run(self):
            raise RuntimeError("boom")

        monkeypatch.setattr(batchplan.BatchProgramRun, "run",
                            exploding_run)
        records, summary = _run(_mixed_jobs(), "auto")
        assert summary.succeeded == len(records)
        assert records[0]["fallback_reason"] \
            == "batch_fusion: RuntimeError: boom"


class TestSweepSeedAxis:
    def test_seeds_expand_innermost(self):
        spec = SweepSpec(grids=(5,), methods=("jacobi",), seeds=(0, 1, 2),
                         backend="fast")
        jobs = spec.expand()
        assert [j.u0_seed for j in jobs] == [0, 1, 2]
        assert [j.label for j in jobs] == [
            "jacobi-n5-d0-fast-s0",
            "jacobi-n5-d0-fast-s1",
            "jacobi-n5-d0-fast-s2",
        ]
        assert spec.axis_product == 3
        assert "3 seeds" in spec.describe()

    def test_seeds_skip_multinode_combinations(self):
        spec = SweepSpec(grids=(6,), methods=("jacobi",), dims=(0, 1),
                         seeds=(0, 1))
        assert spec.skipped() == {"seeds-apply-to-single-node-only": 2}
        assert all(j.hypercube_dim == 0 for j in spec.expand())

    def test_negative_seed_rejected(self):
        from repro.service.jobs import JobSpecError

        with pytest.raises(JobSpecError, match="seed -1"):
            SweepSpec(seeds=(-1,))

    def test_bad_batch_fusion_rejected(self):
        from repro.service.jobs import JobSpecError

        with pytest.raises(JobSpecError, match="batch_fusion"):
            SweepSpec(batch_fusion="always")


class TestCli:
    def test_sweep_batch_fusion_auto(self, capsys):
        assert main([
            "sweep", "--grids", "5", "--methods", "jacobi",
            "--seeds", "0,1", "--repeats", "1", "--eps", "1e-3",
            "--backend", "fast", "--batch-fusion", "auto",
        ]) == 0
        out = capsys.readouterr().out
        assert "tier=batch_fused" in out

    def test_sweep_negative_seed_exits_2(self, capsys):
        assert main([
            "sweep", "--grids", "5", "--methods", "jacobi",
            "--seeds", "-4", "--repeats", "1",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_fusion_flag_rides_batch_command(self, tmp_path):
        import json

        specs = [
            SimJob(method="jacobi", shape=(5, 5, 5), eps=1e-3,
                   max_sweeps=500, backend="fast", u0_seed=s).to_dict()
            for s in range(2)
        ]
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(specs))
        results = tmp_path / "out.jsonl"
        assert main([
            "batch", str(path), "--batch-fusion", "auto",
            "--results", str(results),
        ]) == 0
        records = [json.loads(line)
                   for line in results.read_text().splitlines()]
        assert [r["tier"] for r in records] == ["batch_fused"] * 2
