"""BatchRunner end to end: caching, failure isolation, reproducibility."""

import json


from repro.codegen.generator import MicrocodeGenerator
from repro.service.cache import ProgramCache
from repro.service.jobs import SimJob
from repro.service.results import ResultStore, VOLATILE_KEYS
from repro.service.runner import BatchRunner, execute_job
from repro.service.sweep import SweepSpec


FAST = dict(eps=1e-3, max_sweeps=500)


class TestExecuteJob:
    def test_single_node_jacobi(self):
        record = execute_job(
            SimJob(method="jacobi", shape=(5, 5, 5), **FAST).to_dict(),
            cache=ProgramCache(),
        )
        assert record["ok"]
        assert record["converged"]
        assert record["sweeps"] > 0
        assert record["cycles"] > 0
        assert record["metrics"]["flops"] > 0
        assert record["error_vs_analytic"] < 1.0

    def test_non_cubic_single_node(self):
        # u is compared against (and returned in) grid layout (nz,ny,nx);
        # a non-cubic shape catches any (nx,ny,nz) reshape confusion
        record = execute_job(
            SimJob(method="jacobi", shape=(5, 5, 8), keep_fields=True,
                   **FAST).to_dict(),
            cache=ProgramCache(),
        )
        assert record["ok"], record.get("error")
        assert record["fields"]["u"].shape == (8, 5, 5)
        # discretization-level error: the analytic solution vanishes on
        # every face even off the cube (per-axis manufactured modes)
        assert record["error_vs_analytic"] < 0.2

    def test_multinode_jacobi(self):
        record = execute_job(
            SimJob(method="jacobi", shape=(5, 5, 6),
                   hypercube_dim=1, **FAST).to_dict(),
            cache=ProgramCache(),
        )
        assert record["ok"]
        assert record["metrics"]["n_nodes"] == 2
        assert record["metrics"]["comm_cycles"] > 0

    def test_saved_program_job(self, tmp_path):
        from repro.arch.node import NodeConfig
        from repro.compose.kernels import build_saxpy_program
        from repro.diagram import serialize

        path = tmp_path / "saxpy.json"
        serialize.save(build_saxpy_program(NodeConfig(), 32).program,
                       str(path))
        record = execute_job(
            SimJob(method="program", program_path=str(path)).to_dict(),
            cache=ProgramCache(),
        )
        assert record["ok"], record.get("error")
        assert record["cycles"] > 0

    def test_failure_is_captured(self):
        record = execute_job(
            # nz=5 cannot split across 2 nodes
            SimJob(method="jacobi", shape=(5, 5, 5),
                   hypercube_dim=1, **FAST).to_dict(),
            cache=ProgramCache(),
        )
        assert not record["ok"]
        assert "DecompositionError" in record["error"]


class TestCaching:
    def test_repeated_jobs_skip_recompilation(self, monkeypatch):
        jobs = SweepSpec(grids=(5,), methods=("jacobi", "rb-gs"),
                         repeats=2, **FAST).expand()
        compiles = []
        real_generate = MicrocodeGenerator.generate
        monkeypatch.setattr(
            MicrocodeGenerator, "generate",
            lambda self, prog: compiles.append(prog.name)
            or real_generate(self, prog),
        )
        records, summary = BatchRunner(workers=1).run(jobs)
        assert summary.cache_hits == 2
        assert summary.cache_misses == 2
        assert len(compiles) == 2  # the proof: repeats never hit codegen
        assert [r["cache_hit"] for r in records] == [
            False, False, True, True]
        # cached repeats replay bit-identical microcode
        assert records[0]["program_fingerprint"] == \
            records[2]["program_fingerprint"]

    def test_cached_run_reproduces_metrics(self):
        job = SimJob(method="rb-sor", shape=(5, 5, 5), **FAST)
        cache = ProgramCache()
        first = execute_job(job.to_dict(), cache=cache)
        second = execute_job(job.to_dict(), cache=cache)
        assert not first["cache_hit"] and second["cache_hit"]
        for key in ("converged", "sweeps", "cycles", "metrics"):
            assert first[key] == second[key]

    def test_disk_cache_shared_across_runners(self, tmp_path):
        d = str(tmp_path / "cache")
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        r1, s1 = BatchRunner(workers=1, cache_dir=d).run([job])
        r2, s2 = BatchRunner(workers=1, cache_dir=d).run([job])
        assert s1.cache_misses == 1 and s1.cache_hits == 0
        assert s2.cache_hits == 1 and s2.cache_misses == 0
        assert r1[0]["cycles"] == r2[0]["cycles"]


class TestBatchRunner:
    def test_failure_isolation_in_batch(self):
        jobs = [
            SimJob(method="jacobi", shape=(5, 5, 5), label="good", **FAST),
            SimJob(method="jacobi", shape=(5, 5, 5), hypercube_dim=1,
                   label="bad", **FAST),
            SimJob(method="rb-gs", shape=(5, 5, 5), label="also-good",
                   **FAST),
        ]
        records, summary = BatchRunner(workers=1).run(jobs)
        assert summary.failed == 1
        assert summary.succeeded == 2
        assert [r["ok"] for r in records] == [True, False, True]

    def test_parallel_matches_serial(self):
        jobs = SweepSpec(grids=(5, 6), methods=("jacobi",), **FAST).expand()
        serial, _ = BatchRunner(workers=1).run(jobs)
        parallel, _ = BatchRunner(workers=2).run(jobs)
        for s, p in zip(serial, parallel):
            assert s["label"] == p["label"]
            assert s["cycles"] == p["cycles"]
            assert s["sweeps"] == p["sweeps"]

    def test_store_is_reproducible(self, tmp_path):
        # byte-reproducible modulo the volatile keys (wall-clock timings
        # legitimately differ): the canonical projection must match
        # line for line, and the digest is that same claim in one hash
        jobs = SweepSpec(grids=(5,), methods=("jacobi", "rb-gs"),
                         repeats=2, **FAST).expand()
        store_a = ResultStore(str(tmp_path / "a.jsonl"))
        store_b = ResultStore(str(tmp_path / "b.jsonl"))
        BatchRunner(workers=1, store=store_a).run(jobs)
        BatchRunner(workers=1, store=store_b).run(jobs)
        assert store_a.canonical_lines() == store_b.canonical_lines()
        assert store_a.digest() == store_b.digest()
        assert len(store_a) == 4

    def test_volatile_keys_are_the_only_difference(self, tmp_path):
        # the volatile-key set is exact: raw lines differ only because
        # of timings/duration_s, and every stored record carries them
        # (the reliability keys are conditional — absent on a clean
        # fault-free run — hence pop with a default)
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        store = ResultStore(str(tmp_path / "r.jsonl"))
        BatchRunner(workers=1, store=store).run([job])
        BatchRunner(workers=1, store=store).run([job])
        first, second = store.load()
        assert first != second  # wall-clock did differ...
        for key in VOLATILE_KEYS:
            first.pop(key, None), second.pop(key, None)
        assert first == second  # ...and nothing else did

    def test_store_queries(self, tmp_path):
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        store = ResultStore(str(tmp_path / "r.jsonl"))
        BatchRunner(workers=1, store=store).run([job, job])
        assert len(store.records_for(job.job_id)) == 2
        latest = store.latest_by_job()
        assert set(latest) == {job.job_id}
        assert latest[job.job_id]["cache_hit"] is True

    def test_records_are_json_serializable(self):
        records, _ = BatchRunner(workers=1).run(
            [SimJob(method="jacobi", shape=(5, 5, 5), **FAST)]
        )
        json.dumps(records)  # must not raise


class TestScenarioCustomers:
    def test_poisson_jobs_run_through_service(self):
        from repro.apps.poisson3d import poisson_jobs

        jobs = poisson_jobs(n=5, eps=1e-3, max_sweeps=500)
        assert [j.method for j in jobs] == ["jacobi", "rb-gs", "rb-sor"]
        records, summary = BatchRunner(workers=1).run(jobs)
        assert summary.failed == 0
        # the convergence race: SOR beats GS beats Jacobi
        sweeps = {r["method"]: r["sweeps"] for r in records}
        assert sweeps["rb-sor"] < sweeps["rb-gs"] < sweeps["jacobi"]
