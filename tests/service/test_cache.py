"""ProgramCache: hit/miss accounting and the on-disk layer."""

import pickle

from repro.service.cache import ProgramCache


class TestMemoryLayer:
    def test_miss_then_hit(self):
        cache = ProgramCache()
        calls = []
        value1 = cache.get_or_compile("k", lambda: calls.append(1) or "V")
        value2 = cache.get_or_compile("k", lambda: calls.append(2) or "W")
        assert value1 == value2 == "V"
        assert calls == [1]  # second lookup never compiled
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2

    def test_distinct_keys_compile_separately(self):
        cache = ProgramCache()
        assert cache.get_or_compile("a", lambda: 1) == 1
        assert cache.get_or_compile("b", lambda: 2) == 2
        assert cache.stats.misses == 2
        assert len(cache) == 2
        assert "a" in cache and "c" not in cache

    def test_clear_drops_memory(self):
        cache = ProgramCache()
        cache.get_or_compile("k", lambda: "V")
        cache.clear()
        cache.get_or_compile("k", lambda: "V2")
        assert cache.stats.misses == 2


class TestDiskLayer:
    def test_fresh_cache_hits_from_disk(self, tmp_path):
        d = str(tmp_path / "cache")
        first = ProgramCache(d)
        first.get_or_compile("k", lambda: {"compiled": True})
        second = ProgramCache(d)
        value = second.get_or_compile(
            "k", lambda: (_ for _ in ()).throw(AssertionError("recompiled"))
        )
        assert value == {"compiled": True}
        assert second.stats.hits == 1
        assert second.stats.disk_hits == 1

    def test_corrupt_entry_recompiles(self, tmp_path):
        d = tmp_path / "cache"
        cache = ProgramCache(str(d))
        (d / "k.pkl").write_bytes(b"not a pickle")
        assert cache.get_or_compile("k", lambda: "fresh") == "fresh"
        assert cache.stats.misses == 1
        # and the bad entry was overwritten with a good one
        with open(d / "k.pkl", "rb") as fh:
            assert pickle.load(fh) == "fresh"

    def test_stats_format_mentions_disk(self, tmp_path):
        cache = ProgramCache(str(tmp_path / "c"))
        cache.get_or_compile("k", lambda: 1)
        text = cache.stats.format()
        assert "1 misses" in text
