"""Backend selection plumbed through SimJob, the runner, sweeps, and CLI."""

import json

import pytest

from repro.apps.poisson3d import poisson_jobs
from repro.cli import main
from repro.service.jobs import JobSpecError, SimJob
from repro.service.runner import BatchRunner, execute_job, reset_process_cache
from repro.service.sweep import SweepSpec

#: record keys that legitimately differ between backend runs ("checker"
#: depends on compile history, like "cache_hit": a cache hit skips the
#: compile entirely and reports neither; "timings"/"duration_s" are
#: wall-clock; "tier" and "fallback_reason" name the execution tier,
#: which is exactly what a backend selects)
VOLATILE = ("job_id", "label", "backend", "cache_hit", "checker",
            "timings", "duration_s", "tier", "fallback_reason")


def _comparable(record):
    return {k: v for k, v in record.items() if k not in VOLATILE}


class TestSimJobBackend:
    def test_default_is_reference(self):
        assert SimJob().backend == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(JobSpecError, match="unknown backend"):
            SimJob(backend="warp")

    def test_roundtrip_through_dict(self):
        job = SimJob(method="jacobi", shape=(5, 5, 5), backend="fast")
        assert job.to_dict()["backend"] == "fast"
        clone = SimJob.from_dict(job.to_dict())
        assert clone == job

    def test_backend_changes_job_id_not_cache_key(self):
        ref = SimJob(shape=(5, 5, 5))
        fast = SimJob(shape=(5, 5, 5), backend="fast")
        assert ref.cache_key() == fast.cache_key()  # one compiled program
        assert ref.job_id != fast.job_id

    def test_describe_tags_fast_jobs(self):
        assert SimJob(shape=(5, 5, 5), backend="fast").describe().endswith(
            "-fast"
        )
        assert "fast" not in SimJob(shape=(5, 5, 5)).describe()


class TestExecuteJobBackend:
    def setup_method(self):
        reset_process_cache()

    def test_single_node_records_agree(self):
        base = dict(method="jacobi", shape=(5, 5, 5), eps=1e-3,
                    max_sweeps=500)
        ref = execute_job(dict(base, backend="reference"))
        fast = execute_job(dict(base, backend="fast"))
        assert ref["ok"] and fast["ok"]
        assert ref["backend"] == "reference"
        assert fast["backend"] == "fast"
        assert _comparable(ref) == _comparable(fast)

    def test_multinode_records_agree(self):
        base = dict(method="jacobi", shape=(4, 4, 8), eps=1e-3,
                    max_sweeps=300, hypercube_dim=2)
        ref = execute_job(dict(base, backend="reference"))
        fast = execute_job(dict(base, backend="fast"))
        assert ref["ok"] and fast["ok"]
        assert _comparable(ref) == _comparable(fast)

    def test_rbsor_runs_on_fast_backend(self):
        record = execute_job(dict(method="rb-sor", shape=(5, 5, 5),
                                  eps=1e-3, max_sweeps=500, backend="fast"))
        assert record["ok"]
        assert record["converged"]


class TestSweepBackend:
    def test_backend_applied_to_every_job(self):
        spec = SweepSpec(grids=(5,), methods=("jacobi", "rb-gs"),
                         backend="fast")
        jobs = spec.expand()
        assert jobs
        assert all(job.backend == "fast" for job in jobs)
        assert all(job.label.endswith("-fast") for job in jobs)

    def test_unknown_backend_rejected(self):
        with pytest.raises(JobSpecError, match="unknown backend"):
            SweepSpec(backend="warp")

    def test_poisson_jobs_carry_backend(self):
        jobs = poisson_jobs(n=5, methods=("jacobi",), backend="fast")
        assert jobs[0].backend == "fast"


class TestBatchRunnerBackend:
    def test_fast_batch_matches_reference_batch(self):
        results = {}
        for backend in ("reference", "fast"):
            jobs = poisson_jobs(n=5, methods=("jacobi", "rb-gs"), eps=1e-3,
                                max_sweeps=500, backend=backend)
            records, summary = BatchRunner(workers=1).run(jobs)
            assert summary.failed == 0
            results[backend] = records
        ref, fast = results["reference"], results["fast"]
        assert [_comparable(r) for r in ref] == [_comparable(r) for r in fast]


class TestCliBackend:
    def test_jacobi_fast(self, capsys):
        assert main(["jacobi", "-n", "5", "--eps", "1e-3",
                     "--backend", "fast"]) == 0
        assert "converged: True" in capsys.readouterr().out

    def test_solve_fast(self, capsys):
        assert main(["solve", "rb-gs", "-n", "5", "--eps", "1e-3",
                     "--backend", "fast"]) == 0
        assert "converged=True" in capsys.readouterr().out

    def test_sweep_fast_records(self, tmp_path, capsys):
        results = tmp_path / "records.jsonl"
        assert main(["sweep", "--grids", "5", "--methods", "jacobi",
                     "--eps", "1e-3", "--max-sweeps", "500",
                     "--repeats", "1", "--backend", "fast",
                     "--results", str(results)]) == 0
        record = json.loads(results.read_text().splitlines()[0])
        assert record["backend"] == "fast"
        assert record["ok"]

    def test_batch_backend_default_applies(self, tmp_path, capsys):
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(json.dumps([
            {"method": "jacobi", "n": 5, "eps": 1e-3, "max_sweeps": 500},
            {"method": "jacobi", "n": 5, "eps": 1e-3, "max_sweeps": 500,
             "backend": "reference"},
        ]))
        results = tmp_path / "records.jsonl"
        assert main(["batch", str(jobs_file), "--backend", "fast",
                     "--results", str(results)]) == 0
        records = [json.loads(line)
                   for line in results.read_text().splitlines()]
        # the CLI default fills unspecified jobs; explicit specs win
        assert records[0]["backend"] == "fast"
        assert records[1]["backend"] == "reference"

    def test_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["jacobi", "--backend", "warp"])


class TestCliBench:
    def test_bench_quick_single_scenario(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--scenarios", "jacobi_single",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "parity ok" in out
        assert "all backends agree" in out
        payload = json.loads(
            (tmp_path / "BENCH_jacobi_single.json").read_text()
        )
        assert payload["ok"] is True
        assert set(payload["backends"]) == {"reference", "fast"}

    def test_bench_unknown_scenario_exits_2(self, tmp_path, capsys):
        assert main(["bench", "--scenarios", "nope",
                     "--out", str(tmp_path)]) == 2
        assert "error: unknown scenario" in capsys.readouterr().err

    def test_bench_rejects_subset(self, tmp_path, capsys):
        """Scenarios are fixed full-machine workloads; --subset must not
        be silently ignored."""
        assert main(["bench", "--quick", "--subset",
                     "--out", str(tmp_path)]) == 2
        assert "--subset is not supported" in capsys.readouterr().err

    def test_bench_min_speedup_failure_path(self, tmp_path, capsys):
        # an absurd bar exercises the failure exit without flakiness
        assert main(["bench", "--quick", "--scenarios", "jacobi_single",
                     "--out", str(tmp_path),
                     "--min-speedup", "1000000"]) == 1
        assert "below required" in capsys.readouterr().err

    def test_bench_save_baseline_then_compare(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(["bench", "--quick", "--scenarios", "jacobi_single",
                     "--out", str(tmp_path / "out1"),
                     "--save-baseline", str(base)]) == 0
        payload = json.loads(base.read_text())
        assert "jacobi_single" in payload["scenarios"]
        # against its own baseline the run is within tolerance by a mile
        # unless timing is catastrophically unstable; use a zeroed floor
        payload["scenarios"]["jacobi_single"]["speedup"] = 0.001
        base.write_text(json.dumps(payload))
        assert main(["bench", "--quick", "--scenarios", "jacobi_single",
                     "--out", str(tmp_path / "out2"),
                     "--compare", str(base)]) == 0
        out = capsys.readouterr().out
        assert "baseline comparison" in out
        assert (tmp_path / "out2" / "BENCH_compare.json").exists()

    def test_bench_compare_detects_regression(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "tolerance": 0.2,
            "scenarios": {"jacobi_single": {"speedup": 1_000_000.0}},
        }))
        assert main(["bench", "--quick", "--scenarios", "jacobi_single",
                     "--out", str(tmp_path / "out"),
                     "--compare", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_compare_missing_baseline_exits_2(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--scenarios", "jacobi_single",
                     "--out", str(tmp_path),
                     "--compare", str(tmp_path / "nope.json")]) == 2
        assert "cannot read baseline" in capsys.readouterr().err
