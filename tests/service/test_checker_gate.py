"""The run_checker trusted path: gating, trust marks, defensive recheck."""

import pytest

from repro.checker.checker import Checker
from repro.service.cache import ProgramCache
from repro.service.jobs import JobSpecError, SimJob
from repro.service.runner import BatchRunner, execute_job

FAST = dict(eps=1e-3, max_sweeps=500)


@pytest.fixture
def check_calls(monkeypatch):
    """Count (and still perform) every Checker.check_program call."""
    calls = []
    real = Checker.check_program

    def counting(self, program):
        calls.append(program.name)
        return real(self, program)

    monkeypatch.setattr(Checker, "check_program", counting)
    return calls


class TestSimJobValidation:
    def test_default_is_auto(self):
        assert SimJob().run_checker == "auto"
        assert SimJob().keep_fields is False

    def test_unknown_mode_rejected(self):
        with pytest.raises(JobSpecError, match="unknown run_checker"):
            SimJob(run_checker="sometimes")

    def test_keep_fields_rejected_for_saved_programs(self):
        with pytest.raises(JobSpecError, match="keep_fields"):
            SimJob(method="program", program_path="x.json",
                   keep_fields=True)

    def test_new_knobs_do_not_change_cache_key(self):
        plain = SimJob(shape=(5, 5, 5))
        tuned = SimJob(shape=(5, 5, 5), run_checker="never",
                       keep_fields=True)
        assert plain.cache_key() == tuned.cache_key()
        assert plain.job_id != tuned.job_id

    def test_roundtrips_through_dict(self):
        job = SimJob(shape=(5, 5, 5), run_checker="never", keep_fields=True)
        assert SimJob.from_dict(job.to_dict()) == job


class TestCheckerGating:
    def test_auto_checks_first_compile_then_skips(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        first = execute_job(job.to_dict(), cache=cache)
        assert first["checker"] == "ran"
        assert len(check_calls) == 1
        cache.clear()  # forget the compiled program, keep the trust mark
        second = execute_job(job.to_dict(), cache=cache)
        assert second["checker"] == "skipped"
        assert len(check_calls) == 1  # no new check
        assert cache.stats.checks_skipped == 1
        # the unchecked recompile produced the exact vetted microcode
        assert (first["program_fingerprint"]
                == second["program_fingerprint"])

    def test_cache_hit_reports_no_checker_at_all(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        execute_job(job.to_dict(), cache=cache)
        hit = execute_job(job.to_dict(), cache=cache)
        assert hit["cache_hit"] is True
        assert "checker" not in hit  # nothing compiled, nothing to gate

    def test_always_rechecks_even_when_verified(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        execute_job(job.to_dict(), cache=cache)
        cache.clear()
        spec = dict(job.to_dict(), run_checker="always")
        record = execute_job(spec, cache=cache)
        assert record["checker"] == "ran"
        assert len(check_calls) == 2

    def test_never_skips_and_leaves_no_trust_mark(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 5),
                     run_checker="never", **FAST)
        record = execute_job(job.to_dict(), cache=cache)
        assert record["checker"] == "skipped"
        assert check_calls == []
        # an unchecked compile must not vouch for later auto compiles
        cache.clear()
        auto = execute_job(dict(job.to_dict(), run_checker="auto"),
                           cache=cache)
        assert auto["checker"] == "ran"
        assert len(check_calls) == 1

    def test_stale_trust_mark_triggers_checked_recompile(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        cache.mark_verified(job.cache_key(), "not-the-real-fingerprint")
        record = execute_job(job.to_dict(), cache=cache)
        assert record["ok"]
        assert record["checker"] == "ran"  # mismatch fell back to checking
        assert len(check_calls) == 1
        # and the registry now holds the true fingerprint
        assert (cache.verified_fingerprint(job.cache_key())
                == record["program_fingerprint"])

    def test_trust_marks_persist_on_disk(self, check_calls, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        BatchRunner(workers=1, cache_dir=cache_dir).run([job])
        assert len(check_calls) == 1
        # evict the compiled entries; the trust marks survive
        for entry in (tmp_path / "cache").glob("*.pkl"):
            entry.unlink()
        records, _ = BatchRunner(workers=1, cache_dir=cache_dir).run([job])
        assert records[0]["checker"] == "skipped"
        assert len(check_calls) == 1

    def test_clear_verified_forgets_marks(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 5), **FAST)
        execute_job(job.to_dict(), cache=cache)
        cache.clear()
        cache.clear_verified()
        record = execute_job(job.to_dict(), cache=cache)
        assert record["checker"] == "ran"
        assert len(check_calls) == 2

    def test_runner_override_beats_job_setting(self, check_calls):
        job = SimJob(method="jacobi", shape=(5, 5, 5),
                     run_checker="never", **FAST)
        runner = BatchRunner(workers=1, run_checker="always")
        records, _ = runner.run([job])
        assert records[0]["checker"] == "ran"
        assert len(check_calls) == 1

    def test_multinode_compiles_are_gated_too(self, check_calls):
        cache = ProgramCache()
        job = SimJob(method="jacobi", shape=(5, 5, 6), hypercube_dim=1,
                     **FAST)
        first = execute_job(job.to_dict(), cache=cache)
        assert first["ok"] and first["checker"] == "ran"
        cache.clear()
        second = execute_job(job.to_dict(), cache=cache)
        assert second["checker"] == "skipped"
        assert len(check_calls) == 1

    def test_invalid_runner_configuration(self):
        with pytest.raises(ValueError, match="unknown transport"):
            BatchRunner(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown run_checker"):
            BatchRunner(run_checker="sometimes")
