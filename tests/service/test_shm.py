"""Shared-memory transport: arena lifecycle, parity, crash/timeout cleanup.

The cleanup tests replace the worker function with a crasher/sleeper via
monkeypatching the runner module; that relies on the fork start method
(the pool's children inherit the patched module), so they skip on
platforms that spawn.
"""

import multiprocessing
import os
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.service import runner as runner_module
from repro.service.jobs import SimJob
from repro.service.results import ResultStore, canonical_record
from repro.service.runner import BatchRunner
from repro.service.shm import ShmArena, ShmArrayRef, attached

FAST = dict(eps=1e-3, max_sweeps=500)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-function monkeypatching requires fork",
)


def _jobs(keep_fields=True):
    return [
        SimJob(method="jacobi", shape=(5, 5, 5), keep_fields=keep_fields,
               label="jacobi", **FAST),
        SimJob(method="rb-gs", shape=(5, 5, 5), keep_fields=keep_fields,
               label="rbgs", **FAST),
        SimJob(method="jacobi", shape=(5, 5, 6), hypercube_dim=1,
               keep_fields=keep_fields, label="multi", **FAST),
    ]


def _assert_all_unlinked(names):
    assert names, "expected the run to have used shm segments"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# top-level so the pool can pickle them into (forked) workers; they
# stand in for execute_job_shm, so they accept its full signature
def _crash_worker(task, cache_dir=None, attempt=1):
    os._exit(13)


def _sleep_worker(task, cache_dir=None, attempt=1):
    time.sleep(30)


class TestShmArena:
    def test_place_view_roundtrip(self):
        with ShmArena() as arena:
            data = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
            ref = arena.place(data)
            assert isinstance(ref, ShmArrayRef)
            assert ref.shape == (2, 3, 4) and ref.dtype == "float64"
            assert np.array_equal(arena.view(ref), data)
            # view is zero-copy: a write through it is visible to a
            # fresh attachment
            arena.view(ref)[0, 0, 0] = 42.0
            with attached(ref) as seen:
                assert seen[0, 0, 0] == 42.0

    def test_allocate_zero_filled(self):
        with ShmArena() as arena:
            ref = arena.allocate((3, 3), dtype="float64")
            assert np.count_nonzero(arena.view(ref)) == 0

    def test_materialize_survives_destroy(self):
        arena = ShmArena()
        ref = arena.place(np.ones(7))
        copy = arena.materialize(ref)
        arena.destroy()
        assert np.array_equal(copy, np.ones(7))

    def test_destroy_unlinks_everything_and_is_idempotent(self):
        arena = ShmArena()
        refs = [arena.place(np.zeros(4)) for _ in range(3)]
        names = arena.names
        assert len(names) == 3
        arena.destroy()
        arena.destroy()  # second call must be a no-op, not an error
        _assert_all_unlinked(names)
        with pytest.raises(KeyError):
            arena.view(refs[0])  # ownership gone with the segments

    def test_attached_readonly_blocks_writes(self):
        with ShmArena() as arena:
            ref = arena.place(np.zeros(5))
            with attached(ref, readonly=True) as view:
                with pytest.raises(ValueError):
                    view[0] = 1.0
            with attached(ref, readonly=False) as view:
                view[0] = 1.0
            assert arena.view(ref)[0] == 1.0

    def test_nbytes_accounting(self):
        with ShmArena() as arena:
            arena.allocate((10, 10), dtype="float64")
            assert arena.nbytes >= 800


class TestTransportParity:
    def test_workers1_serial_bypass_identical_to_pickle(self):
        # workers=1 never touches a transport: both configurations run
        # the same in-process path and must agree exactly
        jobs = _jobs()
        shm_records, _ = BatchRunner(workers=1, transport="shm").run(jobs)
        pkl_records, _ = BatchRunner(workers=1, transport="pickle").run(jobs)
        for s, p in zip(shm_records, pkl_records):
            fields_s = s.pop("fields")
            fields_p = p.pop("fields")
            assert canonical_record(s) == canonical_record(p)
            assert np.array_equal(fields_s["u"], fields_p["u"])

    def test_results_bit_identical_across_transports(self):
        jobs = _jobs()
        serial, _ = BatchRunner(workers=1).run(jobs)
        pickle_r, _ = BatchRunner(workers=2, transport="pickle").run(jobs)
        shm_r, _ = BatchRunner(workers=2, transport="shm").run(jobs)
        for a, b, c in zip(serial, pickle_r, shm_r):
            assert a["ok"] and b["ok"] and c["ok"]
            assert np.array_equal(a["fields"]["u"], b["fields"]["u"])
            assert np.array_equal(a["fields"]["u"], c["fields"]["u"])
            assert (a["fields_sha256"] == b["fields_sha256"]
                    == c["fields_sha256"])
            for key in ("converged", "sweeps", "cycles",
                        "program_fingerprint", "metrics"):
                assert a[key] == b[key] == c[key]

    def test_shm_run_unlinks_all_segments(self):
        runner = BatchRunner(workers=2, transport="shm")
        records, summary = runner.run(_jobs())
        assert summary.failed == 0
        _assert_all_unlinked(runner.last_shm_segments)

    def test_failed_job_still_cleaned_up(self):
        jobs = [
            SimJob(method="jacobi", shape=(5, 5, 5), keep_fields=True,
                   **FAST),
            # nz=5 cannot split across 2 nodes -> captured failure
            SimJob(method="jacobi", shape=(5, 5, 5), hypercube_dim=1,
                   keep_fields=True, **FAST),
        ]
        runner = BatchRunner(workers=2, transport="shm")
        records, summary = runner.run(jobs)
        assert [r["ok"] for r in records] == [True, False]
        assert "fields" in records[0] and "fields" not in records[1]
        _assert_all_unlinked(runner.last_shm_segments)

    def test_store_gets_digests_never_arrays(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        runner = BatchRunner(workers=2, transport="shm", store=store)
        records, _ = runner.run(_jobs())
        stored = store.load()  # would have raised on non-JSON arrays
        assert len(stored) == len(records)
        for mem, disk in zip(records, stored):
            assert "fields" in mem
            assert "fields" not in disk
            assert disk["fields_sha256"] == mem["fields_sha256"]

    def test_keep_fields_false_allocates_no_output_segments(self):
        jobs = [SimJob(method="jacobi", shape=(5, 5, 5), **FAST)] * 2
        runner = BatchRunner(workers=2, transport="shm")
        records, _ = runner.run(jobs)
        assert all(r["ok"] for r in records)
        assert all("fields" not in r for r in records)
        # one shape -> exactly the two shared input segments (u_star, f)
        assert len(runner.last_shm_segments) == 2
        _assert_all_unlinked(runner.last_shm_segments)


class TestCrashAndTimeoutCleanup:
    @fork_only
    def test_worker_crash_leaks_no_segments(self, monkeypatch):
        monkeypatch.setattr(runner_module, "execute_job_shm", _crash_worker)
        runner = BatchRunner(workers=2, transport="shm")
        records, summary = runner.run(_jobs())
        assert summary.failed == len(records)  # pool broke, batch didn't
        assert all(not r["ok"] for r in records)
        _assert_all_unlinked(runner.last_shm_segments)

    @fork_only
    def test_timeout_path_unlinks_segments(self, monkeypatch):
        monkeypatch.setattr(runner_module, "execute_job_shm", _sleep_worker)
        runner = BatchRunner(workers=2, timeout=0.5, transport="shm")
        records, summary = runner.run(_jobs()[:2])
        assert all(not r["ok"] for r in records)
        assert all("TimeoutError" in r["error"] for r in records)
        _assert_all_unlinked(runner.last_shm_segments)
