"""SimJob specs: validation, hashing stability, (de)serialization."""

import pytest

from repro.arch.params import SUBSET_PARAMS
from repro.compose.registry import SOLVERS
from repro.service.jobs import METHODS, JobSpecError, SimJob


class TestValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(JobSpecError):
            SimJob(method="multigrid")

    def test_program_method_requires_path(self):
        with pytest.raises(JobSpecError):
            SimJob(method="program")

    def test_program_path_only_for_program_method(self):
        with pytest.raises(JobSpecError):
            SimJob(method="jacobi", program_path="x.json")

    def test_multinode_is_jacobi_only(self):
        with pytest.raises(JobSpecError):
            SimJob(method="rb-sor", hypercube_dim=2)

    def test_bad_shape_rejected(self):
        with pytest.raises(JobSpecError):
            SimJob(shape=(5, 5))
        with pytest.raises(JobSpecError):
            SimJob(shape=(5, 0, 5))

    def test_registry_covers_builder_methods(self):
        assert set(SOLVERS) == set(METHODS) - {"program"}


class TestHashing:
    def test_job_id_is_stable(self):
        a = SimJob(method="jacobi", shape=(7, 7, 7), eps=1e-4)
        b = SimJob(method="jacobi", shape=(7, 7, 7), eps=1e-4)
        assert a.job_id == b.job_id
        assert a.cache_key() == b.cache_key()

    def test_label_does_not_change_identity(self):
        a = SimJob(label="first")
        b = SimJob(label="renamed")
        assert a.job_id == b.job_id

    def test_eps_changes_program_key(self):
        a = SimJob(eps=1e-4)
        b = SimJob(eps=1e-5)
        assert a.program_key() != b.program_key()

    def test_subset_changes_params_key_not_program_key(self):
        a = SimJob(subset=False)
        b = SimJob(subset=True)
        assert a.params_key() != b.params_key()
        assert a.program_key() == b.program_key()

    def test_omega_ignored_for_non_sor_methods(self):
        a = SimJob(method="rb-gs", omega=1.2)
        b = SimJob(method="rb-gs", omega=1.8)
        assert a.program_key() == b.program_key()
        c = SimJob(method="rb-sor", omega=1.2)
        d = SimJob(method="rb-sor", omega=1.8)
        assert c.program_key() != d.program_key()


class TestParams:
    def test_subset_selects_subset_machine(self):
        assert SimJob(subset=True).params() == SUBSET_PARAMS

    def test_param_overrides_apply(self):
        job = SimJob(param_overrides=(("clock_mhz", 40.0),))
        assert job.params().clock_mhz == 40.0
        assert SimJob().params().clock_mhz == 20.0


class TestSerialization:
    def test_round_trip(self):
        job = SimJob(method="rb-sor", shape=(5, 6, 7), omega=1.3,
                     subset=True, label="x")
        assert SimJob.from_dict(job.to_dict()) == job

    def test_n_shorthand(self):
        job = SimJob.from_dict({"method": "jacobi", "n": 7})
        assert job.shape == (7, 7, 7)

    def test_unknown_fields_rejected(self):
        with pytest.raises(JobSpecError):
            SimJob.from_dict({"method": "jacobi", "frobnicate": 1})

    def test_describe_synthesizes_label(self):
        assert SimJob(label="mine").describe() == "mine"
        tag = SimJob(method="jacobi", shape=(4, 4, 8),
                     hypercube_dim=1).describe()
        assert "jacobi" in tag and "d1" in tag
