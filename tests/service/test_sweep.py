"""SweepSpec expansion: counts, ordering, validity filtering."""

import pytest

from repro.service.jobs import JobSpecError
from repro.service.sweep import SweepSpec


class TestExpansion:
    def test_cross_product_count(self):
        spec = SweepSpec(grids=(5, 7, 9), methods=("jacobi", "rb-sor"),
                         subset=(False, True))
        jobs = spec.expand()
        assert len(jobs) == 3 * 2 * 2
        assert spec.axis_product == 12

    def test_repeats_multiply_and_duplicate_identity(self):
        spec = SweepSpec(grids=(5,), methods=("jacobi",), repeats=3)
        jobs = spec.expand()
        assert len(jobs) == 3
        assert len({j.job_id for j in jobs}) == 1  # identical content
        assert len({j.label for j in jobs}) == 3   # distinct labels

    def test_order_is_deterministic(self):
        spec = SweepSpec(grids=(5, 7), methods=("jacobi", "rb-gs"))
        assert [j.label for j in spec.expand()] == \
            [j.label for j in spec.expand()]
        assert [j.label for j in spec.expand()] == [
            "jacobi-n5-d0", "jacobi-n7-d0", "rb-gs-n5-d0", "rb-gs-n7-d0",
        ]

    def test_repeats_are_outermost(self):
        spec = SweepSpec(grids=(5, 7), methods=("jacobi",), repeats=2)
        labels = [j.label for j in spec.expand()]
        assert labels == ["jacobi-n5-d0#r0", "jacobi-n7-d0#r0",
                          "jacobi-n5-d0#r1", "jacobi-n7-d0#r1"]


class TestValidityFiltering:
    def test_multinode_non_jacobi_skipped(self):
        spec = SweepSpec(grids=(8,), methods=("jacobi", "rb-sor"),
                         dims=(0, 1))
        jobs = spec.expand()
        # dim=0 runs both methods; dim=1 runs jacobi only
        assert len(jobs) == 3
        assert spec.skipped() == {"multinode-supports-jacobi-only": 1}

    def test_indivisible_grid_skipped(self):
        spec = SweepSpec(grids=(7, 8), methods=("jacobi",), dims=(2,))
        jobs = spec.expand()  # 7 % 4 != 0
        assert [j.shape for j in jobs] == [(8, 8, 8)]
        assert spec.skipped() == {"grid-not-divisible-across-nodes": 1}

    def test_describe_mentions_skips(self):
        spec = SweepSpec(grids=(7,), methods=("rb-gs",), dims=(1,))
        assert "skipped 1" in spec.describe()
        assert "0 jobs" in spec.describe()


class TestValidation:
    def test_program_method_not_sweepable(self):
        with pytest.raises(JobSpecError):
            SweepSpec(methods=("program",))

    def test_empty_axis_rejected(self):
        with pytest.raises(JobSpecError):
            SweepSpec(grids=())

    def test_tiny_grid_rejected(self):
        with pytest.raises(JobSpecError):
            SweepSpec(grids=(2,))

    def test_zero_repeats_rejected(self):
        with pytest.raises(JobSpecError):
            SweepSpec(repeats=0)
