"""NumPy reference applications: machine semantics and physics."""

import numpy as np
import pytest

from repro.apps.poisson3d import (
    grid_shape,
    jacobi_reference_run,
    jacobi_step_flat,
    manufactured_solution,
    poisson_residual,
)
from repro.compose.jacobi import interior_masks, jacobi_grid_index


class TestStep:
    def test_boundary_preserved(self, grid6):
        shape = (6, 6, 6)
        mask, invmask = interior_masks(shape)
        out, _res = jacobi_step_flat(
            grid6, np.zeros(216), mask, invmask, shape, 0.2
        )
        out3 = out.reshape(6, 6, 6)
        np.testing.assert_allclose(out3[0], grid6[0])
        np.testing.assert_allclose(out3[:, :, -1], grid6[:, :, -1])

    def test_interior_is_neighbour_average_when_f_zero(self):
        shape = (5, 5, 5)
        u = np.zeros(shape)
        u[2, 2, 1] = 6.0  # one neighbour of (2,2,2) in x
        mask, invmask = interior_masks(shape)
        out, _ = jacobi_step_flat(u, np.zeros(125), mask, invmask, shape, 0.25)
        out3 = out.reshape(5, 5, 5)
        assert out3[2, 2, 2] == pytest.approx(1.0)  # 6/6

    def test_residual_is_max_update(self, grid6):
        shape = (6, 6, 6)
        mask, invmask = interior_masks(shape)
        out, res = jacobi_step_flat(
            grid6, np.zeros(216), mask, invmask, shape, 0.2
        )
        assert res == pytest.approx(np.max(np.abs(out - grid6.reshape(-1))))

    def test_source_term_shifts_fixed_point(self):
        shape = (5, 5, 5)
        mask, invmask = interior_masks(shape)
        f = np.full(125, -1.0)
        out, _ = jacobi_step_flat(
            np.zeros(125), f, mask, invmask, shape, 0.5
        )
        assert out.reshape(5, 5, 5)[2, 2, 2] == pytest.approx(0.25 / 6)


class TestRun:
    def test_zero_rhs_decays_to_zero(self, grid6):
        u, iters, history = jacobi_reference_run(
            grid6, np.zeros(216), (6, 6, 6), 0.2, eps=1e-8
        )
        assert np.max(np.abs(u)) < 1e-6
        assert history == sorted(history, reverse=True) or iters > 1

    def test_residual_history_monotone_tail(self, grid6):
        _u, _iters, history = jacobi_reference_run(
            grid6, np.zeros(216), (6, 6, 6), 0.2, eps=1e-8
        )
        tail = history[5:]
        assert all(a >= b for a, b in zip(tail, tail[1:]))

    def test_iteration_bound_respected(self, grid6):
        _u, iters, history = jacobi_reference_run(
            grid6, np.zeros(216), (6, 6, 6), 0.2, eps=0.0, max_iterations=12
        )
        assert iters == 12 and len(history) == 12


class TestManufactured:
    def test_analytic_relation(self):
        u_star, f, h = manufactured_solution((9, 9, 9))
        np.testing.assert_allclose(f, -3 * np.pi**2 * u_star)

    def test_boundaries_are_zero(self):
        u_star, _f, _h = manufactured_solution((9, 9, 9))
        assert np.max(np.abs(u_star[0])) < 1e-12
        assert np.max(np.abs(u_star[:, -1])) < 1e-12

    def test_discrete_residual_of_analytic_solution_is_small(self):
        u_star, f, h = manufactured_solution((17, 17, 17))
        # truncation error of the 7-point stencil: O(h^2 * |u''''|)
        assert poisson_residual(u_star, f, (17, 17, 17), h) < 2.0

    def test_jacobi_converges_to_analytic(self):
        shape = (7, 7, 7)
        u_star, f, h = manufactured_solution(shape)
        u, _iters, _hist = jacobi_reference_run(
            np.zeros(shape), f, shape, h, eps=1e-11, max_iterations=5000
        )
        assert np.max(np.abs(u.reshape(shape) - u_star)) < 0.07


class TestGridShape:
    def test_transposes_problem_shape(self):
        assert grid_shape((5, 6, 7)) == (7, 6, 5)
        assert grid_shape((9, 9, 9)) == (9, 9, 9)

    def test_matches_flattening_convention(self):
        """reshape(grid_shape(shape))[k, j, i] is flat[jacobi_grid_index]."""
        shape = (4, 5, 6)
        n = 4 * 5 * 6
        flat = np.arange(n, dtype=np.float64)
        cube = flat.reshape(grid_shape(shape))
        assert cube[3, 2, 1] == flat[jacobi_grid_index(1, 2, 3, shape)]
        assert cube[0, 4, 3] == flat[jacobi_grid_index(3, 4, 0, shape)]


class TestNonCubicManufacturedSolution:
    def test_vanishes_on_every_face(self):
        u_star, _f, _h = manufactured_solution((5, 6, 9))
        for face in (u_star[0], u_star[-1], u_star[:, 0], u_star[:, -1],
                     u_star[:, :, 0], u_star[:, :, -1]):
            assert np.max(np.abs(face)) < 1e-12

    def test_cubic_with_custom_h_vanishes_on_every_face(self):
        # cubic but spanning [0, 1.2]: the unit-cube formula would leave
        # the far faces nonzero; the scaled branch must take over
        u_star, _f, _h = manufactured_solution((5, 5, 5), h=0.3)
        for face in (u_star[0], u_star[-1], u_star[:, 0], u_star[:, -1],
                     u_star[:, :, 0], u_star[:, :, -1]):
            assert np.max(np.abs(face)) < 1e-12

    def test_discrete_residual_small_off_cube(self):
        shape = (9, 11, 17)
        u_star, f, h = manufactured_solution(shape)
        assert poisson_residual(u_star, f, shape, h) < 2.0

    def test_jacobi_converges_to_analytic_off_cube(self):
        shape = (6, 7, 9)
        u_star, f, h = manufactured_solution(shape)
        u, _iters, _hist = jacobi_reference_run(
            np.zeros(shape), f, shape, h, eps=1e-11, max_iterations=8000
        )
        err = np.max(np.abs(u.reshape(grid_shape(shape)) - u_star))
        assert err < 0.07
