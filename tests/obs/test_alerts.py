"""History maintenance and the rolling-window regression detector."""

import json

import pytest

from repro.obs.alerts import (
    AlertTrigger,
    RegressionDetector,
    append_history,
    detect_alerts,
    format_alerts,
    history_entries,
    load_history,
    write_alerts,
)


def _record(speedup, scenario="jacobi_single", quick=True, **extra):
    record = {
        "scenario": scenario,
        "quick": quick,
        "ok": True,
        "speedup": speedup,
        "backends": {
            "reference": {"wall_s": 1.0},
            "fast": {"wall_s": 1.0 / speedup},
        },
    }
    record.update(extra)
    return record


def _seed(path, speedups, **kw):
    for s in speedups:
        append_history([_record(s, **kw)], str(path), timestamp=0.0)


class TestHistoryFile:
    def test_entries_distill_metrics_and_walls(self):
        [entry] = history_entries(
            [_record(4.0, speedup_vs_unfused=2.5)], timestamp=123.0
        )
        assert entry == {
            "ts": 123.0,
            "scenario": "jacobi_single",
            "quick": True,
            "ok": True,
            "speedup": 4.0,
            "speedup_vs_unfused": 2.5,
            "wall_s": {"reference": 1.0, "fast": 0.25},
        }

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, [3.0, 4.0])
        entries = load_history(str(path))
        assert [e["speedup"] for e in entries] == [3.0, 4.0]

    def test_load_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, [3.0])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated by a killed CI ru\n")
            fh.write('"not a dict"\n')
            fh.write(json.dumps({"no_scenario": True}) + "\n")
        _seed(path, [4.0])
        assert len(load_history(str(path))) == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []


class TestTriggerValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AlertTrigger(window=0)
        with pytest.raises(ValueError):
            AlertTrigger(min_samples=0)
        with pytest.raises(ValueError):
            AlertTrigger(window=3, min_samples=4)
        with pytest.raises(ValueError):
            AlertTrigger(drop=1.0)


class TestDetector:
    def test_synthetic_slow_run_fires(self, tmp_path):
        # the acceptance scenario: a healthy trend, then one slow run
        path = tmp_path / "history.jsonl"
        _seed(path, [5.0, 5.1, 4.9, 5.2, 1.0])
        alerts = detect_alerts(load_history(str(path)))
        assert not alerts["ok"]
        [fired] = alerts["fired"]
        assert fired["scenario"] == "jacobi_single"
        assert fired["metric"] == "speedup"
        assert fired["current"] == 1.0
        assert "fell below" in fired["reason"]

    def test_healthy_trend_is_quiet(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, [5.0, 5.1, 4.9, 5.2, 5.0])
        alerts = detect_alerts(load_history(str(path)))
        assert alerts["ok"]
        assert alerts["fired"] == []
        assert alerts["evaluated"]  # the check itself is on record

    def test_insufficient_history_never_fires(self, tmp_path):
        # two prior runs < min_samples=3: even a huge drop stays quiet
        path = tmp_path / "history.jsonl"
        _seed(path, [5.0, 5.0, 0.5])
        alerts = detect_alerts(load_history(str(path)))
        assert alerts["ok"]
        [status] = alerts["evaluated"]
        assert "insufficient history" in status["note"]

    def test_median_resists_one_outlier_in_window(self, tmp_path):
        # one anomalously *fast* prior run must not raise the floor
        path = tmp_path / "history.jsonl"
        _seed(path, [5.0, 5.0, 50.0, 5.0, 4.5])
        assert detect_alerts(load_history(str(path)))["ok"]

    def test_quick_and_full_trend_separately(self, tmp_path):
        # a slow quick run fires even though full runs look healthy
        path = tmp_path / "history.jsonl"
        _seed(path, [8.0, 8.0, 8.0, 8.0], quick=False)
        _seed(path, [5.0, 5.0, 5.0, 1.0], quick=True)
        alerts = detect_alerts(load_history(str(path)))
        [fired] = alerts["fired"]
        assert fired["quick"] is True

    def test_window_bounds_the_lookback(self, tmp_path):
        # ancient glory days beyond the window are forgotten: a series
        # that has *stabilized* lower does not alert forever
        path = tmp_path / "history.jsonl"
        _seed(path, [9.0, 9.0, 9.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.1])
        trigger = AlertTrigger(metric="speedup", window=5, min_samples=3,
                               drop=0.25)
        assert RegressionDetector([trigger]).detect(
            load_history(str(path))
        )["ok"]

    def test_metric_absent_from_series_is_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, [5.0, 5.0, 5.0, 5.0, 5.0])
        alerts = detect_alerts(load_history(str(path)))
        # only "speedup" evaluated; no speedup_vs_unfused ghosts
        assert {s["metric"] for s in alerts["evaluated"]} == {"speedup"}


class TestArtifacts:
    def test_write_alerts_emits_json(self, tmp_path):
        alerts = {"ok": True, "fired": [], "evaluated": []}
        path = write_alerts(alerts, str(tmp_path / "out"))
        assert path.name == "BENCH_alerts.json"
        assert json.loads(path.read_text()) == alerts

    def test_format_alerts_reports_fired_and_warmup(self, tmp_path):
        path = tmp_path / "history.jsonl"
        _seed(path, [5.0, 5.0, 5.0, 5.0, 1.0])
        text = format_alerts(detect_alerts(load_history(str(path))))
        assert "1 FIRED" in text
        assert "ALERT" in text
        _seed(path, [5.0], scenario="fresh")
        quiet = format_alerts(
            detect_alerts([e for e in load_history(str(path))
                           if e["scenario"] == "fresh"])
        )
        assert "ok" in quiet
        assert "insufficient history" in quiet
