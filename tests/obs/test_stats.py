"""The offline aggregators behind ``nsc-vpe stats``."""

from repro.obs.stats import (
    aggregate_history,
    aggregate_records,
    format_history_stats,
    format_record_stats,
)
from repro.obs.tracer import STAGES


def _job_record(tier="fused", ok=True, **extra):
    record = {
        "ok": ok,
        "tier": tier,
        "timings": {"compile": 0.1, "check": 0.02, "bind": 0.05,
                    "execute": 0.5, "transport": 0.0},
        "duration_s": 0.7,
        "cache_hit": True,
    }
    record.update(extra)
    return record


class TestAggregateRecords:
    def test_sums_stages_tiers_and_cache(self):
        records = [
            _job_record(),
            _job_record(tier="per_issue", cache_hit=False,
                        fallback_reason="injected"),
            _job_record(tier=None, ok=False),
        ]
        stats = aggregate_records(records)
        assert stats["jobs"] == 3
        assert stats["ok"] == 2 and stats["failed"] == 1
        assert stats["timings"]["execute"] == 1.5
        assert stats["timings_mean"]["execute"] == 0.5
        assert stats["tiers"] == {"fused": 1, "per_issue": 1}
        assert stats["fallbacks"] == 1
        assert stats["cache"] == {"hits": 2, "misses": 1}
        assert stats["duration_s"] == 2.1

    def test_empty_and_schemaless_records(self):
        stats = aggregate_records([])
        assert stats["jobs"] == 0
        assert set(stats["timings"]) == set(STAGES)
        # pre-telemetry records (no timings/tier keys) still aggregate
        stats = aggregate_records([{"ok": True}])
        assert stats["jobs"] == 1
        assert stats["tiers"] == {}

    def test_format_mentions_every_stage(self):
        text = format_record_stats(aggregate_records([_job_record()]))
        for stage in STAGES:
            assert stage in text
        assert "fused=1" in text


class TestAggregateHistory:
    def test_per_series_latest_and_median(self):
        entries = [
            {"scenario": "a", "quick": True, "speedup": s}
            for s in (2.0, 4.0, 3.0)
        ] + [{"scenario": "a", "quick": False, "speedup": 10.0}]
        summaries = aggregate_history(entries)
        assert len(summaries) == 2  # quick and full trend separately
        quick = next(s for s in summaries if s["quick"])
        assert quick["runs"] == 3
        assert quick["metrics"]["speedup"] == {
            "latest": 3.0, "median": 3.0, "best": 4.0
        }

    def test_window_bounds_the_median(self):
        entries = [
            {"scenario": "a", "quick": True, "speedup": s}
            for s in (100.0, 1.0, 1.0, 1.0)
        ]
        [summary] = aggregate_history(entries, window=3)
        assert summary["metrics"]["speedup"]["median"] == 1.0
        assert summary["metrics"]["speedup"]["best"] == 100.0

    def test_format_empty_and_full(self):
        assert aggregate_history([]) == []
        assert "empty" in format_history_stats([])
        text = format_history_stats(
            aggregate_history([{"scenario": "a", "quick": False,
                                "speedup": 2.0}])
        )
        assert "a [full]: 1 runs" in text
        assert "latest 2.00x" in text
