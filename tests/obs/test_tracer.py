"""The telemetry core: spans, counters, activation scoping, sinks."""

import json

import pytest

from repro.obs import tracer as obs
from repro.obs.tracer import STAGES, ZERO_TIMINGS, JsonlSink, Telemetry, Tracer


class TestTracer:
    def test_span_times_and_counts(self):
        t = Tracer()
        with t.span("execute"):
            pass
        with t.span("execute"):
            pass
        assert t.span_counts["execute"] == 2
        assert t.timings["execute"] >= 0.0

    def test_spans_nest_and_both_record(self):
        t = Tracer()
        with t.span("compile"):
            with t.span("check"):
                pass
        assert t.span_counts == {"compile": 1, "check": 1}
        # the outer span's elapsed includes the inner's
        assert t.timings["compile"] >= t.timings["check"]

    def test_span_records_through_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("execute"):
                raise RuntimeError("boom")
        assert t.span_counts["execute"] == 1
        # the stack unwound: a later span has no stale parent
        with t.span("bind"):
            pass
        assert t._stack == []

    def test_counters_and_annotations(self):
        t = Tracer()
        t.count("cache.hit")
        t.count("cache.hit", 2)
        t.annotate("tier", "per_issue")
        t.annotate("tier", "fused")  # last write wins
        assert t.counters["cache.hit"] == 3
        assert t.annotations["tier"] == "fused"

    def test_events_buffer_is_bounded(self):
        t = Tracer(keep_events=True)
        t.MAX_EVENTS = 5
        for i in range(10):
            t.event("tick", i=i)
        assert len(t.events) == 5

    def test_events_dropped_without_sink_or_buffer(self):
        t = Tracer()
        t.event("tick")
        with t.span("execute"):
            pass
        assert t.events == []  # aggregates still recorded
        assert t.span_counts["execute"] == 1


class TestActivation:
    def test_helpers_noop_without_active_tracer(self):
        assert obs.current() is None
        with obs.span("execute"):
            pass
        obs.count("cache.hit")
        obs.annotate("tier", "fused")
        obs.event("tick")  # none of these may raise

    def test_use_routes_helpers_to_tracer(self):
        t = Tracer()
        with obs.use(t):
            assert obs.current() is t
            with obs.span("execute"):
                obs.count("tier.fused")
            obs.annotate("tier", "fused")
        assert obs.current() is None
        assert t.span_counts["execute"] == 1
        assert t.counters["tier.fused"] == 1
        assert t.annotations["tier"] == "fused"

    def test_use_nests_and_restores(self):
        outer, inner = Tracer(), Tracer()
        with obs.use(outer):
            obs.count("outer")
            with obs.use(inner):
                obs.count("inner")
            obs.count("outer")
        assert outer.counters == {"outer": 2}
        assert inner.counters == {"inner": 1}

    def test_use_restores_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with obs.use(t):
                raise ValueError
        assert obs.current() is None


class TestTelemetry:
    def test_stage_timings_has_fixed_schema(self):
        tel = Tracer().telemetry()
        assert tuple(tel.stage_timings()) == STAGES
        assert tel.stage_timings() == dict(ZERO_TIMINGS)

    def test_stage_timings_rounds(self):
        tel = Telemetry(timings={"compile": 0.123456789})
        assert tel.stage_timings()["compile"] == 0.123457

    def test_merge_adds_and_overwrites(self):
        a = Telemetry(timings={"execute": 1.0}, counters={"n": 1},
                      annotations={"tier": "fused"})
        b = Telemetry(timings={"execute": 2.0, "bind": 0.5},
                      counters={"n": 2}, annotations={"tier": "per_issue"})
        a.merge(b)
        assert a.timings == {"execute": 3.0, "bind": 0.5}
        assert a.counters == {"n": 3}
        assert a.annotations["tier"] == "per_issue"

    def test_as_dict_and_format(self):
        t = Tracer()
        with t.span("execute"):
            pass
        t.count("tier.fused")
        tel = t.telemetry()
        assert set(tel.as_dict()) == {
            "timings", "span_counts", "counters", "annotations"
        }
        assert "tier.fused=1" in tel.format()
        assert Telemetry().format() == "(no telemetry)"


class TestJsonlSink:
    def test_sink_receives_span_and_event_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        t = Tracer(sink=JsonlSink(str(path)))
        with t.span("compile"):
            with t.span("check"):
                pass
        t.event("fusion_fallback", reason="why")
        t.sink.close()
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        assert [e["type"] for e in lines] == [
            "span", "span", "fusion_fallback"
        ]
        # inner span emits first (it closes first) and names its parent
        assert lines[0]["name"] == "check"
        assert lines[0]["parent"] == "compile"
        assert lines[2]["reason"] == "why"
        assert all("t" in e for e in lines)

    def test_sink_failure_never_propagates(self, tmp_path):
        sink = JsonlSink(str(tmp_path))  # a directory: open() fails
        sink.emit({"type": "tick"})
        assert sink._dead
        sink.emit({"type": "tick"})  # still silent
        sink.close()
