"""Each checker rule: the constraint catalog of §3/§4, one rule at a time."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.dma import DMASpec, Direction
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import (
    DeviceKind,
    Endpoint,
    cache_read,
    fu_in,
    fu_out,
    mem_read,
    mem_write,
    sd_in,
    sd_tap,
)
from repro.checker.knowledge import MachineKnowledge
from repro.checker import rules as R
from repro.diagram.pipeline import (
    ConditionSpec,
    InputMod,
    InputModKind,
    PipelineDiagram,
)
from repro.diagram.program import Declaration


@pytest.fixture(scope="module")
def kb() -> MachineKnowledge:
    return MachineKnowledge(NodeConfig())


def _diagram_with_doublet() -> PipelineDiagram:
    """ALS 4 is the first doublet in the default node (fus 4 and 5)."""
    d = PipelineDiagram(number=0)
    d.add_als(4, ALSKind.DOUBLET, first_fu=4)
    return d


def _rule_errors(rule, diagram, kb, declarations=None):
    return [d for d in rule.check(diagram, kb, declarations) if d.severity.value == "error"]


class TestALSPlacement:
    def test_real_als_accepted(self, kb):
        d = _diagram_with_doublet()
        assert _rule_errors(R.ALSPlacementRule(), d, kb) == []

    def test_wrong_shape_rejected(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.TRIPLET, first_fu=4)  # ALS 4 is a doublet
        errs = _rule_errors(R.ALSPlacementRule(), d, kb)
        assert len(errs) == 1

    def test_wrong_first_fu_rejected(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=6)
        assert _rule_errors(R.ALSPlacementRule(), d, kb)


class TestFUCapability:
    def test_fp_on_any_unit(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        assert _rule_errors(R.FUCapabilityRule(), d, kb) == []

    def test_integer_on_minmax_unit_rejected(self, kb):
        """§3: only one unit per ALS has integer circuitry."""
        d = _diagram_with_doublet()
        d.set_fu_op(5, Opcode.IADD)  # fu5 is the min/max slot
        errs = _rule_errors(R.FUCapabilityRule(), d, kb)
        assert errs and "cannot perform iadd" in errs[0].message

    def test_minmax_on_integer_unit_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.MAX)
        assert _rule_errors(R.FUCapabilityRule(), d, kb)


class TestSinkUniqueness:
    def test_double_drive_rejected(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(mem_read(1), fu_in(4, "a"))
        assert _rule_errors(R.SinkUniquenessRule(), d, kb)

    def test_wire_plus_mod_rejected(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        d.set_input_mod(4, "a", InputMod(InputModKind.CONSTANT, value=1.0))
        assert _rule_errors(R.SinkUniquenessRule(), d, kb)


class TestFanout:
    def test_over_limit_rejected(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.add_als(5, ALSKind.DOUBLET, first_fu=6)
        d.add_als(6, ALSKind.DOUBLET, first_fu=8)
        sinks = [fu_in(4, "a"), fu_in(4, "b"), fu_in(6, "a"), fu_in(6, "b"),
                 fu_in(8, "a")]
        for sink in sinks:
            d.connect(mem_read(0), sink)
        errs = _rule_errors(R.FanoutRule(), d, kb)
        assert errs and "fan-out" in errs[0].message or "drives" in errs[0].message


class TestPlaneRules:
    def test_single_plane_per_fu(self, kb):
        """§3: one memory plane per functional unit per instruction."""
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(mem_read(1), fu_in(4, "b"))
        errs = _rule_errors(R.SinglePlanePerFURule(), d, kb)
        assert errs and "only one" in errs[0].message

    def test_same_plane_twice_is_fine(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(fu_out(4), mem_write(0))
        assert _rule_errors(R.SinglePlanePerFURule(), d, kb) == []

    def test_one_writer_per_plane(self, kb):
        """The editor's worked example from §4."""
        d = _diagram_with_doublet()
        d.connect(fu_out(4), mem_write(3))
        d.connect(fu_out(5), mem_write(3))
        errs = _rule_errors(R.OneWriterPerPlaneRule(), d, kb)
        assert errs and "written by 2" in errs[0].message


class TestDMARule:
    def test_missing_spec_flagged(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        errs = _rule_errors(R.DMASpecRule(), d, kb)
        assert errs and "no DMA specification" in errs[0].message

    def test_direction_mismatch_flagged(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.WRITE, variable="x"),
        )
        errs = _rule_errors(R.DMASpecRule(), d, kb)
        assert any("direction" in e.message for e in errs)

    def test_undeclared_variable_flagged(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="ghost"),
        )
        errs = _rule_errors(R.DMASpecRule(), d, kb, declarations={})
        assert any("undeclared" in e.message for e in errs)

    def test_wrong_plane_for_variable_flagged(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u"),
        )
        decls = {"u": Declaration(name="u", plane=5, length=64)}
        errs = _rule_errors(R.DMASpecRule(), d, kb, declarations=decls)
        assert any("plane 5" in e.message for e in errs)

    def test_good_spec_passes(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u"),
        )
        decls = {"u": Declaration(name="u", plane=0, length=64)}
        assert _rule_errors(R.DMASpecRule(), d, kb, declarations=decls) == []


class TestInputsFed:
    def test_missing_input_flagged(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        d.connect(mem_read(0), fu_in(4, "a"))
        errs = _rule_errors(R.InputsFedRule(), d, kb)
        assert errs and "input b is unconnected" in errs[0].message

    def test_wired_but_unprogrammed_flagged(self, kb):
        d = _diagram_with_doublet()
        d.connect(mem_read(0), fu_in(4, "a"))
        errs = _rule_errors(R.InputsFedRule(), d, kb)
        assert any("no operation" in e.message for e in errs)

    def test_unary_with_b_fed_warns(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FABS)
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(mem_read(0), fu_in(4, "b"))
        diags = R.InputsFedRule().check(d, kb)
        assert any(dg.severity.value == "warning" for dg in diags)


class TestInternalAndFeedback:
    def test_valid_internal_route(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        d.set_fu_op(5, Opcode.MAX)
        d.set_input_mod(5, "a", InputMod(InputModKind.INTERNAL, src_slot=0))
        assert _rule_errors(R.InternalRouteRule(), d, kb) == []

    def test_nonexistent_route_rejected(self, kb):
        d = PipelineDiagram()
        d.add_als(12, ALSKind.TRIPLET, first_fu=20)
        d.set_fu_op(20, Opcode.FADD)
        d.set_fu_op(21, Opcode.FMUL)
        # triplet has no internal edge from slot 0 into slot 1
        d.set_input_mod(21, "a", InputMod(InputModKind.INTERNAL, src_slot=0))
        errs = _rule_errors(R.InternalRouteRule(), d, kb)
        assert errs and "no hardwired route" in errs[0].message

    def test_unprogrammed_internal_source_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(5, Opcode.MAX)
        d.set_input_mod(5, "a", InputMod(InputModKind.INTERNAL, src_slot=0))
        errs = _rule_errors(R.InternalRouteRule(), d, kb)
        assert errs and "has no operation" in errs[0].message

    def test_feedback_needs_binary_op(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(5, Opcode.FABS)
        d.set_input_mod(5, "b", InputMod(InputModKind.FEEDBACK))
        errs = _rule_errors(R.FeedbackRule(), d, kb)
        assert errs and "unary" in errs[0].message

    def test_feedback_on_binary_ok(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(5, Opcode.MAX)
        d.set_input_mod(5, "b", InputMod(InputModKind.FEEDBACK))
        assert _rule_errors(R.FeedbackRule(), d, kb) == []


class TestRegfileCapacity:
    def test_oversized_delay_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        d.delays[(4, "a")] = kb.regfile_words + 1
        errs = _rule_errors(R.RegfileCapacityRule(), d, kb)
        assert errs and "register-file" in errs[0].message

    def test_constants_count(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FSCALE, constant=2.0)
        d.delays[(4, "a")] = kb.regfile_words  # + 1 constant word = over
        assert _rule_errors(R.RegfileCapacityRule(), d, kb)


class TestShiftDelayRule:
    def test_unconfigured_tap_wire_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FABS)
        d.connect(sd_tap(0, 0), fu_in(4, "a"))
        errs = _rule_errors(R.ShiftDelayRule(), d, kb)
        assert any("not configured" in e.message for e in errs)

    def test_unfed_unit_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FABS)
        d.set_sd_tap(0, 0, 1)
        d.connect(sd_tap(0, 0), fu_in(4, "a"))
        errs = _rule_errors(R.ShiftDelayRule(), d, kb)
        assert any("input is unconnected" in e.message for e in errs)

    def test_complete_sd_usage_passes(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FABS)
        d.set_sd_tap(0, 0, 1)
        d.connect(mem_read(0), sd_in(0))
        d.connect(sd_tap(0, 0), fu_in(4, "a"))
        assert _rule_errors(R.ShiftDelayRule(), d, kb) == []

    def test_out_of_range_shift_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_sd_tap(0, 0, kb.params.shift_delay_max_shift + 1)
        assert _rule_errors(R.ShiftDelayRule(), d, kb)

    def test_nonexistent_tap_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_sd_tap(0, 99, 1)
        assert _rule_errors(R.ShiftDelayRule(), d, kb)


class TestMiscRules:
    def test_unused_output_warns(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        diags = R.UnusedOutputRule().check(d, kb)
        assert diags and diags[0].severity.value == "warning"

    def test_condition_fu_exempt_from_unused(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(5, Opcode.MAX)
        d.set_condition(ConditionSpec(fu=5, comparison="lt", threshold=1.0))
        assert R.UnusedOutputRule().check(d, kb) == []

    def test_condition_on_unprogrammed_fu_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_condition(ConditionSpec(fu=4, comparison="lt", threshold=1.0))
        assert _rule_errors(R.ConditionRule(), d, kb)

    def test_cycle_rejected(self, kb):
        d = _diagram_with_doublet()
        d.set_fu_op(4, Opcode.FADD)
        d.set_fu_op(5, Opcode.MAX)
        d.connect(fu_out(4), fu_in(5, "a"))
        d.connect(fu_out(5), fu_in(4, "a"))
        errs = _rule_errors(R.AcyclicityRule(), d, kb)
        assert errs and "cycle" in errs[0].message

    def test_vector_length_conflict_rejected(self, kb):
        d = _diagram_with_doublet()
        d.vector_length = 100
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u", count=50),
        )
        errs = _rule_errors(R.VectorLengthRule(), d, kb)
        assert errs and "inconsistent" in errs[0].message

    def test_all_rules_have_unique_ids(self):
        ids = [r.rule_id for r in R.ALL_RULES]
        assert len(ids) == len(set(ids))
