"""MachineKnowledge: the query layer and its subset-machine retargeting."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.params import SUBSET_PARAMS
from repro.arch.switch import fu_in, mem_read
from repro.checker.knowledge import MachineKnowledge


@pytest.fixture(scope="module")
def kb() -> MachineKnowledge:
    return MachineKnowledge(NodeConfig())


@pytest.fixture(scope="module")
def subset_kb() -> MachineKnowledge:
    return MachineKnowledge(NodeConfig(SUBSET_PARAMS))


class TestQueries:
    def test_fu_existence(self, kb):
        assert kb.fu_exists(31)
        assert not kb.fu_exists(32)
        assert not kb.fu_exists(-1)

    def test_fu_supports(self, kb):
        assert kb.fu_supports(0, Opcode.IADD)  # singlet: integer capable
        assert not kb.fu_supports(0, Opcode.MAX)
        assert not kb.fu_supports(99, Opcode.FADD)

    def test_legal_ops_for_missing_fu_empty(self, kb):
        assert kb.legal_ops_for_fu(99) == []

    def test_als_matches(self, kb):
        assert kb.als_matches(0, ALSKind.SINGLET, 0)
        assert not kb.als_matches(0, ALSKind.DOUBLET, 0)
        assert not kb.als_matches(99, ALSKind.SINGLET, 0)

    def test_device_existence(self, kb):
        assert kb.plane_exists(15) and not kb.plane_exists(16)
        assert kb.cache_exists(15) and not kb.cache_exists(16)
        assert kb.sd_unit_exists(1) and not kb.sd_unit_exists(2)
        assert kb.sd_tap_exists(0, 7) and not kb.sd_tap_exists(0, 8)

    def test_switch_delegation(self, kb):
        assert kb.is_switch_source(mem_read(0))
        assert kb.is_switch_sink(fu_in(0, "a"))
        assert not kb.is_switch_source(fu_in(0, "a"))

    def test_describe_mentions_peak(self, kb):
        assert "640 MFLOPS" in kb.describe()


class TestSubsetRetargeting:
    """§4: machine-design changes absorbed 'merely by updating the
    knowledge base' — same rule code, different parameters."""

    def test_subset_has_fewer_fus(self, subset_kb):
        assert not subset_kb.fu_exists(16)

    def test_subset_has_fewer_planes(self, subset_kb):
        assert subset_kb.plane_exists(7)
        assert not subset_kb.plane_exists(8)

    def test_subset_has_no_triplets(self, subset_kb):
        assert subset_kb.node.als_of_kind(ALSKind.TRIPLET) == []

    def test_same_rule_objects_work_on_both(self, kb, subset_kb):
        from repro.checker.rules import ALL_RULES
        from repro.diagram.pipeline import PipelineDiagram

        d = PipelineDiagram()
        d.add_als(0, ALSKind.DOUBLET, first_fu=0)
        for rule in ALL_RULES:
            rule.check(d, subset_kb)  # must not raise
        # the full machine's ALS 0 is a singlet, so the same diagram fails
        from repro.checker.rules import ALSPlacementRule

        assert ALSPlacementRule().check(d, kb)
