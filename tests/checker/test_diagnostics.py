"""Diagnostics and reports: severities, formatting, aggregation."""

from repro.checker.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    error,
    info,
    warning,
)


class TestDiagnostic:
    def test_format_includes_rule_and_subject(self):
        d = error("plane-one-writer", "two writers", subject="mem[3].write",
                  pipeline=2)
        text = d.format()
        assert "ERROR" in text
        assert "plane-one-writer" in text
        assert "mem[3].write" in text
        assert "pipeline 2" in text

    def test_severity_predicates(self):
        assert Severity.ERROR.is_error
        assert not Severity.WARNING.is_error

    def test_helpers_build_right_severity(self):
        assert error("r", "m").severity is Severity.ERROR
        assert warning("r", "m").severity is Severity.WARNING
        assert info("r", "m").severity is Severity.INFO


class TestReport:
    def test_empty_report_is_ok(self):
        report = CheckReport()
        assert report.ok
        assert bool(report)
        assert report.format() == "clean"

    def test_warnings_do_not_block(self):
        report = CheckReport()
        report.add(warning("r", "watch out"))
        assert report.ok
        assert len(report.warnings) == 1

    def test_errors_block(self):
        report = CheckReport()
        report.add(error("r", "broken"))
        assert not report.ok
        assert not bool(report)

    def test_merge(self):
        a, b = CheckReport(), CheckReport()
        a.add(error("r", "x"))
        b.add(warning("r", "y"))
        a.merge(b)
        assert len(a) == 2

    def test_first_error_message(self):
        report = CheckReport()
        report.add(warning("r", "w"))
        assert report.first_error_message() == ""
        report.add(error("r2", "broken thing"))
        assert "broken thing" in report.first_error_message()

    def test_iteration(self):
        report = CheckReport()
        report.extend([error("a", "1"), warning("b", "2")])
        assert [d.rule for d in report] == ["a", "b"]
