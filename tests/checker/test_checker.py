"""The Checker facade: incremental edit-time checks and global passes."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.dma import DMASpec, Direction
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import (
    DeviceKind,
    cache_read,
    fu_in,
    fu_out,
    mem_read,
    mem_write,
)
from repro.checker.checker import Checker
from repro.compose.jacobi import build_jacobi_program
from repro.diagram.pipeline import InputMod, InputModKind, PipelineDiagram
from repro.diagram.program import VisualProgram


@pytest.fixture()
def checker() -> Checker:
    return Checker(NodeConfig())


@pytest.fixture()
def diagram() -> PipelineDiagram:
    d = PipelineDiagram()
    d.add_als(4, ALSKind.DOUBLET, first_fu=4)
    return d


class TestIncrementalConnection:
    """The Fig. 8 rubber-band checks."""

    def test_legal_connection_passes(self, checker, diagram):
        assert checker.check_connection(diagram, mem_read(0), fu_in(4, "a")).ok

    def test_bad_source_rejected(self, checker, diagram):
        report = checker.check_connection(diagram, fu_in(0, "a"), fu_in(4, "a"))
        assert not report.ok

    def test_occupied_sink_rejected(self, checker, diagram):
        diagram.connect(mem_read(0), fu_in(4, "a"))
        report = checker.check_connection(diagram, mem_read(1), fu_in(4, "a"))
        assert not report.ok
        assert "already driven" in report.first_error_message()

    def test_modded_sink_rejected(self, checker, diagram):
        diagram.set_input_mod(4, "a", InputMod(InputModKind.CONSTANT, value=1.0))
        report = checker.check_connection(diagram, mem_read(1), fu_in(4, "a"))
        assert not report.ok

    def test_second_plane_writer_refused(self, checker, diagram):
        """The paper's own example: 'the graphical editor will not let him
        send the output of a second unit to the same plane'."""
        diagram.connect(fu_out(4), mem_write(3))
        report = checker.check_connection(diagram, fu_out(5), mem_write(3))
        assert not report.ok
        assert any(d.rule == "plane-one-writer" for d in report.errors)

    def test_second_plane_for_fu_refused(self, checker, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.connect(mem_read(0), fu_in(4, "a"))
        report = checker.check_connection(diagram, mem_read(1), fu_in(4, "b"))
        assert not report.ok
        assert "second memory plane" in report.first_error_message()

    def test_fanout_enforced_incrementally(self, checker, diagram):
        diagram.add_als(5, ALSKind.DOUBLET, first_fu=6)
        diagram.add_als(6, ALSKind.DOUBLET, first_fu=8)
        for sink in (fu_in(4, "a"), fu_in(4, "b"), fu_in(6, "a"), fu_in(6, "b")):
            diagram.connect(cache_read(0), sink)
        report = checker.check_connection(diagram, cache_read(0), fu_in(8, "a"))
        assert not report.ok

    def test_counter_increments(self, checker, diagram):
        before = checker.incremental_checks
        checker.check_connection(diagram, mem_read(0), fu_in(4, "a"))
        assert checker.incremental_checks == before + 1


class TestIncrementalOps:
    def test_capable_op_passes(self, checker, diagram):
        assert checker.check_fu_op(diagram, 4, Opcode.IADD).ok

    def test_incapable_op_rejected(self, checker, diagram):
        report = checker.check_fu_op(diagram, 4, Opcode.MAX)
        assert not report.ok

    def test_unplaced_als_rejected(self, checker, diagram):
        report = checker.check_fu_op(diagram, 20, Opcode.FADD)
        assert not report.ok
        assert "no ALS placed" in report.first_error_message()

    def test_legal_ops_menu(self, checker):
        ops = checker.legal_ops_for(4)  # integer-capable doublet slot
        assert Opcode.IADD in ops
        assert Opcode.MAX not in ops


class TestMenuFiltering:
    def test_legal_sources_exclude_occupied_planes(self, checker, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.connect(mem_read(0), fu_in(4, "a"))
        sources = checker.legal_sources_for(diagram, fu_in(4, "b"))
        # plane 0 is this unit's plane: allowed; other planes are not
        assert mem_read(0) in sources
        assert mem_read(1) not in sources
        assert cache_read(0) in sources

    def test_self_loop_not_offered(self, checker, diagram):
        sources = checker.legal_sources_for(diagram, fu_in(4, "a"))
        assert fu_out(4) not in sources


class TestProgramCheck:
    def test_jacobi_program_is_clean(self, checker):
        setup = build_jacobi_program(NodeConfig(), (5, 5, 5))
        report = checker.check_program(setup.program)
        assert report.ok, report.format()

    def test_plane_overflow_detected(self, checker):
        prog = VisualProgram()
        words = checker.kb.params.memory_plane_words
        prog.declare("a", plane=0, length=words)
        prog.declare("b", plane=0, length=1)
        report = checker.check_program(prog)
        assert any(d.rule == "declaration" for d in report.errors)

    def test_dma_window_outside_variable_detected(self, checker):
        prog = VisualProgram()
        prog.declare("u", plane=0, length=16)
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.FABS)
        d.vector_length = 32  # longer than the 16-word variable
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(fu_out(4), mem_write(1))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u"),
        )
        d.set_dma(
            mem_write(1),
            DMASpec(device_kind=DeviceKind.MEMORY, device=1,
                    direction=Direction.WRITE, variable="u2"),
        )
        prog.declare("u2", plane=1, length=16)
        prog.insert_pipeline(d)
        report = checker.check_program(prog)
        assert any(dg.rule == "dma-bounds" for dg in report.errors)

    def test_empty_program_warns(self, checker):
        report = checker.check_program(VisualProgram())
        assert report.ok  # warning only
        assert report.warnings
