"""The §6 trade-off study substrate: the same programs on the subset machine.

"One approach to reducing the complexity is to use a simpler architectural
model, perhaps a subset of the NSC.  The tradeoff here is between
performance and programmability."
"""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.arch.params import SUBSET_PARAMS
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def machines():
    full = NodeConfig()
    subset = NodeConfig(SUBSET_PARAMS)
    return full, subset


def _run_jacobi(node, shape, u0, eps=1e-4):
    setup = build_jacobi_program(node, shape, eps=eps)
    machine = NSCMachine(node)
    machine.load_program(MicrocodeGenerator(node).generate(setup.program))
    load_jacobi_inputs(machine, setup, u0, np.zeros(shape[::-1]))
    result = machine.run()
    return machine, result


class TestSubsetCorrectness:
    def test_jacobi_runs_identically_on_subset(self, machines, rng):
        """Same answers, different machine — programs are retargeted by
        rebuilding against the subset's knowledge base."""
        full, subset = machines
        shape = (6, 6, 6)
        u0 = rng.random(shape)
        u0[0] = u0[-1] = 0
        u0[:, 0] = u0[:, -1] = 0
        u0[:, :, 0] = u0[:, :, -1] = 0
        m_full, r_full = _run_jacobi(full, shape, u0)
        m_sub, r_sub = _run_jacobi(subset, shape, u0)
        np.testing.assert_array_equal(
            m_full.get_variable("u"), m_sub.get_variable("u")
        )
        assert r_full.loop_iterations == r_sub.loop_iterations


class TestSubsetTradeoff:
    def test_subset_is_slower_in_wall_clock(self, machines, rng):
        """Performance side of the trade-off: fewer units and planes mean
        less concurrency and a lower peak."""
        full, subset = machines
        assert (
            subset.params.peak_mflops_per_node
            < full.params.peak_mflops_per_node
        )

    def test_subset_word_is_smaller(self, machines):
        """Programmability side: the subset's microword is much smaller —
        fewer fields to get wrong."""
        full, subset = machines
        full_layout = MicrocodeGenerator(full).layout
        subset_layout = MicrocodeGenerator(subset).layout
        assert subset_layout.total_bits < 0.7 * full_layout.total_bits
        assert subset_layout.n_fields < full_layout.n_fields

    def test_subset_has_fewer_menu_entries(self, machines):
        """Fewer legal choices at every pad: easier to program."""
        from repro.checker.checker import Checker
        from repro.diagram.pipeline import PipelineDiagram
        from repro.arch.als import ALSKind
        from repro.arch.switch import fu_in

        full, subset = machines
        d_full = PipelineDiagram()
        d_full.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d_sub = PipelineDiagram()
        d_sub.add_als(0, ALSKind.DOUBLET, first_fu=0)
        n_full = len(Checker(full).legal_sources_for(d_full, fu_in(4, "a")))
        n_sub = len(Checker(subset).legal_sources_for(d_sub, fu_in(0, "a")))
        assert n_sub < n_full

    def test_wide_workload_does_not_fit_subset(self, machines):
        """Capacity limit: a 8-lane workload exceeds the subset's planes."""
        from repro.compose.builders import BuilderError
        from repro.compose.kernels import build_wide_program

        _full, subset = machines
        with pytest.raises(BuilderError):
            build_wide_program(subset, 64, lanes=8)
        build_wide_program(subset, 64, lanes=4)  # fits
