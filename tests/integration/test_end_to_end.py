"""End-to-end fidelity and the figure-regeneration pipeline."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.codegen.asmtext import disassemble_program, parse_assembly
from repro.codegen.generator import MicrocodeGenerator
from repro.codegen.microword import Microword
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.editor.render_ascii import render_execution, render_pipeline_diagram
from repro.sim.machine import NSCMachine
from repro.sim.pipeline_exec import execute_image


@pytest.fixture(scope="module")
def toolchain():
    node = NodeConfig()
    setup = build_jacobi_program(node, (6, 6, 6), eps=1e-4)
    program = MicrocodeGenerator(node).generate(setup.program)
    return node, setup, program


class TestMicrocodeFidelity:
    def test_every_image_word_round_trips_raw_bits(self, toolchain):
        node, _setup, program = toolchain
        for image in program.images:
            raw = image.microword.encode()
            assert Microword.decode(program.layout, raw) == image.microword

    def test_disassembly_covers_both_instructions(self, toolchain):
        _node, _setup, program = toolchain
        parsed = parse_assembly(disassemble_program(program))
        assert set(parsed) == {0, 1}

    def test_microword_agrees_with_image_semantics(self, toolchain):
        """The bit-level program and the executable image must describe the
        same pipeline (field-by-field spot checks)."""
        _node, setup, program = toolchain
        image = program.images[1]
        word = image.microword
        assert word.get("seq.vector_length") == image.vector_length
        for (unit, tap), shift in image.sd_shifts.items():
            assert word.get(f"sd{unit}.tap{tap}.enable") == 1
            assert word.get_signed(f"sd{unit}.tap{tap}.shift") == shift
        for fu in image.fu_order:
            assert word.get(f"fu{fu}.opcode") != 0


class TestExecutableDebugView:
    def test_debug_render_matches_simulated_values(self, toolchain, rng):
        node, setup, program = toolchain
        machine = NSCMachine(node)
        machine.load_program(program)
        u0 = rng.random((6, 6, 6))
        load_jacobi_inputs(machine, setup, u0, np.zeros((6, 6, 6)))
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        res = execute_image(program.images[1], machine, keep_outputs=True)
        text = render_execution(program.images[1], res)
        # the rendered residual value equals the captured condition value
        assert f"{res.condition_value:.6g}" in text


class TestDiagramTextStability:
    def test_pipeline_render_contains_all_semantics(self, toolchain):
        _node, setup, program = toolchain
        text = render_pipeline_diagram(setup.program.pipelines[1])
        d = setup.program.pipelines[1]
        # every wire appears in the legend
        for i in range(1, len(d.connections) + 1):
            assert f"w{i}:" in text
        # every DMA spec appears
        assert text.count("dma:") == len(d.dma)


class TestDeterminism:
    def test_two_full_runs_bit_identical(self, toolchain, rng):
        node, setup, program = toolchain
        u0 = rng.random((6, 6, 6))
        outs = []
        for _ in range(2):
            machine = NSCMachine(node)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, u0, np.zeros((6, 6, 6)))
            machine.run()
            outs.append(machine.get_variable("u"))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_generation_is_deterministic(self, toolchain):
        node, setup, _program = toolchain
        a = MicrocodeGenerator(node).generate(setup.program)
        b = MicrocodeGenerator(node).generate(setup.program)
        for ia, ib in zip(a.images, b.images):
            assert ia.microword == ib.microword
