"""Every shipped example must run cleanly (smoke, small sizes)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "saxpy result verified" in proc.stdout
        assert "checker: clean" in proc.stdout

    def test_jacobi3d(self):
        proc = _run("jacobi3d.py", "6")
        assert proc.returncode == 0, proc.stderr
        assert "converged: True" in proc.stdout
        assert "max |diff|: 0.000e+00" in proc.stdout

    def test_editor_tour(self):
        proc = _run("editor_tour.py")
        assert proc.returncode == 0, proc.stderr
        assert "Fig. 8" in proc.stdout
        assert "final check: clean" in proc.stdout
        assert "illegal wire: ok=False" in proc.stdout

    def test_multinode(self):
        proc = _run("multinode_jacobi.py", "1", "6")
        assert proc.returncode == 0, proc.stderr
        assert "converged: True" in proc.stdout
        assert "GFLOPS" in proc.stdout

    def test_solver_comparison(self):
        proc = _run("solver_comparison.py", "6")
        assert proc.returncode == 0, proc.stderr
        assert "rb-sor(1.5)" in proc.stdout
