"""Cross-module seams: behaviours at the joints between subsystems."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.kernels import build_heat1d_program
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


class TestCacheSwapUnderSequencerControl:
    def test_heat1d_masks_visible_only_after_swap(self, node, rng):
        """The heat program loads masks into the back buffers, swaps, then
        smooths; mask data must reach the compute phase through the swap."""
        setup = build_heat1d_program(node, 32, steps=2)
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        u = rng.random(32)
        u[0] = u[-1] = 0.0
        mask = np.zeros(32)
        mask[1:-1] = 1.0
        machine.set_variable("u", u)
        machine.set_variable("mask", mask)
        machine.set_variable("invmask", 1.0 - mask)
        machine.set_variable("u_new", np.zeros(32))
        machine.run()
        # exactly one swap per cache, driven by the CacheSwap control op
        assert machine.caches[0].swaps == 1
        assert machine.caches[1].swaps == 1
        # boundary preserved => the mask actually arrived
        final = machine.get_variable("u")
        assert final[0] == 0.0 and final[-1] == 0.0
        assert not np.array_equal(final, u)  # interior was smoothed


class TestVariableLayoutSeam:
    def test_generator_and_machine_agree_on_every_offset(self, node):
        """layout_variables is the single source of truth for symbolic DMA;
        machine loading must honour it for many variables across planes."""
        from repro.codegen.generator import layout_variables
        from repro.diagram.program import VisualProgram

        prog = VisualProgram()
        rng = np.random.default_rng(5)
        for i in range(12):
            prog.declare(f"v{i}", plane=int(rng.integers(0, 4)),
                         length=int(rng.integers(1, 50)))
        layout = layout_variables(prog.declarations)
        # no overlap within a plane
        by_plane = {}
        for name, (plane, offset) in layout.items():
            length = prog.declarations[name].length
            for other_off, other_len in by_plane.get(plane, []):
                assert offset + length <= other_off or \
                    other_off + other_len <= offset
            by_plane.setdefault(plane, []).append((offset, length))


class TestMessageStripDiscipline:
    def test_strip_reflects_latest_outcome(self, node):
        """§5: 'Informational and error messages are displayed in the
        narrow strip across the top' — every operation updates it."""
        from repro.arch.switch import fu_in, mem_read
        from repro.editor.session import EditorSession

        s = EditorSession(node=node)
        s.select_icon("doublet")
        assert "selected doublet" in s.message
        icon = s.drag_to(40, 2)
        assert "placed" in s.message
        s.connect(mem_read(0), fu_in(icon.first_fu, "a"))
        assert "connected" in s.message
        s.connect(mem_read(1), fu_in(icon.first_fu, "a"))
        assert "ERROR" in s.message
        s.undo()
        assert "undid" in s.message


class TestInterruptSeam:
    def test_sequencer_delivers_completions_in_order(self, node, rng):
        from repro.arch.interrupts import InterruptKind
        from repro.compose.kernels import build_chunked_scale_program

        setup = build_chunked_scale_program(node, 128, chunk=32)
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        machine.set_variable("x", rng.random(128))
        machine.run()
        completions = [
            irq for irq in machine.interrupts.delivered
            if irq.kind is InterruptKind.PIPELINE_COMPLETE
        ]
        assert len(completions) == 8  # 4 loads + 4 computes
        cycles = [irq.cycle for irq in completions]
        assert cycles == sorted(cycles)
