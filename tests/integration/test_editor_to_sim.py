"""The full toolchain, driven exactly as a user would drive it:
EditorSession interactions -> checker -> microcode generator -> simulator.

This is the Fig. 3 dataflow (user <-> editor <-> checker -> generator ->
executable program) exercised end to end.
"""

import numpy as np
import pytest

from repro.arch.funcunit import Opcode
from repro.arch.switch import fu_in, fu_out, mem_read, mem_write
from repro.codegen.generator import MicrocodeGenerator
from repro.editor.session import EditorSession
from repro.sim.machine import NSCMachine


def _build_scale_add_session() -> EditorSession:
    """Draw `out = 2*x + 1` exactly as the §5 walk-through: declare, place,
    wire, fill the DMA pop-ups, program the units, set the vector length."""
    s = EditorSession()
    s.declare_variable("x", 0, 48, "user")
    s.declare_variable("out", 1, 48)

    # Fig. 6/7: select and position icons
    s.select_icon("triplet")
    icon = s.drag_to(40, 2)
    fu_scale = icon.first_fu      # integer-capable slot: fine for fscale
    fu_add = icon.first_fu + 2    # min/max slot: fine for faddc (fp)

    # Fig. 8: connections
    assert s.connect(mem_read(0), fu_in(fu_scale, "a")).ok
    from repro.diagram.pipeline import InputMod, InputModKind

    assert s.set_input_mod(
        fu_add, "a", InputMod(InputModKind.INTERNAL, src_slot=0)
    ).ok
    assert s.connect(fu_out(fu_add), mem_write(1)).ok

    # Fig. 9: DMA pop-ups
    sub = s.dma_popup(mem_read(0))
    s.fill_dma_field(sub, "variable", "x")
    assert s.commit_dma(sub).ok
    sub = s.dma_popup(mem_write(1))
    s.fill_dma_field(sub, "variable", "out")
    assert s.commit_dma(sub).ok

    # Fig. 10: function-unit menus
    assert s.assign_op(fu_scale, Opcode.FSCALE, constant=2.0).ok
    assert s.assign_op(fu_add, Opcode.FADDC, constant=1.0).ok
    s.diagram.vector_length = 48
    return s


class TestFullToolchain:
    def test_drawn_program_runs_correctly(self, rng):
        s = _build_scale_add_session()
        report = s.check_all()
        assert report.ok, report.format()
        program = MicrocodeGenerator(s.node).generate(s.program)
        machine = NSCMachine(s.node)
        machine.load_program(program)
        x = rng.random(48)
        machine.set_variable("x", x)
        machine.run()
        np.testing.assert_allclose(machine.get_variable("out"), 2.0 * x + 1.0)

    def test_saved_session_still_runs(self, rng, tmp_path):
        s = _build_scale_add_session()
        path = str(tmp_path / "drawn.json")
        s.save(path)
        loaded = EditorSession.load(path)
        assert loaded.check_all().ok
        program = MicrocodeGenerator(loaded.node).generate(loaded.program)
        machine = NSCMachine(loaded.node)
        machine.load_program(program)
        x = rng.random(48)
        machine.set_variable("x", x)
        machine.run()
        np.testing.assert_allclose(machine.get_variable("out"), 2.0 * x + 1.0)

    def test_checker_blocks_codegen_of_broken_drawing(self):
        s = _build_scale_add_session()
        # sabotage: remove the operation from the scale unit
        fu_scale = next(iter(s.diagram.fu_ops))
        s.diagram.clear_fu_op(fu_scale)
        report = s.check_all()
        assert not report.ok
        from repro.codegen.generator import CodegenError

        with pytest.raises(CodegenError):
            MicrocodeGenerator(s.node).generate(s.program)

    def test_editor_actions_are_bounded(self):
        """The C2 effort claim depends on editor actions being far fewer
        than microword tokens; pin the action count here."""
        s = _build_scale_add_session()
        assert s.action_count < 30
        from repro.codegen.asmtext import assembly_token_count

        program = MicrocodeGenerator(s.node).generate(s.program)
        tokens = assembly_token_count(program)
        assert tokens > 3 * s.action_count
