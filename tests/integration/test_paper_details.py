"""Small architectural details the paper states explicitly."""

import numpy as np
import pytest

from repro.arch.als import ALSKind
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import fu_in, fu_out, mem_read, mem_write
from repro.arch.dma import DMASpec, Direction
from repro.arch.switch import DeviceKind
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.diagram.pipeline import PipelineDiagram
from repro.diagram.program import ExecPipeline, Halt, VisualProgram
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


class TestScalarsAreVectorsOfLengthOne:
    """§2: 'Scalars are treated as vectors of length one.'"""

    def test_length_one_pipeline_runs(self, node):
        prog = VisualProgram(name="scalar")
        prog.declare("x", plane=0, length=1)
        prog.declare("out", plane=1, length=1)
        d = PipelineDiagram(label="scalar negate")
        d.add_als(12, ALSKind.TRIPLET, first_fu=20)
        d.set_fu_op(20, Opcode.FNEG)       # slot 0 routes into slot 2 port a
        d.set_fu_op(22, Opcode.PASS)
        d.connect(mem_read(0), fu_in(20, "a"))
        from repro.diagram.pipeline import InputMod, InputModKind

        d.set_input_mod(22, "a", InputMod(InputModKind.INTERNAL, src_slot=0))
        d.connect(fu_out(22), mem_write(1))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="x"),
        )
        d.set_dma(
            mem_write(1),
            DMASpec(device_kind=DeviceKind.MEMORY, device=1,
                    direction=Direction.WRITE, variable="out"),
        )
        d.vector_length = 1
        prog.insert_pipeline(d)
        prog.add_control(ExecPipeline(0))
        prog.add_control(Halt())

        assert Checker(node).check_program(prog).ok
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(prog))
        machine.set_variable("x", np.array([7.5]))
        result = machine.run()
        assert machine.get_variable("out")[0] == -7.5
        # a scalar still pays the full pipeline fill
        assert result.total_cycles > node.params.instruction_reconfig_cycles

    def test_pass_input_b_unused_warning_only(self, node):
        # PASS is unary; wiring b anyway is a warning, not an error
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.PASS)
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(mem_read(0), fu_in(4, "b"))
        report = Checker(node).check_pipeline(d)
        assert any(w.rule == "inputs-fed" for w in report.warnings)


class TestBypassedDoubletExecution:
    """Fig. 4's second doublet form, all the way through execution."""

    def test_bypassed_doublet_runs(self, node):
        prog = VisualProgram(name="bypass")
        n = 16
        prog.declare("x", plane=0, length=n)
        prog.declare("out", plane=1, length=n)
        d = PipelineDiagram(label="bypassed doublet")
        d.add_als(4, ALSKind.DOUBLET, first_fu=4, bypassed_slots=(1,))
        d.set_fu_op(4, Opcode.FABS)
        d.connect(mem_read(0), fu_in(4, "a"))
        # a second (plain) doublet stages the output plane
        d.add_als(5, ALSKind.DOUBLET, first_fu=6, bypassed_slots=(1,))
        d.set_fu_op(6, Opcode.PASS)
        d.connect(fu_out(4), fu_in(6, "a"))
        d.connect(fu_out(6), mem_write(1))
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="x"),
        )
        d.set_dma(
            mem_write(1),
            DMASpec(device_kind=DeviceKind.MEMORY, device=1,
                    direction=Direction.WRITE, variable="out"),
        )
        d.vector_length = n
        prog.insert_pipeline(d)
        prog.add_control(ExecPipeline(0))
        prog.add_control(Halt())

        report = Checker(node).check_program(prog)
        assert report.ok, report.format()
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(prog))
        x = np.linspace(-3, 3, n)
        machine.set_variable("x", x)
        machine.run()
        np.testing.assert_allclose(machine.get_variable("out"), np.abs(x))

    def test_bypassed_slot_cannot_be_used(self, node):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4, bypassed_slots=(1,))
        report = Checker(node).check_fu_op(d, 5, Opcode.MAX)
        assert not report.ok
        assert "bypassed" in report.first_error_message()
