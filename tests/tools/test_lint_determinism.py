"""The determinism lint, riding the tier-1 suite.

`tools/lint_determinism.py` is also run standalone by the CI lint job;
this test keeps the repo's record-producing modules clean in every local
`pytest` run and unit-tests the lint's own detection rules.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_determinism  # noqa: E402


def _lint(tmp_path, source):
    target = tmp_path / "snippet.py"
    target.write_text(source)
    return lint_determinism.lint_file(target)


class TestRepoScope:
    def test_record_producing_modules_are_clean(self):
        findings = []
        for target in lint_determinism._iter_targets(
            [str(REPO_ROOT / rel) for rel in lint_determinism.DEFAULT_SCOPE]
        ):
            findings.extend(lint_determinism.lint_file(target))
        assert findings == [], "\n".join(findings)

    def test_main_exit_codes(self, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("import time\nx = time.perf_counter()\n")
        assert lint_determinism.main([str(clean)]) == 0
        dirty = tmp_path / "bad.py"
        dirty.write_text("import time\nx = time.time()\n")
        assert lint_determinism.main([str(dirty)]) == 1


class TestViolations:
    @pytest.mark.parametrize(
        "source, needle",
        [
            ("import time\nt = time.time()\n", "time.time"),
            ("import time as clock\nt = clock.time_ns()\n", "time.time_ns"),
            ("from time import time\nt = time()\n", "call time()"),
            ("from datetime import datetime\nd = datetime.now()\n",
             "datetime.now"),
            ("import datetime\nd = datetime.datetime.utcnow()\n",
             "datetime.utcnow"),
            ("from datetime import date\nd = date.today()\n", "date.today"),
            ("import random\nx = random.random()\n", "random.random"),
            ("import random\nrandom.seed()\nx = random.randint(0, 9)\n",
             "random.randint"),
            ("import numpy as np\nx = np.random.rand(3)\n",
             "np.random.rand"),
            ("from numpy.random import default_rng\nr = default_rng()\n",
             "default_rng()"),
        ],
    )
    def test_flagged(self, tmp_path, source, needle):
        findings = _lint(tmp_path, source)
        assert findings, f"expected a finding for {needle}"
        assert any(needle in f for f in findings), findings


class TestAllowed:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.perf_counter()\n",
            "import time\nt = time.monotonic()\ntime.sleep(0)\n",
            "import random\nr = random.Random(42)\nx = r.random()\n",
            "from numpy.random import default_rng\nr = default_rng(7)\n",
            "import numpy as np\nr = np.random.default_rng(123)\n",
        ],
    )
    def test_clean(self, tmp_path, source):
        assert _lint(tmp_path, source) == []

    def test_pragma_suppresses(self, tmp_path):
        source = (
            "import time\n"
            "t = time.time()  # lint: allow-nondeterminism\n"
        )
        assert _lint(tmp_path, source) == []


class TestTypeAnnotations:
    def test_mypy_config_targets_strict_packages(self):
        # the CI typecheck job installs mypy; locally we at least pin
        # the config so a drive-by edit can't silently drop the gate
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert '[tool.mypy]' in text
        assert 'src/repro/analysis' in text
        assert 'disallow_untyped_defs = true' in text

    def test_mypy_clean_when_available(self):
        mypy_api = pytest.importorskip("mypy.api")
        stdout, stderr, status = mypy_api.run(
            ["--config-file", str(REPO_ROOT / "pyproject.toml")]
        )
        assert status == 0, stdout + stderr
