"""The documentation link contract, riding the tier-1 suite.

`tools/check_docs.py` is also run standalone by the CI docs job; this
test keeps the same contract enforced in every local `pytest` run and
unit-tests the checker's own parsing rules.
"""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


class TestRepoDocs:
    def test_expected_documents_exist(self):
        names = {p.name for p in check_docs.doc_files()}
        assert {"README.md", "ARCHITECTURE.md", "SERVICE.md",
                "BACKENDS.md"} <= names

    def test_every_link_resolves(self):
        problems = check_docs.check_all()
        formatted = [
            f"{path.relative_to(check_docs.REPO_ROOT)}:{line}: "
            f"{reason}: {target}"
            for path, line, target, reason in problems
        ]
        assert not problems, "\n".join(formatted)


class TestCheckerRules:
    def _check(self, tmp_path, text, name="doc.md"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(text), encoding="utf-8")
        return check_docs.check_file(path, {})

    def test_missing_file_reported(self, tmp_path):
        problems = self._check(tmp_path, "[dead](no-such-file.md)")
        assert [p[3] for p in problems] == ["missing file"]

    def test_existing_relative_path_ok(self, tmp_path):
        (tmp_path / "other.md").write_text("# Other\n", encoding="utf-8")
        assert self._check(tmp_path, "[ok](other.md)") == []

    def test_anchor_within_file(self, tmp_path):
        text = """\
        # A Title

        [good](#a-title) [bad](#nope)
        """
        problems = self._check(tmp_path, text)
        assert [(p[2], p[3]) for p in problems] == [
            ("#nope", "missing anchor")
        ]

    def test_anchor_in_other_file(self, tmp_path):
        (tmp_path / "other.md").write_text(
            "# The `run_checker` trusted path\n", encoding="utf-8"
        )
        assert self._check(
            tmp_path, "[x](other.md#the-run_checker-trusted-path)"
        ) == []
        problems = self._check(tmp_path, "[x](other.md#gone)")
        assert [p[3] for p in problems] == ["missing anchor"]

    def test_code_fences_ignored(self, tmp_path):
        text = """\
        ```bash
        cat [not-a-link](missing.json)
        ```
        """
        assert self._check(tmp_path, text) == []

    def test_external_urls_skipped(self, tmp_path):
        assert self._check(
            tmp_path, "[x](https://example.com/no-such-page)"
        ) == []

    def test_slug_rules(self):
        assert check_docs.github_slug("Recipe: run a batch of jobs") == \
            "recipe-run-a-batch-of-jobs"
        assert check_docs.github_slug("The `run_checker` trusted path") == \
            "the-run_checker-trusted-path"
        assert check_docs.github_slug("Backends & benchmarking") == \
            "backends--benchmarking"
