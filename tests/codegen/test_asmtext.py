"""Textual micro-assembler: faithfulness and the effort-proxy counts."""

import pytest

from repro.arch.node import NodeConfig
from repro.codegen.asmtext import (
    assembly_token_count,
    disassemble_program,
    disassemble_word,
    parse_assembly,
)
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program
from repro.compose.kernels import build_saxpy_program


@pytest.fixture(scope="module")
def jacobi_machine_program():
    node = NodeConfig()
    setup = build_jacobi_program(node, (5, 5, 5))
    return MicrocodeGenerator(node).generate(setup.program)


class TestDisassembly:
    def test_every_nonzero_field_listed(self, jacobi_machine_program):
        image = jacobi_machine_program.images[1]
        lines = disassemble_word(image.microword, image.number)
        set_lines = [ln for ln in lines if ln.strip().startswith("set ")]
        assert len(set_lines) == len(image.microword.nonzero_fields())

    def test_program_text_mentions_every_instruction(self, jacobi_machine_program):
        text = disassemble_program(jacobi_machine_program)
        assert ".instruction 0" in text
        assert ".instruction 1" in text
        assert ".var u plane 0" in text

    def test_opcode_rendered_mnemonically(self, jacobi_machine_program):
        text = disassemble_program(jacobi_machine_program)
        assert "maxabs" in text
        assert "fscale" in text

    def test_negative_shift_rendered_signed(self, jacobi_machine_program):
        text = disassemble_program(jacobi_machine_program)
        assert "set sd0.tap2.shift -1" in text

    def test_threshold_rendered_as_float(self, jacobi_machine_program):
        text = disassemble_program(jacobi_machine_program)
        assert "seq.cond.threshold 1e-06" in text


class TestParser:
    def test_round_trip_field_count(self, jacobi_machine_program):
        text = disassemble_program(jacobi_machine_program)
        parsed = parse_assembly(text)
        for image in jacobi_machine_program.images:
            assert len(parsed[image.number]) == len(
                image.microword.nonzero_fields()
            )

    def test_stray_assignment_rejected(self):
        with pytest.raises(ValueError, match="outside instruction"):
            parse_assembly("set fu0.opcode fadd")

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_assembly(".instruction 0\nfrobnicate\n.end")


class TestEffortProxy:
    def test_token_count_positive_and_meaningful(self, jacobi_machine_program):
        tokens = assembly_token_count(jacobi_machine_program)
        # 2 instructions with dozens of fields each: hundreds of tokens
        assert tokens > 200

    def test_bigger_program_needs_more_tokens(self):
        node = NodeConfig()
        small = MicrocodeGenerator(node).generate(
            build_saxpy_program(node, 32).program
        )
        big = MicrocodeGenerator(node).generate(
            build_jacobi_program(node, (5, 5, 5)).program
        )
        assert assembly_token_count(big) > assembly_token_count(small)
