"""Timing analysis and automatic delay balancing."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import cache_read, fu_in, fu_out, mem_read, mem_write, sd_in, sd_tap
from repro.checker.knowledge import MachineKnowledge
from repro.codegen.timing import (
    TimingError,
    balance_pipeline,
    pipeline_cycles,
    validate_delays_fit,
)
from repro.diagram.pipeline import InputMod, InputModKind, PipelineDiagram


@pytest.fixture(scope="module")
def kb() -> MachineKnowledge:
    return MachineKnowledge(NodeConfig())


def _two_stage() -> PipelineDiagram:
    """mem0 -> fu4(fabs) -> fu5(fadd) <- mem0 again via fu5.b... no: cache."""
    d = PipelineDiagram()
    d.add_als(4, ALSKind.DOUBLET, first_fu=4)
    d.set_fu_op(4, Opcode.FABS)
    d.set_fu_op(5, Opcode.FADD)
    d.connect(mem_read(0), fu_in(4, "a"))
    d.connect(fu_out(4), fu_in(5, "a"))
    d.connect(cache_read(0), fu_in(5, "b"))
    d.connect(fu_out(5), mem_write(1))
    return d


class TestBalancing:
    def test_skewed_join_gets_auto_delay(self, kb):
        d = _two_stage()
        plan = balance_pipeline(d, kb)
        # the cache path is faster than mem->fu4->switch; b must be delayed
        assert plan.auto_delay.get((5, "b"), 0) > 0
        assert plan.is_aligned

    def test_no_balance_leaves_skew(self, kb):
        d = _two_stage()
        plan = balance_pipeline(d, kb, auto_balance=False)
        assert not plan.is_aligned
        assert plan.max_skew > 0

    def test_user_delay_reduces_auto_delay(self, kb):
        d = _two_stage()
        base = balance_pipeline(d, kb).auto_delay[(5, "b")]
        d.set_delay(5, "b", 2)
        plan = balance_pipeline(d, kb)
        assert plan.auto_delay.get((5, "b"), 0) == base - 2

    def test_symmetric_paths_need_no_delay(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.FADD)
        d.connect(mem_read(0), fu_in(4, "a"))
        d.connect(mem_read(0), fu_in(4, "b"))
        plan = balance_pipeline(d, kb)
        assert plan.auto_delay == {}

    def test_constant_inputs_unconstrained(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.FADD)
        d.connect(mem_read(0), fu_in(4, "a"))
        d.set_input_mod(4, "b", InputMod(InputModKind.CONSTANT, value=1.0))
        plan = balance_pipeline(d, kb)
        assert plan.auto_delay == {}
        assert plan.is_aligned

    def test_internal_route_skips_switch_hop(self, kb):
        d1 = PipelineDiagram()
        d1.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d1.set_fu_op(4, Opcode.FABS)
        d1.set_fu_op(5, Opcode.FABS)
        d1.connect(mem_read(0), fu_in(4, "a"))
        d1.connect(fu_out(4), fu_in(5, "a"))
        plan_switch = balance_pipeline(d1, kb)

        d2 = PipelineDiagram()
        d2.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d2.set_fu_op(4, Opcode.FABS)
        d2.set_fu_op(5, Opcode.FABS)
        d2.connect(mem_read(0), fu_in(4, "a"))
        d2.set_input_mod(5, "a", InputMod(InputModKind.INTERNAL, src_slot=0))
        plan_internal = balance_pipeline(d2, kb)
        assert plan_internal.fu_start[5] < plan_switch.fu_start[5]

    def test_sd_adds_latency(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.FADD)
        d.set_sd_tap(0, 0, 0)
        d.connect(mem_read(0), sd_in(0))
        d.connect(sd_tap(0, 0), fu_in(4, "a"))
        d.connect(mem_read(0), fu_in(4, "b"))
        plan = balance_pipeline(d, kb)
        # direct path arrives earlier, so b gets a delay
        assert plan.auto_delay.get((4, "b"), 0) > 0

    def test_unfed_sd_is_an_error(self, kb):
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.FABS)
        d.set_sd_tap(0, 0, 0)
        d.connect(sd_tap(0, 0), fu_in(4, "a"))
        with pytest.raises(TimingError, match="no input stream"):
            balance_pipeline(d, kb)

    def test_division_lengthens_path(self, kb):
        def plan_for(op):
            d = PipelineDiagram()
            d.add_als(4, ALSKind.DOUBLET, first_fu=4)
            d.set_fu_op(4, op)
            d.connect(mem_read(0), fu_in(4, "a"))
            d.connect(mem_read(0), fu_in(4, "b"))
            d.connect(fu_out(4), mem_write(1))
            return balance_pipeline(d, kb)

        assert plan_for(Opcode.FDIV).fill_cycles > plan_for(Opcode.FADD).fill_cycles


class TestCapacityAndCycles:
    def test_delays_fit_by_default(self, kb):
        d = _two_stage()
        plan = balance_pipeline(d, kb)
        assert validate_delays_fit(d, plan, kb) == []

    def test_excessive_explicit_delay_reported(self, kb):
        d = _two_stage()
        d.delays[(5, "b")] = kb.regfile_words + 10
        plan = balance_pipeline(d, kb)
        problems = validate_delays_fit(d, plan, kb)
        assert problems and "too skewed" in problems[0]

    def test_pipeline_cycles_scale_with_vector(self, kb):
        d = _two_stage()
        plan = balance_pipeline(d, kb)
        short = pipeline_cycles(plan, 10, kb)
        long = pipeline_cycles(plan, 1000, kb)
        assert long - short == 990

    def test_fill_dominates_tiny_vectors(self, kb):
        """Vectors of length one (scalars, per §2) still pay full fill."""
        d = _two_stage()
        plan = balance_pipeline(d, kb)
        cycles = pipeline_cycles(plan, 1, kb)
        assert cycles > plan.fill_cycles
