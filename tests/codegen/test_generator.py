"""MicrocodeGenerator: checks, vector lengths, switch settings, microwords."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.dma import DMASpec, Direction
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import DeviceKind, mem_read, mem_write
from repro.codegen.generator import (
    CodegenError,
    MicrocodeGenerator,
    OP_INDEX,
    layout_variables,
)
from repro.compose.jacobi import build_jacobi_program
from repro.compose.kernels import build_saxpy_program
from repro.diagram.pipeline import PipelineDiagram
from repro.diagram.program import Declaration, VisualProgram


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


@pytest.fixture(scope="module")
def generator(node) -> MicrocodeGenerator:
    return MicrocodeGenerator(node)


class TestVariableLayout:
    def test_packing_per_plane(self):
        decls = {
            "a": Declaration("a", plane=0, length=10),
            "b": Declaration("b", plane=0, length=20),
            "c": Declaration("c", plane=1, length=5),
        }
        layout = layout_variables(decls)
        assert layout == {"a": (0, 0), "b": (0, 10), "c": (1, 0)}

    def test_deterministic_order(self):
        decls = {
            "x": Declaration("x", plane=2, length=7),
            "y": Declaration("y", plane=2, length=3),
        }
        assert layout_variables(decls)["y"] == (2, 7)


class TestGeneration:
    def test_saxpy_generates(self, node, generator):
        setup = build_saxpy_program(node, 128)
        prog = generator.generate(setup.program)
        assert len(prog.images) == 1
        image = prog.images[0]
        assert image.vector_length == 128
        assert image.flops_per_element == 2

    def test_jacobi_generates_two_images(self, node, generator):
        setup = build_jacobi_program(node, (5, 5, 5))
        prog = generator.generate(setup.program)
        assert len(prog.images) == 2
        assert prog.total_microcode_bits == 2 * prog.layout.total_bits

    def test_invalid_program_refused_with_report(self, node, generator):
        prog = VisualProgram()
        d = PipelineDiagram()
        d.add_als(4, ALSKind.DOUBLET, first_fu=4)
        d.set_fu_op(4, Opcode.MAX)  # wrong capability
        prog.insert_pipeline(d)
        with pytest.raises(CodegenError) as exc_info:
            generator.generate(prog)
        assert exc_info.value.report is not None
        assert not exc_info.value.report.ok

    def test_checker_can_be_bypassed(self, node):
        gen = MicrocodeGenerator(node, run_checker=False)
        prog = VisualProgram()
        d = PipelineDiagram(label="empty")
        d.vector_length = 4
        prog.insert_pipeline(d)
        machine_prog = gen.generate(prog)  # no checking: empty pipeline ok
        assert machine_prog.images[0].fu_order == []


class TestVectorLength:
    def test_explicit_wins(self, generator):
        d = PipelineDiagram()
        d.vector_length = 77
        assert generator.resolve_vector_length(d, {}) == 77

    def test_dma_count_used(self, generator):
        d = PipelineDiagram()
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u", count=55),
        )
        assert generator.resolve_vector_length(d, {}) == 55

    def test_variable_length_implied(self, generator):
        d = PipelineDiagram()
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u"),
        )
        decls = {"u": Declaration("u", plane=0, length=40)}
        assert generator.resolve_vector_length(d, decls) == 40

    def test_strided_variable_length(self, generator):
        d = PipelineDiagram()
        d.set_dma(
            mem_read(0),
            DMASpec(device_kind=DeviceKind.MEMORY, device=0,
                    direction=Direction.READ, variable="u", stride=3),
        )
        decls = {"u": Declaration("u", plane=0, length=40)}
        assert generator.resolve_vector_length(d, decls) == 14

    def test_unresolvable_is_an_error(self, generator):
        with pytest.raises(CodegenError, match="vector length"):
            generator.resolve_vector_length(PipelineDiagram(), {})


class TestMicrowordContents:
    @pytest.fixture(scope="class")
    def saxpy_image(self, node):
        gen = MicrocodeGenerator(node)
        setup = build_saxpy_program(node, 64, alpha=3.0)
        return gen.generate(setup.program).images[0], gen

    def test_opcode_fields(self, saxpy_image):
        image, gen = saxpy_image
        word = image.microword
        ops = {
            fu: word.get(f"fu{fu}.opcode") for fu in image.fu_order
        }
        expected = {fu: OP_INDEX[op] for fu, (op, _c) in image.fu_ops.items()}
        assert ops == expected

    def test_vector_length_field(self, saxpy_image):
        image, _gen = saxpy_image
        assert image.microword.get("seq.vector_length") == 64

    def test_dma_fields(self, saxpy_image):
        image, _gen = saxpy_image
        word = image.microword
        assert word.get("mem0.dma.enable") == 1
        assert word.get("mem0.dma.dir") == 0  # read
        assert word.get("mem2.dma.dir") == 1  # the output write
        assert word.get("mem0.dma.count") == 64

    def test_source_selectors_resolve(self, saxpy_image):
        """Every switch-routed FU input's selector decodes to the endpoint
        the pipeline image says feeds it."""
        image, gen = saxpy_image
        word = image.microword
        table = gen.layout.source_table
        checked = 0
        for (fu, port), resolved in image.inputs.items():
            if resolved.kind in ("mem", "cache", "sd", "fu"):
                sel = word.get(f"fu{fu}.{port}.src")
                assert table.endpoint_of(sel) == resolved.endpoint
                checked += 1
            elif resolved.kind == "internal":
                assert word.get(f"fu{fu}.{port}.internal") == 1
        assert checked >= 2

    def test_encode_decode_fidelity(self, saxpy_image):
        from repro.codegen.microword import Microword

        image, gen = saxpy_image
        raw = image.microword.encode()
        assert Microword.decode(gen.layout, raw) == image.microword

    def test_condition_fields(self, node):
        gen = MicrocodeGenerator(node)
        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-7)
        image = gen.generate(setup.program).images[1]
        word = image.microword
        assert word.get("seq.cond.enable") == 1
        assert word.get_float("seq.cond.threshold") == 1e-7
        assert word.get("seq.cond.fu") == setup.residual_fu

    def test_delay_fields_emitted(self, node):
        gen = MicrocodeGenerator(node)
        setup = build_jacobi_program(node, (5, 5, 5))
        image = gen.generate(setup.program).images[1]
        word = image.microword
        delays = [
            word.get(f"fu{fu}.{port}.delay")
            for (fu, port) in image.inputs
        ]
        assert any(d > 0 for d in delays)  # balancing inserted queues

    def test_write_without_driver_is_an_error(self, node):
        gen = MicrocodeGenerator(node, run_checker=False)
        prog = VisualProgram()
        prog.declare("out", plane=1, length=8)
        d = PipelineDiagram()
        d.vector_length = 8
        d.set_dma(
            mem_write(1),
            DMASpec(device_kind=DeviceKind.MEMORY, device=1,
                    direction=Direction.WRITE, variable="out"),
        )
        prog.insert_pipeline(d)
        with pytest.raises(CodegenError, match="nothing drives"):
            gen.generate(prog)
