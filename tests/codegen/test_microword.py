"""Microword layout and encoding: the few-thousand-bit claim of §3."""

import pytest

from repro.arch.node import NodeConfig
from repro.arch.params import SUBSET_PARAMS
from repro.codegen.microword import (
    CMP_CODES,
    FieldError,
    Microword,
    MicrowordLayout,
    SourceTable,
    bits_to_float,
    float_to_bits,
)


@pytest.fixture(scope="module")
def layout() -> MicrowordLayout:
    node = NodeConfig()
    return MicrowordLayout(node.params, node.n_fus, sorted(node.switch.sources))


class TestLayout:
    def test_a_few_thousand_bits(self, layout):
        """§3: 'a few thousand bits of information per instruction'."""
        assert 2_000 <= layout.total_bits <= 8_000

    def test_dozens_of_field_groups(self, layout):
        """§3: 'encoded in dozens of separate fields'."""
        groups = layout.field_groups()
        assert len(groups) >= 36  # 32 FU groups + mem + cache + sd + seq

    def test_fields_are_disjoint_and_cover_word(self, layout):
        cursor = 0
        for field in layout.fields:
            assert field.offset == cursor
            cursor += field.width
        assert cursor == layout.total_bits

    def test_unknown_field_rejected(self, layout):
        with pytest.raises(FieldError):
            layout.field("fu99.opcode")

    def test_subset_machine_has_smaller_word(self, layout):
        node = NodeConfig(SUBSET_PARAMS)
        small = MicrowordLayout(node.params, node.n_fus, sorted(node.switch.sources))
        assert small.total_bits < layout.total_bits


class TestSourceTable:
    def test_zero_means_none(self, layout):
        assert layout.source_table.id_of(None) == 0
        assert layout.source_table.endpoint_of(0) is None

    def test_round_trip(self, layout):
        from repro.arch.switch import fu_out

        sel = layout.source_table.id_of(fu_out(5))
        assert layout.source_table.endpoint_of(sel) == fu_out(5)

    def test_unknown_endpoint_rejected(self, layout):
        from repro.arch.switch import fu_in

        with pytest.raises(FieldError):
            layout.source_table.id_of(fu_in(0, "a"))

    def test_unknown_selector_rejected(self, layout):
        with pytest.raises(FieldError):
            layout.source_table.endpoint_of(9999)

    def test_width_covers_all_sources(self, layout):
        table = layout.source_table
        assert (1 << table.width) > len(table)


class TestWordValues:
    def test_set_get(self, layout):
        word = layout.new_word()
        word.set("fu0.opcode", 5)
        assert word.get("fu0.opcode") == 5
        assert word.get("fu1.opcode") == 0  # unset defaults to zero

    def test_range_enforced(self, layout):
        word = layout.new_word()
        with pytest.raises(FieldError):
            word.set("fu0.opcode", 64)  # 6-bit field
        with pytest.raises(FieldError):
            word.set("fu0.opcode", -1)

    def test_signed_round_trip(self, layout):
        word = layout.new_word()
        word.set_signed("mem0.dma.stride", -36)
        assert word.get_signed("mem0.dma.stride") == -36

    def test_signed_range_enforced(self, layout):
        word = layout.new_word()
        with pytest.raises(FieldError):
            word.set_signed("mem0.dma.stride", 1 << 20)

    def test_float_round_trip(self, layout):
        word = layout.new_word()
        word.set_float("seq.cond.threshold", 1e-6)
        assert word.get_float("seq.cond.threshold") == 1e-6

    def test_float_bits_helpers(self):
        for v in (0.0, 1.5, -2.25, 1e-300):
            assert bits_to_float(float_to_bits(v)) == v


class TestEncoding:
    def test_encode_decode_round_trip(self, layout):
        word = layout.new_word()
        word.set("fu3.opcode", 7)
        word.set("fu3.a.delay", 12)
        word.set_signed("sd0.tap1.shift", -36)
        word.set("seq.vector_length", 4096)
        word.set_float("seq.cond.threshold", 1e-6)
        raw = word.encode()
        back = Microword.decode(layout, raw)
        assert back == word
        assert back.get_signed("sd0.tap1.shift") == -36
        assert back.get_float("seq.cond.threshold") == 1e-6

    def test_encoded_size(self, layout):
        raw = layout.new_word().encode()
        assert len(raw) == (layout.total_bits + 7) // 8

    def test_nonzero_fields(self, layout):
        word = layout.new_word()
        word.set("fu0.opcode", 1)
        word.set("fu1.opcode", 0)
        assert word.nonzero_fields() == [("fu0.opcode", 1)]

    def test_cmp_codes_complete(self):
        assert set(CMP_CODES) == {"lt", "le", "gt", "ge"}
