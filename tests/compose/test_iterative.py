"""Red-black Gauss-Seidel / SOR: structure, numerics, convergence shape."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import BuilderError
from repro.compose.iterative import (
    build_rbsor_program,
    color_masks,
    load_rbsor_inputs,
    rbsor_reference_run,
)
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


def _run(node, setup, u0, f):
    machine = NSCMachine(node)
    machine.load_program(MicrocodeGenerator(node).generate(setup.program))
    load_rbsor_inputs(machine, setup, u0, f)
    return machine, machine.run()


class TestColorMasks:
    def test_masks_partition_the_interior(self):
        shape = (5, 6, 7)
        red, black = color_masks(shape)
        from repro.compose.jacobi import interior_masks

        interior, _ = interior_masks(shape)
        np.testing.assert_allclose(red + black, interior)

    def test_no_same_color_neighbours(self):
        shape = (5, 5, 5)
        red, _ = color_masks(shape)
        r = red.reshape(5, 5, 5)
        interior = r[1:-1, 1:-1, 1:-1]
        for axis, shift in ((0, 1), (1, 1), (2, 1)):
            shifted = np.roll(r, shift, axis=axis)[1:-1, 1:-1, 1:-1]
            assert not np.any((interior == 1) & (shifted == 1))


class TestStructure:
    def test_three_pipelines(self, node):
        setup = build_rbsor_program(node, (5, 5, 5))
        labels = [p.label for p in setup.program.pipelines]
        assert labels == ["load colour caches", "red phase", "black phase"]

    def test_program_checks_clean(self, node):
        setup = build_rbsor_program(node, (5, 5, 5))
        report = Checker(node).check_program(setup.program)
        assert report.ok, report.format()

    def test_invalid_omega_rejected(self, node):
        with pytest.raises(BuilderError, match="omega"):
            build_rbsor_program(node, (5, 5, 5), omega=2.5)
        with pytest.raises(BuilderError, match="omega"):
            build_rbsor_program(node, (5, 5, 5), omega=0.0)

    def test_fixed_sweeps_mode(self, node, grid6):
        setup = build_rbsor_program(node, (6, 6, 6), fixed_sweeps=4)
        machine, result = _run(node, setup, grid6, np.zeros((6, 6, 6)))
        # 1 cache load + 4 sweeps x 2 phases
        assert result.instructions_issued == 9


class TestNumerics:
    def test_matches_reference_exactly(self, node, grid6):
        setup = build_rbsor_program(node, (6, 6, 6), omega=1.0, eps=1e-5)
        machine, result = _run(node, setup, grid6, np.zeros((6, 6, 6)))
        ref, sweeps, _ = rbsor_reference_run(
            grid6, np.zeros(216), (6, 6, 6), setup.h, omega=1.0, eps=1e-5
        )
        assert result.converged
        assert result.loop_iterations[setup.black_pipeline] == sweeps
        np.testing.assert_array_equal(machine.get_variable("u"), ref)

    def test_overrelaxed_matches_reference(self, node, grid6):
        setup = build_rbsor_program(node, (6, 6, 6), omega=1.5, eps=1e-5)
        machine, result = _run(node, setup, grid6, np.zeros((6, 6, 6)))
        ref, sweeps, _ = rbsor_reference_run(
            grid6, np.zeros(216), (6, 6, 6), setup.h, omega=1.5, eps=1e-5
        )
        assert result.loop_iterations[setup.black_pipeline] == sweeps
        np.testing.assert_array_equal(machine.get_variable("u"), ref)

    def test_boundaries_pinned(self, node, grid6):
        setup = build_rbsor_program(node, (6, 6, 6), fixed_sweeps=3)
        machine, _ = _run(node, setup, grid6, np.zeros((6, 6, 6)))
        u = machine.get_variable("u").reshape(6, 6, 6)
        np.testing.assert_allclose(u[0], 0.0)
        np.testing.assert_allclose(u[:, -1], 0.0)


class TestConvergenceShape:
    """The classic ordering: Jacobi slower than GS slower than SOR."""

    def _sweeps(self, node, u0, builder, **kw):
        shape = (6, 6, 6)
        f = np.zeros(shape)
        if builder == "jacobi":
            setup = build_jacobi_program(node, shape, eps=1e-5)
            machine = NSCMachine(node)
            machine.load_program(
                MicrocodeGenerator(node).generate(setup.program)
            )
            load_jacobi_inputs(machine, setup, u0, f)
            result = machine.run()
            return result.loop_iterations[setup.update_pipeline]
        setup = build_rbsor_program(node, shape, eps=1e-5, **kw)
        machine, result = _run(node, setup, u0, f)
        return result.loop_iterations[setup.black_pipeline]

    def test_gs_beats_jacobi_beats_nothing(self, node, grid6):
        jacobi = self._sweeps(node, grid6, "jacobi")
        gs = self._sweeps(node, grid6, "rbsor", omega=1.0)
        sor = self._sweeps(node, grid6, "rbsor", omega=1.5)
        assert sor < gs < jacobi
