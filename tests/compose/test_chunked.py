"""Chunked double-buffered streaming: the §2 cache overlap pattern."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import BuilderError
from repro.compose.kernels import (
    build_chunked_scale_program,
    build_saxpy_program,
)
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


def _run(node, setup, x):
    machine = NSCMachine(node)
    machine.load_program(MicrocodeGenerator(node).generate(setup.program))
    machine.set_variable("x", x)
    result = machine.run()
    return machine, result


class TestStructure:
    def test_pipeline_pair_per_chunk(self, node):
        setup = build_chunked_scale_program(node, 256, chunk=64)
        assert len(setup.program.pipelines) == 8  # 4 loads + 4 computes

    def test_checks_clean(self, node):
        setup = build_chunked_scale_program(node, 128, chunk=32)
        report = Checker(node).check_program(setup.program)
        assert report.ok, report.format()

    def test_bad_chunk_rejected(self, node):
        with pytest.raises(BuilderError, match="evenly divide"):
            build_chunked_scale_program(node, 100, chunk=33)
        with pytest.raises(BuilderError, match="cache buffer"):
            build_chunked_scale_program(node, 65536, chunk=65536)


class TestSemantics:
    def test_values_correct_across_chunks(self, node, rng):
        x = rng.random(256)
        setup = build_chunked_scale_program(node, 256, chunk=64, alpha=3.0)
        machine, result = _run(node, setup, x)
        np.testing.assert_allclose(machine.get_variable("out"), 3.0 * x)

    def test_every_chunk_swaps_the_cache(self, node, rng):
        setup = build_chunked_scale_program(node, 128, chunk=32)
        machine, result = _run(node, setup, rng.random(128))
        assert machine.caches[0].swaps == 4

    def test_single_chunk_degenerate(self, node, rng):
        x = rng.random(64)
        setup = build_chunked_scale_program(node, 64, chunk=64)
        machine, _ = _run(node, setup, x)
        np.testing.assert_allclose(machine.get_variable("out"), 2.0 * x)


class TestCostShape:
    def test_chunking_pays_reconfiguration_tax(self, node, rng):
        """Smaller chunks -> more instructions -> more reconfigurations."""
        x = rng.random(512)
        cycles = {}
        for chunk in (512, 64):
            setup = build_chunked_scale_program(node, 512, chunk=chunk)
            _m, result = _run(node, setup, x)
            cycles[chunk] = result.total_cycles
        assert cycles[64] > cycles[512]

    def test_instruction_count_scales_inversely_with_chunk(self, node, rng):
        x = rng.random(512)
        setup = build_chunked_scale_program(node, 512, chunk=64)
        _m, result = _run(node, setup, x)
        assert result.instructions_issued == 16  # 8 loads + 8 computes
