"""Kernel builders: structure and simulated semantics."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.arch.params import SUBSET_PARAMS
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import BuilderError
from repro.compose.kernels import (
    build_chain_program,
    build_saxpy_program,
    build_stream_max_program,
    build_wide_program,
)
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


def _run(node, setup, inputs):
    machine = NSCMachine(node)
    machine.load_program(MicrocodeGenerator(node).generate(setup.program))
    for name, values in inputs.items():
        machine.set_variable(name, values)
    result = machine.run()
    return machine, result


class TestSaxpy:
    def test_values(self, node, rng):
        setup = build_saxpy_program(node, 100, alpha=2.5)
        x, y = rng.random(100), rng.random(100)
        machine, _ = _run(node, setup, {"x": x, "y": y})
        np.testing.assert_allclose(machine.get_variable("out"), 2.5 * x + y)

    def test_checks_clean(self, node):
        setup = build_saxpy_program(node, 64)
        assert Checker(node).check_program(setup.program).ok

    def test_works_on_subset_machine(self, rng):
        subset = NodeConfig(SUBSET_PARAMS)
        setup = build_saxpy_program(subset, 64)
        x, y = rng.random(64), rng.random(64)
        machine, _ = _run(subset, setup, {"x": x, "y": y})
        np.testing.assert_allclose(machine.get_variable("out"), 2.0 * x + y)


class TestStreamMax:
    def test_running_max(self, node, rng):
        setup = build_stream_max_program(node, 64)
        x = rng.normal(size=64)
        machine, _ = _run(node, setup, {"x": x})
        np.testing.assert_allclose(
            machine.get_variable("out"), np.maximum.accumulate(x)
        )


class TestChain:
    def test_chain_depth_semantics(self, node, rng):
        setup = build_chain_program(node, 32, depth=5)
        x = rng.random(32)
        machine, _ = _run(node, setup, {"x": x})
        np.testing.assert_allclose(machine.get_variable("out"), x + 5.0)

    def test_depth_must_be_positive(self, node):
        with pytest.raises(BuilderError):
            build_chain_program(node, 32, depth=0)

    def test_deeper_chains_use_more_units(self, node):
        shallow = build_chain_program(node, 32, depth=2)
        deep = build_chain_program(node, 32, depth=8)
        assert len(deep.program.pipelines[0].fu_ops) > len(
            shallow.program.pipelines[0].fu_ops
        )

    def test_deeper_chains_take_longer_to_fill(self, node, rng):
        x = rng.random(16)
        cycles = {}
        for depth in (2, 12):
            setup = build_chain_program(node, 16, depth=depth)
            _m, result = _run(node, setup, {"x": x})
            cycles[depth] = result.total_cycles
        assert cycles[12] > cycles[2]


class TestWide:
    def test_lanes_independent(self, node, rng):
        setup = build_wide_program(node, 32, lanes=4)
        inputs = {f"x{i}": rng.random(32) for i in range(4)}
        machine, result = _run(node, setup, inputs)
        for i in range(4):
            np.testing.assert_allclose(
                machine.get_variable(f"y{i}"), (i + 1.0) * inputs[f"x{i}"]
            )

    def test_too_many_lanes_rejected(self, node):
        with pytest.raises(BuilderError, match="planes"):
            build_wide_program(node, 32, lanes=9)

    def test_wide_beats_chain_on_utilization(self, node, rng):
        """Parallel lanes keep more units busy than a dependent chain —
        the who-wins shape behind the §2 multiple-pipelines design."""
        n = 2048
        wide = build_wide_program(node, n, lanes=8)
        chain = build_chain_program(node, n, depth=8)
        x = rng.random(n)
        wide_inputs = {f"x{i}": x for i in range(8)}
        m1, r1 = _run(node, wide, wide_inputs)
        m2, r2 = _run(node, chain, {"x": x})
        u_wide = m1.metrics(r1).achieved_mflops
        u_chain = m2.metrics(r2).achieved_mflops
        assert u_wide > u_chain
