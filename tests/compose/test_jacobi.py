"""The paper's running example: program structure and numerics."""

import numpy as np
import pytest

from repro.apps.poisson3d import (
    jacobi_reference_run,
    manufactured_solution,
    poisson_residual,
)
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.params import NSCParameters
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import BuilderError
from repro.compose.jacobi import (
    build_jacobi_program,
    interior_masks,
    jacobi_grid_index,
    load_jacobi_inputs,
)
from repro.sim.machine import NSCMachine


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


class TestProgramStructure:
    def test_two_pipelines(self, node):
        setup = build_jacobi_program(node, (5, 5, 5))
        assert len(setup.program.pipelines) == 2
        assert setup.program.pipelines[0].label == "load mask caches"

    def test_program_checks_clean(self, node):
        setup = build_jacobi_program(node, (5, 5, 5))
        report = Checker(node).check_program(setup.program)
        assert report.ok, report.format()

    def test_seven_neighbour_taps(self, node):
        setup = build_jacobi_program(node, (4, 5, 6))
        taps = setup.program.pipelines[1].sd_taps
        shifts = sorted(taps.values())
        assert shifts == sorted([0, 1, -1, 4, -4, 20, -20])

    def test_residual_unit_is_minmax_with_feedback(self, node):
        from repro.diagram.pipeline import InputModKind

        setup = build_jacobi_program(node, (5, 5, 5))
        d = setup.program.pipelines[1]
        assert d.fu_ops[setup.residual_fu].opcode is Opcode.MAXABS
        fb = [
            mod
            for (fu, _p), mod in d.input_mods.items()
            if fu == setup.residual_fu and mod.kind is InputModKind.FEEDBACK
        ]
        assert len(fb) == 1

    def test_condition_on_residual(self, node):
        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-8)
        cond = setup.program.pipelines[1].condition
        assert cond.fu == setup.residual_fu
        assert cond.threshold == 1e-8

    def test_grid_too_small_rejected(self, node):
        with pytest.raises(BuilderError):
            build_jacobi_program(node, (2, 5, 5))

    def test_grid_exceeding_cache_rejected(self, node):
        with pytest.raises(BuilderError, match="cache buffer"):
            build_jacobi_program(node, (30, 30, 30))

    def test_bigger_cache_param_allows_bigger_grid(self):
        params = NSCParameters(cache_buffer_words=64 * 1024)
        big_node = NodeConfig(params)
        setup = build_jacobi_program(big_node, (30, 30, 30))
        assert setup.n_points == 27_000

    def test_grid_index_convention(self):
        assert jacobi_grid_index(1, 0, 0, (4, 4, 4)) == 1
        assert jacobi_grid_index(0, 1, 0, (4, 4, 4)) == 4
        assert jacobi_grid_index(0, 0, 1, (4, 4, 4)) == 16
        with pytest.raises(IndexError):
            jacobi_grid_index(4, 0, 0, (4, 4, 4))

    def test_interior_masks_complementary(self):
        mask, invmask = interior_masks((4, 5, 6))
        np.testing.assert_allclose(mask + invmask, 1.0)
        assert mask.sum() == (4 - 2) * (5 - 2) * (6 - 2)


class TestNumerics:
    def test_simulated_run_matches_reference_exactly(self, node, grid6):
        """The headline fidelity claim: simulator == NumPy reference."""
        setup = build_jacobi_program(node, (6, 6, 6), eps=1e-5)
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        f = np.zeros((6, 6, 6))
        load_jacobi_inputs(machine, setup, grid6, f)
        result = machine.run()
        ref, iters, _ = jacobi_reference_run(
            grid6, f, (6, 6, 6), setup.h, eps=1e-5
        )
        assert result.converged
        assert result.loop_iterations[1] == iters
        np.testing.assert_array_equal(machine.get_variable("u"), ref)

    def test_solves_manufactured_poisson_problem(self, node):
        """Physics: the iterate approaches the analytic solution."""
        shape = (9, 9, 9)
        u_star, f, h = manufactured_solution(shape)
        setup = build_jacobi_program(node, shape, h=h, eps=1e-10,
                                     max_iterations=4000)
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        load_jacobi_inputs(machine, setup, np.zeros(shape), f)
        result = machine.run()
        assert result.converged
        u = machine.get_variable("u").reshape(9, 9, 9)
        err = np.max(np.abs(u - u_star))
        # second-order discretization error on a coarse grid
        assert err < 0.05
        assert poisson_residual(u, f, shape, h) < 1.0

    def test_nonuniform_shape(self, node):
        shape = (4, 6, 8)
        rng = np.random.default_rng(1)
        u0 = rng.random(shape[::-1])
        mask3 = np.zeros(shape[::-1])
        mask3[1:-1, 1:-1, 1:-1] = 1
        u0 *= mask3
        f = np.zeros(shape[::-1])
        setup = build_jacobi_program(node, shape, eps=1e-4)
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        load_jacobi_inputs(machine, setup, u0, f)
        result = machine.run()
        ref, iters, _ = jacobi_reference_run(u0, f, shape, setup.h, eps=1e-4)
        assert result.loop_iterations[1] == iters
        np.testing.assert_array_equal(machine.get_variable("u"), ref)

    def test_load_inputs_validates_shape(self, node):
        setup = build_jacobi_program(node, (5, 5, 5))
        machine = NSCMachine(node)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        with pytest.raises(ValueError, match="points"):
            load_jacobi_inputs(machine, setup, np.zeros(10), np.zeros(125))
