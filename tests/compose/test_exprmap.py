"""Expression mapping: trees onto units, CSE, reference semantics."""

import numpy as np
import pytest

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import PipelineBuilder
from repro.compose.exprmap import (
    BinOp,
    Const,
    ExprError,
    UnOp,
    Var,
    eval_expression,
    expr_depth,
    expr_fu_count,
    map_expression,
)
from repro.diagram.program import ExecPipeline, Halt, VisualProgram
from repro.sim.machine import NSCMachine


def _run_expr(expr, inputs, n=32, seed=3):
    """Map, generate, simulate; return (simulated, reference)."""
    node = NodeConfig()
    prog = VisualProgram(name="expr")
    rng = np.random.default_rng(seed)
    env = {}
    for i, name in enumerate(inputs):
        prog.declare(name, plane=i, length=n)
        env[name] = rng.uniform(0.5, 2.0, size=n)
    prog.declare("result", plane=len(inputs), length=n)
    b = PipelineBuilder(node, prog, label="expr", vector_length=n)
    bound = {name: b.read_var(name) for name in inputs}
    root = map_expression(b, expr, bound)
    out = b.apply(Opcode.PASS, root)
    b.write_var(out, "result")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())
    machine = NSCMachine(node)
    machine.load_program(MicrocodeGenerator(node).generate(prog))
    for name, values in env.items():
        machine.set_variable(name, values)
    machine.run()
    return machine.get_variable("result"), eval_expression(expr, env)


class TestStructure:
    def test_depth_and_count(self):
        e = BinOp(Opcode.FADD, Var("a"), UnOp(Opcode.FNEG, Var("b")))
        assert expr_depth(e) == 2
        assert expr_fu_count(e) == 2

    def test_shared_subtree_counted_once(self):
        shared = BinOp(Opcode.FMUL, Var("a"), Var("a"))
        e = BinOp(Opcode.FADD, shared, shared)
        assert expr_fu_count(e) == 2

    def test_wrong_category_rejected(self):
        with pytest.raises(ExprError):
            BinOp(Opcode.FABS, Var("a"), Var("b"))
        with pytest.raises(ExprError):
            UnOp(Opcode.FADD, Var("a"))

    def test_unbound_variable_rejected(self):
        node = NodeConfig()
        prog = VisualProgram()
        b = PipelineBuilder(node, prog, vector_length=8)
        with pytest.raises(ExprError, match="no input stream"):
            map_expression(b, Var("ghost"), {})


class TestSharedMapping:
    def test_cse_reuses_units(self):
        node = NodeConfig()
        prog = VisualProgram()
        prog.declare("a", plane=0, length=8)
        b = PipelineBuilder(node, prog, vector_length=8)
        a = b.read_var("a")
        shared = UnOp(Opcode.FNEG, Var("a"))
        e = BinOp(Opcode.FADD, shared, shared)
        map_expression(b, e, {"a": a})
        assert len(b.diagram.fu_ops) == 2  # fneg once + fadd


class TestSemantics:
    def test_simple_sum(self):
        sim, ref = _run_expr(BinOp(Opcode.FADD, UnOp(Opcode.FNEG, Var("a")),
                                   Var("b")), ["a", "b"])
        np.testing.assert_allclose(sim, ref)

    def test_nested_tree(self):
        e = BinOp(
            Opcode.FMUL,
            BinOp(Opcode.FADD, UnOp(Opcode.FABS, Var("a")),
                  UnOp(Opcode.FSCALE, Var("b"), constant=2.0)),
            UnOp(Opcode.FADDC, Var("a"), constant=1.0),
        )
        sim, ref = _run_expr(e, ["a", "b"])
        np.testing.assert_allclose(sim, ref)

    def test_minmax_tree(self):
        e = BinOp(
            Opcode.MAX,
            UnOp(Opcode.FNEG, Var("a")),
            BinOp(Opcode.MIN, UnOp(Opcode.FABS, Var("b")),
                  UnOp(Opcode.FABS, Var("c"))),
        )
        sim, ref = _run_expr(e, ["a", "b", "c"])
        np.testing.assert_allclose(sim, ref)

    def test_constants(self):
        e = BinOp(Opcode.FADD, UnOp(Opcode.FABS, Var("a")), Const(2.5))
        sim, ref = _run_expr(e, ["a"])
        np.testing.assert_allclose(sim, ref)
