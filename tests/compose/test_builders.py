"""PipelineBuilder: allocation policy, wiring, resource exhaustion."""

import pytest

from repro.arch.funcunit import FUCapability, Opcode
from repro.arch.node import NodeConfig
from repro.checker.checker import Checker
from repro.compose.builders import BuilderError, PipelineBuilder
from repro.diagram.pipeline import InputModKind
from repro.diagram.program import VisualProgram


@pytest.fixture()
def env():
    node = NodeConfig()
    prog = VisualProgram()
    prog.declare("x", plane=0, length=64)
    prog.declare("y", plane=1, length=64)
    prog.declare("out", plane=2, length=64)
    return node, prog


class TestAllocationPolicy:
    def test_fp_op_prefers_plain_fp_unit(self, env):
        """Don't burn scarce integer/min-max circuitry on an add."""
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        ref = b.apply(Opcode.FNEG, x)
        assert node.fu_capability(ref.fu) == FUCapability.FP

    def test_minmax_op_gets_minmax_unit(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        ref = b.apply(Opcode.MAX, x, b.feedback(0.0))
        assert FUCapability.MINMAX in node.fu_capability(ref.fu)

    def test_colocation_uses_internal_route(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        first = b.apply(Opcode.FNEG, x)  # lands in a triplet's middle slot
        second = b.apply(Opcode.MAX, first, b.feedback(0.0))
        internal = [
            mod
            for (fu, _p), mod in b.diagram.input_mods.items()
            if fu == second.fu and mod.kind is InputModKind.INTERNAL
        ]
        assert len(internal) == 1 and internal[0].src_slot == 1
        # no switch wire between the two units
        assert all(
            not (s.device == first.fu and k.device == second.fu)
            for s, k in b.diagram.connections
        )

    def test_exhaustion_reported(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        with pytest.raises(BuilderError, match="no free functional unit"):
            for _ in range(40):
                x = b.apply(Opcode.FADDC, x, constant=1.0)

    def test_arity_enforced(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        with pytest.raises(BuilderError, match="two operands"):
            b.apply(Opcode.FADD, x)
        with pytest.raises(BuilderError, match="one operand"):
            b.apply(Opcode.FABS, x, x)


class TestStreams:
    def test_read_var_requires_declaration(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog)
        with pytest.raises(BuilderError, match="not declared"):
            b.read_var("ghost")

    def test_plane_read_port_shared_for_same_request(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        a = b.read_var("x")
        c = b.read_var("x")
        assert a is c
        assert len(b.diagram.dma) == 1

    def test_conflicting_plane_reads_rejected(self, env):
        node, prog = env
        prog.declare("x2", plane=0, length=64)
        b = PipelineBuilder(node, prog, vector_length=64)
        b.read_var("x")
        with pytest.raises(BuilderError, match="read port already streams"):
            b.read_var("x2")

    def test_through_sd_allocates_unit_and_taps(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        taps = b.through_sd(x, shifts=[0, 1, -1])
        assert [t.shift for t in taps] == [0, 1, -1]
        assert b.diagram.sd_taps == {(0, 0): 0, (0, 1): 1, (0, 2): -1}

    def test_sd_units_exhaust(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        y = b.read_var("y")
        b.through_sd(x, shifts=[0])
        b.through_sd(y, shifts=[0])
        with pytest.raises(BuilderError, match="no free shift/delay"):
            b.through_sd(x, shifts=[1])

    def test_too_many_taps_rejected(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        with pytest.raises(BuilderError, match="taps"):
            b.through_sd(x, shifts=list(range(9)))


class TestBuiltDiagramsAreValid:
    def test_builder_output_passes_checker(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, label="t", vector_length=64)
        x = b.read_var("x")
        y = b.read_var("y")
        # stage x through a unit first: a single unit may not read two planes
        ax = b.apply(Opcode.FABS, x)
        s = b.apply(Opcode.FADD, ax, y)
        out = b.apply(Opcode.PASS, s)
        b.write_var(out, "out")
        diagram = b.build()
        report = Checker(node).check_pipeline(diagram, prog.declarations)
        assert report.ok, report.format()

    def test_build_appends_to_program(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        out = b.apply(Opcode.PASS, x)
        b.write_var(out, "out")
        b.build()
        assert len(prog.pipelines) == 1

    def test_build_without_append(self, env):
        node, prog = env
        b = PipelineBuilder(node, prog, vector_length=64)
        x = b.read_var("x")
        out = b.apply(Opcode.PASS, x)
        b.write_var(out, "out")
        d = b.build(append=False)
        assert prog.pipelines == []
        assert d.fu_ops
