"""``nsc-vpe batch/sweep --server URL``: the CLI as a daemon client.

The CLI main() runs in-process against an in-thread daemon, so these
tests assert on the exact lines a user sees — including the
``[cache hit]`` markers that prove the second batch rode the daemon's
warm cache.
"""

from __future__ import annotations

import json

from repro.cli import main

from helpers_server import fast_specs


def _jobs_file(tmp_path, specs):
    path = tmp_path / "jobs.json"
    path.write_text(json.dumps(specs))
    return str(path)


class TestBatchViaServer:
    def test_batch_roundtrip_and_warm_rerun(self, server, tmp_path, capsys):
        jobs = _jobs_file(tmp_path, fast_specs(2))
        assert main(["batch", jobs, "--server", server.base_url,
                     "--tag", "cold"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok   ") == 2
        assert "[compiled]" in out and "[cache hit]" not in out

        assert main(["batch", jobs, "--server", server.base_url,
                     "--tag", "warm"]) == 0
        out = capsys.readouterr().out
        assert out.count("[cache hit]") == 2
        assert "2/2 jobs ok" in out

    def test_sweep_via_server(self, server, capsys):
        assert main(["sweep", "--grids", "5", "--methods", "jacobi",
                     "--repeats", "2", "--eps", "1e-3",
                     "--server", server.base_url, "--tag", "sw"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 jobs" in out
        assert "2/2 jobs ok" in out

    def test_unreachable_server_is_a_clean_error(self, tmp_path, capsys):
        jobs = _jobs_file(tmp_path, fast_specs(1))
        # a port from the ephemeral range with (almost surely) nothing on
        # it; connection refused must not traceback
        assert main(["batch", jobs, "--server",
                     "http://127.0.0.1:9"]) == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_server_refusal_is_surfaced(self, server, tmp_path, capsys):
        # the fixture daemon has a store, so provoke a 400 differently:
        # a spec the daemon rejects at validation time
        jobs = _jobs_file(tmp_path, [{"method": "warp-drive", "n": 5}])
        assert main(["batch", jobs, "--server", server.base_url]) == 2
        err = capsys.readouterr().err
        assert "bad job spec" in err  # rejected before any network hop

    def test_local_flags_still_validate_before_submitting(
            self, server, tmp_path, capsys):
        jobs = _jobs_file(tmp_path, fast_specs(1))
        # --resume without --results is fine with --server: the daemon's
        # store is the resume source
        assert main(["batch", jobs, "--server", server.base_url,
                     "--resume", "--tag", "r1"]) == 0
        assert "1/1 jobs ok" in capsys.readouterr().out
