"""The live event stream: ordering, bounded buffering, attribution.

Unit tests pin the :class:`EventBuffer` contract (sequence numbers,
drop accounting, downstream tee); the API tests then prove the daemon
honors it end to end — in-order span/counter events for an in-flight
batch, and a slow consumer that never costs execution anything beyond
counted drops.
"""

from __future__ import annotations

import pytest

from repro.server import correlation
from repro.server.app import start_in_thread
from repro.server.client import ServiceClient
from repro.server.events import EventBuffer
from repro.server.service import SimService

from helpers_server import fast_specs


class _Collector:
    def __init__(self, fail: bool = False) -> None:
        self.seen = []
        self.fail = fail

    def emit(self, payload):
        if self.fail:
            raise RuntimeError("downstream on fire")
        self.seen.append(payload)


class TestEventBuffer:
    def test_sequence_numbers_are_dense_and_ordered(self):
        buf = EventBuffer(maxlen=10)
        for i in range(5):
            buf.emit({"type": "t", "i": i})
        events, dropped = buf.since(after=0)
        assert dropped == 0
        assert [e["seq"] for e in events] == [1, 2, 3, 4, 5]
        assert [e["i"] for e in events] == [0, 1, 2, 3, 4]
        assert buf.last_seq == 5

    def test_since_resumes_exactly(self):
        buf = EventBuffer(maxlen=10)
        for i in range(6):
            buf.emit({"type": "t", "i": i})
        events, _ = buf.since(after=4)
        assert [e["seq"] for e in events] == [5, 6]
        events, _ = buf.since(after=6)
        assert events == []

    def test_limit_caps_a_page(self):
        buf = EventBuffer(maxlen=100)
        for i in range(20):
            buf.emit({"type": "t"})
        events, _ = buf.since(after=0, limit=7)
        assert [e["seq"] for e in events] == [1, 2, 3, 4, 5, 6, 7]

    def test_overflow_drops_oldest_and_counts(self):
        buf = EventBuffer(maxlen=4)
        for i in range(10):
            buf.emit({"type": "t", "i": i})
        assert buf.dropped == 6
        events, dropped = buf.since(after=0)
        assert dropped == 6  # seqs 1..6 aged out of the requested range
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        # a reader already past the eviction horizon misses nothing
        events, dropped = buf.since(after=7)
        assert dropped == 0
        assert [e["seq"] for e in events] == [8, 9, 10]
        assert buf.stats() == {"emitted": 10, "buffered": 4,
                               "dropped": 6, "maxlen": 4}

    def test_downstream_sees_every_event_with_seq(self):
        sink = _Collector()
        buf = EventBuffer(maxlen=2, downstream=sink)
        for i in range(5):
            buf.emit({"type": "t", "i": i})
        # the tee is not bounded by the ring: the durable log gets all
        assert [e["seq"] for e in sink.seen] == [1, 2, 3, 4, 5]

    def test_downstream_failure_never_propagates(self):
        buf = EventBuffer(maxlen=4, downstream=_Collector(fail=True))
        buf.emit({"type": "t"})  # must not raise
        assert buf.last_seq == 1

    def test_correlation_id_stamped_when_bound(self):
        buf = EventBuffer()
        with correlation.bind("abc123"):
            buf.emit({"type": "inside"})
        buf.emit({"type": "outside"})
        events, _ = buf.since()
        assert events[0]["correlation_id"] == "abc123"
        assert "correlation_id" not in events[1]


class TestEventsEndpoint:
    def test_in_order_lifecycle_and_span_events(self, client):
        sub = client.submit(jobs=fast_specs(2))
        client.wait(sub["id"], timeout=60)
        answer = client.events(limit=10_000)
        events = answer["events"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        mine = [e for e in events if e.get("submission") == sub["id"]]
        order = [e["type"] for e in mine]
        assert order.index("submission_queued") < order.index(
            "submission_started") < order.index("submission_finished")
        kinds = {e["type"] for e in events}
        assert "span" in kinds  # per-stage execution telemetry flowed in
        finished = [e for e in mine if e["type"] == "submission_finished"]
        assert finished[0]["counters"]["cache.miss"] >= 2

    def test_tail_since_last_seq_sees_only_new_events(self, client):
        first = client.submit(jobs=fast_specs(1), tag="one")
        client.wait(first["id"], timeout=60)
        cursor = client.events()["last_seq"]
        second = client.submit(jobs=fast_specs(1), tag="two")
        client.wait(second["id"], timeout=60)
        fresh = client.events(after=cursor)
        assert fresh["dropped"] == 0
        assert all(e["seq"] > cursor for e in fresh["events"])
        subs = {e.get("submission") for e in fresh["events"]}
        assert second["id"] in subs and first["id"] not in subs

    def test_bad_query_params_are_400(self, client):
        from repro.server.client import ServerError

        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/events?after=soon")
        assert excinfo.value.status == 400
        with pytest.raises(ServerError) as excinfo:
            client.request("GET", "/events?bogus=1")
        assert excinfo.value.status == 400

    def test_slow_consumer_is_bounded_not_blocking(self, tmp_path):
        """A tiny ring fills and evicts; execution is unaffected and the
        losses are counted, both in the response and in /stats."""
        svc = SimService(events=EventBuffer(maxlen=8))
        svc.start()
        handle = start_in_thread(svc)
        try:
            c = ServiceClient(handle.base_url)
            result = c.run(jobs=fast_specs(3))  # emits far more than 8
            assert result["summary"]["succeeded"] == 3  # never blocked
            answer = c.events(after=0)
            assert answer["dropped"] > 0
            assert len(answer["events"]) <= 8
            stats = c.stats()
            assert stats["events"]["dropped"] == answer["dropped"]
            assert stats["events"]["buffered"] <= 8
        finally:
            handle.stop()
            svc.stop()

    def test_default_sink_restored_after_stop(self):
        from repro.obs import tracer as obs

        before = obs.default_sink()
        svc = SimService()
        svc.start()
        assert obs.default_sink() is svc.events
        svc.stop()
        assert obs.default_sink() is before
