"""Shared helpers for the server test tier (imported by basename —
the test dirs are not packages, and ``helpers_server`` is unique
repo-wide so the flat import is unambiguous)."""

from __future__ import annotations

from typing import Any, Dict, List

#: Solver settings that converge in milliseconds on tiny grids.
FAST = {"eps": 1e-3, "max_sweeps": 500}


def fast_specs(count: int = 2) -> List[Dict[str, Any]]:
    """*count* mutually distinct cheap job specs (distinctness matters:
    every job compiles its own program, so cache-hit patterns are
    deterministic whatever prefix of the batch already ran)."""
    specs = []
    for i in range(count):
        specs.append(
            {
                "method": ("jacobi", "rb-gs")[i % 2],
                "n": 5 + i // 2,
                **FAST,
            }
        )
    return specs
