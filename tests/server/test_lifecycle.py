"""Daemon lifecycle and chaos: kill -9 mid-sweep, duplicate storms.

The headline test boots a real ``nsc-vpe serve`` subprocess, SIGKILLs
it while a sweep is mid-flight, restarts it on the same store, and
resubmits with ``resume=true`` — the completed store must be
digest-identical to an uninterrupted offline run of the same jobs.
That is the whole reliability story in one scenario: checkpointed
prefixes, advisory-locked appends, resume redemption, and the daemon
adding nothing volatile to the record schema.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.server.app import start_in_thread
from repro.server.client import ServiceClient
from repro.server.service import SimService
from repro.service.jobs import SimJob
from repro.service.results import ResultStore
from repro.service.runner import BatchRunner

from helpers_server import fast_specs

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Distinct jobs sized so an 8-job batch runs long enough (roughly a
#: second) to SIGKILL mid-flight, but converges fast when sized down.
CHAOS_SPECS = [
    {"method": "jacobi", "n": n, "eps": 1e-6, "max_sweeps": 20_000}
    for n in range(12, 20)
]


def _spawn_daemon(tmp_path, store_name="store.jsonl", extra=()):
    """Start a real serve subprocess on an ephemeral port; returns
    (process, client, log_path)."""
    log_path = tmp_path / "serve.log"
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--results", str(tmp_path / store_name), *extra],
        stdout=log, stderr=subprocess.STDOUT, env=env, cwd=str(tmp_path),
    )
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        text = log_path.read_text() if log_path.exists() else ""
        match = re.search(r"serving on (http://[0-9.:]+)", text)
        if match:
            url = match.group(1)
            break
        if proc.poll() is not None:
            raise AssertionError(f"daemon died during startup:\n{text}")
        time.sleep(0.02)
    assert url, "daemon never printed its banner"
    return proc, ServiceClient(url, client_id="chaos"), log_path


class TestKillAndResume:
    def test_sigkill_mid_sweep_then_resume_matches_uninterrupted(
            self, tmp_path):
        jobs = [SimJob.from_dict(s) for s in CHAOS_SPECS]
        reference_store = ResultStore(str(tmp_path / "reference.jsonl"))
        _, summary = BatchRunner(workers=1, store=reference_store).run(jobs)
        assert summary.failed == 0
        reference = reference_store.digest()

        store_path = tmp_path / "store.jsonl"
        proc, client, _ = _spawn_daemon(tmp_path)
        try:
            client.submit(jobs=CHAOS_SPECS, tag="chaos")
            # wait for the first checkpointed record, then kill -9 while
            # the rest of the batch is still executing
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store_path.exists() and store_path.stat().st_size > 0:
                    break
                time.sleep(0.002)
            else:
                raise AssertionError("no record ever checkpointed")
        finally:
            proc.kill()
            proc.wait(10)

        survivors = ResultStore(str(store_path)).load()
        assert 0 < len(survivors) < len(jobs), (
            "kill landed outside the batch window; nothing to resume")
        for record in survivors:  # the prefix is clean, never torn
            assert record["ok"]

        proc, client, _ = _spawn_daemon(tmp_path)
        try:
            result = client.run(jobs=CHAOS_SPECS, tag="chaos",
                                resume=True, timeout=120)
            assert result["summary"]["failed"] == 0
            assert result["summary"]["resumed"] == len(survivors)
        finally:
            proc.terminate()
            proc.wait(10)

        completed = ResultStore(str(store_path))
        assert len(completed) == len(jobs)
        assert completed.digest() == reference

    def test_sigterm_is_a_graceful_stop(self, tmp_path):
        proc, client, log_path = _spawn_daemon(tmp_path)
        assert client.healthz()["ok"]
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(15) == 0
        assert "serve: stopped" in log_path.read_text()


class TestDuplicateStorm:
    def test_concurrent_identical_posts_coalesce_to_one_execution(
            self, client, service):
        payload = {"jobs": fast_specs(2), "tag": "storm"}
        answers = []
        barrier = threading.Barrier(6)

        def post():
            barrier.wait()
            answers.append(client.request("POST", "/jobs", payload))

        threads = [threading.Thread(target=post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        ids = {a["id"] for a in answers}
        assert len(ids) == 1
        assert sum(a["created"] for a in answers) == 1
        sub_id = ids.pop()
        final = client.wait(sub_id, timeout=60)
        assert final["state"] == "done"
        assert final["dedup_hits"] == 5
        stats = client.stats()
        assert stats["submissions"]["total"] == 1
        assert stats["jobs"]["executed"] == 2  # ran once, not six times
        # the store holds exactly one execution's records too
        assert len(service.store) == 2

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        svc = SimService()
        svc.start()
        handle = start_in_thread(svc)
        try:
            c = ServiceClient(handle.base_url)
            assert c.shutdown()["stopping"] is True
            handle.thread.join(10)
            assert not handle.thread.is_alive()
        finally:
            handle.stop()
            svc.stop()
