"""The daemon's HTTP surface, endpoint by endpoint.

Happy paths go through :class:`ServiceClient`; wire-level behaviors
(correlation echo, 429 + Retry-After, 413, malformed requests) use raw
``http.client``/sockets so nothing in the thin client can paper over a
server bug.
"""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.server.app import start_in_thread
from repro.server.client import ServerError, ServiceClient
from repro.server.rate_limiter import RateLimiter
from repro.server.service import SimService

from helpers_server import fast_specs


class TestHealthAndStats:
    def test_healthz(self, client):
        answer = client.healthz()
        assert answer["ok"] is True
        assert answer["uptime_s"] >= 0

    def test_stats_shape(self, client):
        stats = client.stats()
        for key in ("uptime_s", "submissions", "jobs", "cache",
                    "plan_cache", "counters", "events", "rate_limiter"):
            assert key in stats, key
        assert stats["submissions"]["total"] == 0
        assert stats["jobs"] == {"executed": 0, "ok": 0, "failed": 0}


class TestSubmit:
    def test_submit_executes_and_reports(self, client):
        specs = fast_specs(2)
        sub = client.submit(jobs=specs)
        assert sub["created"] is True
        assert sub["n_jobs"] == 2
        status = client.wait(sub["id"], timeout=60)
        assert status["state"] == "done"
        assert status["summary"]["succeeded"] == 2
        # per-job reliability picture without full payloads
        for job in status["jobs"]:
            assert job["ok"] is True
            assert job["attempts"] == 1
            assert set(job["timings"]) >= {"compile", "execute"}
        result = client.result(sub["id"])
        assert len(result["records"]) == 2
        assert all(r["ok"] for r in result["records"])

    def test_identical_payload_coalesces(self, client):
        specs = fast_specs(1)
        first = client.submit(jobs=specs, tag="same")
        second = client.submit(jobs=specs, tag="same")
        assert second["id"] == first["id"]
        assert second["created"] is False
        assert second["dedup_hits"] == 1

    def test_different_tag_is_a_new_submission(self, client):
        specs = fast_specs(1)
        first = client.submit(jobs=specs, tag="one")
        second = client.submit(jobs=specs, tag="two")
        assert second["id"] != first["id"]
        assert second["created"] is True

    def test_sweep_payload(self, client):
        sub = client.submit(sweep={"grids": [5], "methods": ["jacobi"],
                                   "repeats": 2, "eps": 1e-3,
                                   "max_sweeps": 500})
        assert sub["n_jobs"] == 2
        result = client.result(sub["id"], wait=60)
        assert result["summary"]["succeeded"] == 2

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # neither jobs nor sweep
            {"jobs": [], "tag": "x"},  # empty job list
            {"jobs": [{"method": "nope", "n": 5}]},  # bad solver
            {"jobs": [{"method": "jacobi", "n": 5}],
             "sweep": {"grids": [5]}},  # both at once
            {"jobs": [{"method": "jacobi", "n": 5}],
             "bogus": 1},  # unknown field
            {"sweep": {"grids": [5], "unknown_axis": [1]}},  # bad axis
        ],
    )
    def test_bad_payloads_are_400(self, client, payload):
        with pytest.raises(ServerError) as excinfo:
            client.request("POST", "/jobs", payload)
        assert excinfo.value.status == 400

    def test_resume_without_store_is_refused(self, tmp_path):
        svc = SimService()  # no store configured
        svc.start()
        handle = start_in_thread(svc)
        try:
            c = ServiceClient(handle.base_url)
            with pytest.raises(ServerError) as excinfo:
                c.submit(jobs=fast_specs(1), resume=True)
            assert excinfo.value.status == 400
            assert "store" in excinfo.value.payload["error"]
        finally:
            handle.stop()
            svc.stop()

    def test_list_jobs(self, client):
        client.submit(jobs=fast_specs(1), tag="a")
        client.submit(jobs=fast_specs(1), tag="b")
        listing = client.request("GET", "/jobs")
        assert listing["total"] == 2
        assert [s["tag"] for s in listing["submissions"]] == ["a", "b"]


class TestResult:
    def test_unknown_submission_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.status("deadbeef00000000")
        assert excinfo.value.status == 404

    def test_result_while_queued_is_409(self):
        svc = SimService()  # never started: no worker drains the queue
        handle = start_in_thread(svc)
        try:
            c = ServiceClient(handle.base_url)
            sub = c.submit(jobs=fast_specs(1))
            assert sub["state"] == "queued"
            with pytest.raises(ServerError) as excinfo:
                c.result(sub["id"])
            assert excinfo.value.status == 409
        finally:
            handle.stop()


class TestRuns:
    def test_history_filters(self, client, service):
        client.result(client.submit(jobs=fast_specs(4))["id"], wait=60)
        everything = client.runs()
        assert everything["total"] == 4
        jacobi = client.runs(method="jacobi")
        assert jacobi["total"] == 2
        assert all(r["method"] == "jacobi" for r in jacobi["records"])
        ok = client.runs(ok="true")
        assert ok["total"] == 4
        paged = client.runs(limit=1, offset=1)
        assert paged["total"] == 4 and paged["returned"] == 1

    def test_unknown_query_param_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.runs(bogus="x")
        assert excinfo.value.status == 400

    def test_runs_without_store_is_409(self):
        svc = SimService()
        svc.start()
        handle = start_in_thread(svc)
        try:
            with pytest.raises(ServerError) as excinfo:
                ServiceClient(handle.base_url).runs()
            assert excinfo.value.status == 409
        finally:
            handle.stop()
            svc.stop()


class TestWire:
    """Raw-socket behaviors the thin client would transparently absorb."""

    def test_unknown_path_404_and_wrong_verb_405(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("GET", "/nope")
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
        finally:
            conn.close()
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("DELETE", "/stats")
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 405
            assert "GET" in body["error"]
        finally:
            conn.close()

    def test_correlation_id_echoed_and_attributed(self, server, client):
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            body = json.dumps({"jobs": fast_specs(1)})
            conn.request("POST", "/jobs", body=body,
                         headers={"Content-Type": "application/json",
                                  "X-Correlation-Id": "cafe0123babe"})
            resp = conn.getresponse()
            assert resp.getheader("X-Correlation-Id") == "cafe0123babe"
            payload = json.loads(resp.read())
            assert payload["correlation_id"] == "cafe0123babe"
        finally:
            conn.close()
        # ... and the daemon's own telemetry carries the same id
        client.wait(payload["id"], timeout=60)
        events = client.events()["events"]
        tagged = [e for e in events
                  if e.get("correlation_id") == "cafe0123babe"]
        kinds = {e["type"] for e in tagged}
        assert "submission_started" in kinds
        assert "span" in kinds  # execution telemetry, not just lifecycle

    def test_generated_correlation_id_on_response(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("GET", "/healthz")
            resp = conn.getresponse()
            resp.read()
            assert resp.getheader("X-Correlation-Id")
        finally:
            conn.close()

    def test_rate_limit_429_with_retry_after(self):
        svc = SimService()
        svc.start()
        handle = start_in_thread(
            svc, limiter=RateLimiter(capacity=2, refill_rate=0.5)
        )
        try:
            conn = http.client.HTTPConnection(handle.host, handle.port)
            statuses = []
            retry_after = None
            for _ in range(4):
                conn.request("GET", "/stats",
                             headers={"X-Client-Id": "bursty"})
                resp = conn.getresponse()
                resp.read()
                statuses.append(resp.status)
                if resp.status == 429:
                    retry_after = resp.getheader("Retry-After")
            assert statuses[:2] == [200, 200]
            assert 429 in statuses[2:]
            assert retry_after is not None and int(retry_after) >= 1
            # another client has its own bucket
            conn.request("GET", "/stats", headers={"X-Client-Id": "calm"})
            resp = conn.getresponse()
            resp.read()
            assert resp.status == 200
            # liveness probes are exempt however hard they hammer
            for _ in range(5):
                conn.request("GET", "/healthz",
                             headers={"X-Client-Id": "bursty"})
                resp = conn.getresponse()
                resp.read()
                assert resp.status == 200
            stats = json.loads(self._get(conn, "/stats", "calm"))
            assert stats["rate_limiter"]["rejected_by_client"]["bursty"] >= 1
            conn.close()
        finally:
            handle.stop()
            svc.stop()

    @staticmethod
    def _get(conn, path, client_id):
        conn.request("GET", path, headers={"X-Client-Id": client_id})
        resp = conn.getresponse()
        return resp.read()

    def test_oversized_body_is_413(self, server):
        with socket.create_connection((server.host, server.port)) as sock:
            sock.sendall(b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                         b"Content-Length: 999999999\r\n\r\n")
            answer = sock.recv(65536)
        assert b"413" in answer.split(b"\r\n", 1)[0]

    def test_malformed_request_line_is_400(self, server):
        with socket.create_connection((server.host, server.port)) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            answer = sock.recv(65536)
        assert b"400" in answer.split(b"\r\n", 1)[0]

    def test_invalid_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("POST", "/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
            assert "JSON" in json.loads(resp.read())["error"]
        finally:
            conn.close()

    def test_keep_alive_serves_sequential_requests(self, server):
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()
