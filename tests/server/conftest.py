"""Fixtures for the service-daemon tier: a real HTTP server per test.

The daemon is hosted in-process (:func:`start_in_thread`) over real
sockets on an ephemeral port — the tests exercise the genuine wire path
(request parsing, middleware, thread handoff) without subprocess
overhead.  Chaos tests that need a killable daemon spawn their own
subprocess instead (see ``test_lifecycle.py``).
"""

from __future__ import annotations

import pytest

from repro.server.app import ServerHandle, start_in_thread
from repro.server.client import ServiceClient
from repro.server.rate_limiter import RateLimiter
from repro.server.service import SimService


@pytest.fixture()
def service(tmp_path):
    svc = SimService(store_path=str(tmp_path / "results.jsonl"))
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def server(service) -> ServerHandle:
    # a test makes many quick requests from one client id; the default
    # production bucket would throttle the suite itself
    handle = start_in_thread(
        service, limiter=RateLimiter(capacity=10_000, refill_rate=1_000.0)
    )
    yield handle
    handle.stop()


@pytest.fixture()
def client(server) -> ServiceClient:
    return ServiceClient(server.base_url, client_id="pytest")
