"""The PR's acceptance contract, verbatim.

A warm daemon given a second identical 8-job batch must skip
recompilation entirely — visible as ``cache.hit`` counters through
``GET /stats`` — and the store it writes must be digest-identical
(modulo volatile keys) to the same two batches executed offline.
"""

from __future__ import annotations

from repro.server.app import start_in_thread
from repro.server.client import ServiceClient
from repro.server.service import SimService
from repro.service.cache import ProgramCache
from repro.service.jobs import SimJob
from repro.service.results import ResultStore
from repro.service.runner import BatchRunner

from helpers_server import fast_specs


def test_warm_daemon_batch_skips_recompilation_and_matches_offline(tmp_path):
    specs = fast_specs(8)
    daemon_store = tmp_path / "daemon.jsonl"
    svc = SimService(store_path=str(daemon_store))
    svc.start()
    handle = start_in_thread(svc)
    try:
        client = ServiceClient(handle.base_url, client_id="acceptance")

        cold = client.run(jobs=specs, tag="first")
        assert cold["summary"]["succeeded"] == 8
        assert cold["summary"]["cache_misses"] == 8

        warm = client.run(jobs=specs, tag="second")
        assert warm["summary"]["succeeded"] == 8
        # the whole point of the daemon: zero recompilation on repeat
        assert warm["summary"]["cache_hits"] == 8
        assert warm["summary"]["cache_misses"] == 0
        assert all(r["cache_hit"] for r in warm["records"])

        stats = client.stats()
        assert stats["cache"]["hits"] >= 8
        assert stats["cache"]["misses"] == 8
        assert stats["counters"]["cache.hit"] >= 8
        assert "plan_cache" in stats  # plan-layer counters ride along
        assert stats["jobs"] == {"executed": 16, "ok": 16, "failed": 0}
    finally:
        handle.stop()
        svc.stop()

    # the offline twin: the same two batches through BatchRunner sharing
    # one warm cache, writing the same store schema
    jobs = [SimJob.from_dict(s) for s in specs]
    offline_store = ResultStore(str(tmp_path / "offline.jsonl"))
    shared_cache = ProgramCache()
    for _ in range(2):
        _, summary = BatchRunner(
            workers=1, store=offline_store, cache=shared_cache
        ).run(jobs)
        assert summary.failed == 0

    daemon = ResultStore(str(daemon_store))
    assert len(daemon) == len(offline_store) == 16
    # digest-identical modulo VOLATILE_KEYS: the daemon added nothing to
    # the record schema, and its cache-hit pattern matches offline
    assert daemon.digest() == offline_store.digest()
