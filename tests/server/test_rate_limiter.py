"""Token-bucket unit tests (deterministic clock).

The randomized interleavings live in
``tests/property/test_rate_limiter_property.py``; these pin the exact
arithmetic: burst size, refill, retry_after, per-client isolation.
"""

from __future__ import annotations

import pytest

from repro.server.rate_limiter import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_up_to_capacity_then_rejects(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=3, refill_rate=1.0, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        granted, retry_after = bucket.try_acquire()
        assert not granted
        assert retry_after == pytest.approx(1.0)

    def test_refill_is_continuous_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_rate=2.0, clock=clock)
        bucket.try_acquire(2)
        clock.advance(0.25)  # half a token back
        assert not bucket.try_acquire()[0]
        clock.advance(0.25)  # a whole token now
        assert bucket.try_acquire()[0]
        clock.advance(1_000)  # refill saturates at capacity, not beyond
        assert bucket.tokens == pytest.approx(2.0)

    def test_waiting_out_retry_after_guarantees_the_grant(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=1, refill_rate=0.1, clock=clock)
        assert bucket.try_acquire()[0]
        granted, retry_after = bucket.try_acquire()
        assert not granted
        clock.advance(retry_after)
        assert bucket.try_acquire()[0]

    def test_backwards_clock_never_mints_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=clock)
        bucket.try_acquire()
        clock.now = -100.0
        assert bucket.tokens == pytest.approx(0.0)

    def test_multi_token_acquire(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=5, refill_rate=1.0, clock=clock)
        assert bucket.try_acquire(5)[0]
        granted, retry_after = bucket.try_acquire(3)
        assert not granted and retry_after == pytest.approx(3.0)

    @pytest.mark.parametrize("capacity,rate", [(0, 1.0), (1, 0.0), (1, -1)])
    def test_bad_configuration_rejected(self, capacity, rate):
        with pytest.raises(ValueError):
            TokenBucket(capacity=capacity, refill_rate=rate)

    def test_zero_token_acquire_rejected(self):
        bucket = TokenBucket(capacity=1, refill_rate=1.0, clock=FakeClock())
        with pytest.raises(ValueError):
            bucket.try_acquire(0)


class TestRateLimiter:
    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(capacity=1, refill_rate=1.0, clock=clock)
        assert limiter.check("alice")[0]
        assert not limiter.check("alice")[0]
        assert limiter.check("bob")[0]  # alice's storm never starves bob

    def test_stats_count_grants_and_rejections(self):
        clock = FakeClock()
        limiter = RateLimiter(capacity=2, refill_rate=1.0, clock=clock)
        for _ in range(4):
            limiter.check("alice")
        limiter.check("bob")
        stats = limiter.stats()
        assert stats["clients"] == 2
        assert stats["granted"] == 3
        assert stats["rejected"] == 2
        assert stats["rejected_by_client"] == {"alice": 2}
