"""Functional-unit opcodes: capabilities, kernels, and menu filtering."""

import math

import numpy as np
import pytest

from repro.arch.funcunit import (
    FUCapability,
    OPCODES,
    Opcode,
    opinfo,
    ops_for_capability,
    scalar_eval,
)


class TestRegistry:
    def test_every_opcode_registered(self):
        assert set(OPCODES) == set(Opcode)

    def test_arity_is_one_or_two(self):
        for info in OPCODES.values():
            assert info.arity in (1, 2)

    def test_fp_ops_count_flops(self):
        assert OPCODES[Opcode.FADD].flops == 1
        assert OPCODES[Opcode.FMUL].flops == 1

    def test_integer_ops_count_no_flops(self):
        assert OPCODES[Opcode.IADD].flops == 0
        assert OPCODES[Opcode.IAND].flops == 0

    def test_pass_is_free(self):
        assert OPCODES[Opcode.PASS].flops == 0

    def test_constant_ops_flagged(self):
        assert OPCODES[Opcode.FSCALE].uses_constant
        assert OPCODES[Opcode.FADDC].uses_constant
        assert not OPCODES[Opcode.FADD].uses_constant

    def test_latency_keys_are_param_fields(self):
        from repro.arch.params import NSCParameters

        p = NSCParameters()
        for info in OPCODES.values():
            assert isinstance(getattr(p, info.latency_key), int)


class TestCapabilityFiltering:
    """The asymmetry of §3: integer and min/max circuitry is scarce."""

    def test_fp_only_unit_gets_no_integer_ops(self):
        ops = ops_for_capability(FUCapability.FP)
        assert Opcode.FADD in ops
        assert Opcode.IADD not in ops
        assert Opcode.MAX not in ops

    def test_int_unit_gets_fp_and_integer(self):
        ops = ops_for_capability(FUCapability.FP | FUCapability.INT_LOGICAL)
        assert Opcode.FADD in ops
        assert Opcode.IADD in ops
        assert Opcode.MAX not in ops

    def test_minmax_unit_gets_fp_and_minmax(self):
        ops = ops_for_capability(FUCapability.FP | FUCapability.MINMAX)
        assert Opcode.MAX in ops
        assert Opcode.IADD not in ops

    def test_capability_labels(self):
        assert FUCapability.FP.label == "fp"
        assert (FUCapability.FP | FUCapability.MINMAX).label == "fp+minmax"


class TestKernels:
    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            (Opcode.FADD, 2.0, 3.0, 5.0),
            (Opcode.FSUB, 2.0, 3.0, -1.0),
            (Opcode.FMUL, 2.0, 3.0, 6.0),
            (Opcode.FDIV, 6.0, 3.0, 2.0),
            (Opcode.MAX, 2.0, 3.0, 3.0),
            (Opcode.MIN, 2.0, 3.0, 2.0),
            (Opcode.MAXABS, -5.0, 3.0, 5.0),
            (Opcode.MINABS, -5.0, 3.0, 3.0),
            (Opcode.FCMP_LT, 1.0, 2.0, 1.0),
            (Opcode.FCMP_GE, 1.0, 2.0, 0.0),
            (Opcode.IADD, 2.0, 3.0, 5.0),
            (Opcode.IAND, 6.0, 3.0, 2.0),
            (Opcode.IOR, 6.0, 3.0, 7.0),
            (Opcode.IXOR, 6.0, 3.0, 5.0),
            (Opcode.ISHL, 1.0, 4.0, 16.0),
            (Opcode.ISHR, 16.0, 4.0, 1.0),
        ],
    )
    def test_binary_semantics(self, opcode, a, b, expected):
        assert scalar_eval(opcode, a, b) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "opcode,a,expected",
        [
            (Opcode.FNEG, 2.0, -2.0),
            (Opcode.FABS, -2.0, 2.0),
            (Opcode.FSQRT, 9.0, 3.0),
            (Opcode.FRECIP, 4.0, 0.25),
            (Opcode.PASS, 7.0, 7.0),
            (Opcode.INOT, 0.0, -1.0),
        ],
    )
    def test_unary_semantics(self, opcode, a, expected):
        assert scalar_eval(opcode, a) == pytest.approx(expected)

    def test_constant_ops(self):
        assert scalar_eval(Opcode.FSCALE, 3.0, constant=2.5) == pytest.approx(7.5)
        assert scalar_eval(Opcode.FADDC, 3.0, constant=2.5) == pytest.approx(5.5)

    def test_division_by_zero_yields_inf_not_exception(self):
        assert math.isinf(scalar_eval(Opcode.FDIV, 1.0, 0.0))

    def test_sqrt_of_negative_yields_nan(self):
        assert math.isnan(scalar_eval(Opcode.FSQRT, -1.0))

    def test_kernels_vectorize(self):
        a = np.arange(10, dtype=np.float64)
        b = np.ones(10)
        out = OPCODES[Opcode.FADD].kernel(a, b)
        np.testing.assert_allclose(out, a + 1)

    def test_opinfo_lookup(self):
        info = opinfo(Opcode.MAX)
        assert info.capability is FUCapability.MINMAX
        assert info.mnemonic == "max"
