"""Register files: constant slots, circular delay queues, capacity."""

import pytest

from repro.arch.regfile import (
    RegisterFileAllocator,
    RegisterFileOverflow,
)


class TestConstants:
    def test_allocate_constant(self):
        rf = RegisterFileAllocator(capacity=8)
        slot = rf.alloc_constant(3.5)
        assert slot.value == 3.5
        assert rf.words_used == 1

    def test_equal_constants_are_shared(self):
        rf = RegisterFileAllocator(capacity=8)
        a = rf.alloc_constant(2.0)
        b = rf.alloc_constant(2.0)
        assert a is b
        assert rf.words_used == 1

    def test_distinct_constants_use_distinct_words(self):
        rf = RegisterFileAllocator(capacity=8)
        rf.alloc_constant(1.0)
        rf.alloc_constant(2.0)
        assert rf.words_used == 2

    def test_overflow(self):
        rf = RegisterFileAllocator(capacity=2)
        rf.alloc_constant(1.0)
        rf.alloc_constant(2.0)
        with pytest.raises(RegisterFileOverflow):
            rf.alloc_constant(3.0)


class TestDelayQueues:
    def test_queue_consumes_length_words(self):
        rf = RegisterFileAllocator(capacity=16)
        rf.alloc_delay("a", 5)
        assert rf.words_used == 5
        assert rf.delay_for_port("a") == 5
        assert rf.delay_for_port("b") == 0

    def test_two_ports_two_queues(self):
        rf = RegisterFileAllocator(capacity=16)
        rf.alloc_delay("a", 3)
        rf.alloc_delay("b", 4)
        assert rf.words_used == 7

    def test_duplicate_port_rejected(self):
        rf = RegisterFileAllocator(capacity=16)
        rf.alloc_delay("a", 3)
        with pytest.raises(RegisterFileOverflow, match="already"):
            rf.alloc_delay("a", 2)

    def test_zero_delay_rejected(self):
        rf = RegisterFileAllocator(capacity=16)
        with pytest.raises(ValueError):
            rf.alloc_delay("a", 0)

    def test_capacity_shared_with_constants(self):
        rf = RegisterFileAllocator(capacity=8)
        rf.alloc_constant(1.0)
        rf.alloc_delay("a", 7)
        assert rf.words_free == 0
        with pytest.raises(RegisterFileOverflow):
            rf.alloc_delay("b", 1)

    def test_overlong_delay_rejected(self):
        rf = RegisterFileAllocator(capacity=8)
        with pytest.raises(RegisterFileOverflow):
            rf.alloc_delay("a", 9)


class TestLifecycle:
    def test_reset(self):
        rf = RegisterFileAllocator(capacity=8)
        rf.alloc_constant(1.0)
        rf.alloc_delay("a", 2)
        rf.reset()
        assert rf.words_used == 0

    def test_snapshot(self):
        rf = RegisterFileAllocator(capacity=8)
        rf.alloc_constant(1.5)
        rf.alloc_delay("b", 2)
        snap = rf.snapshot()
        assert snap["capacity"] == 8
        assert (0, 1.5) in snap["constants"]
        assert (1, 2, "b") in snap["queues"]
