"""Shift/delay units: tap configuration and stream-shift semantics."""

import numpy as np
import pytest

from repro.arch.params import NSCParameters
from repro.arch.shift_delay import (
    ShiftDelayError,
    ShiftDelayUnit,
    make_units,
    shift_stream,
)


class TestShiftStream:
    def test_zero_shift_is_identity(self):
        x = np.arange(5.0)
        np.testing.assert_allclose(shift_stream(x, 0), x)

    def test_positive_shift_looks_forward(self):
        x = np.arange(5.0)
        np.testing.assert_allclose(shift_stream(x, 2), [2, 3, 4, 0, 0])

    def test_negative_shift_looks_backward(self):
        x = np.arange(5.0)
        np.testing.assert_allclose(shift_stream(x, -2), [0, 0, 0, 1, 2])

    def test_shift_beyond_length_fills(self):
        x = np.arange(3.0)
        np.testing.assert_allclose(shift_stream(x, 10), [0, 0, 0])
        np.testing.assert_allclose(shift_stream(x, -10), [0, 0, 0])

    def test_custom_fill(self):
        x = np.arange(3.0)
        np.testing.assert_allclose(shift_stream(x, 2, fill=-1.0), [2, -1, -1])

    def test_empty_stream(self):
        assert shift_stream(np.zeros(0), 3).size == 0

    def test_stencil_identity(self):
        """shift(+1)[i] == x[i+1]: the neighbour-gathering property."""
        x = np.random.default_rng(0).random(20)
        shifted = shift_stream(x, 1)
        np.testing.assert_allclose(shifted[:-1], x[1:])


class TestUnit:
    def test_configure_and_apply(self):
        unit = ShiftDelayUnit(0, n_taps=4, max_shift=16)
        unit.configure_tap(0, 0)
        unit.configure_tap(1, +1)
        x = np.arange(6.0)
        np.testing.assert_allclose(unit.apply(x, 0), x)
        np.testing.assert_allclose(unit.apply(x, 1), shift_stream(x, 1))

    def test_tap_out_of_range(self):
        unit = ShiftDelayUnit(0, n_taps=2, max_shift=16)
        with pytest.raises(ShiftDelayError, match="tap"):
            unit.configure_tap(2, 0)

    def test_shift_out_of_range(self):
        unit = ShiftDelayUnit(0, n_taps=2, max_shift=16)
        with pytest.raises(ShiftDelayError, match="exceeds"):
            unit.configure_tap(0, 17)

    def test_unconfigured_tap_rejected(self):
        unit = ShiftDelayUnit(0, n_taps=2, max_shift=16)
        with pytest.raises(ShiftDelayError, match="not configured"):
            unit.apply(np.zeros(4), 0)

    def test_reconfiguration_overwrites(self):
        unit = ShiftDelayUnit(0, n_taps=2, max_shift=16)
        unit.configure_tap(0, 1)
        unit.configure_tap(0, 2)
        assert unit.tap_shift(0) == 2

    def test_configured_taps_sorted(self):
        unit = ShiftDelayUnit(0, n_taps=4, max_shift=16)
        unit.configure_tap(3, 1)
        unit.configure_tap(0, -1)
        assert [t.tap for t in unit.configured_taps] == [0, 3]

    def test_reset(self):
        unit = ShiftDelayUnit(0, n_taps=2, max_shift=16)
        unit.configure_tap(0, 1)
        unit.reset()
        assert unit.configured_taps == []

    def test_make_units_matches_params(self):
        p = NSCParameters()
        units = make_units(p)
        assert len(units) == p.n_shift_delay_units
        assert units[0].n_taps == p.shift_delay_taps
        assert units[0].max_shift == p.shift_delay_max_shift
