"""DMA specifications, programs, and controllers."""

import pytest

from repro.arch.dma import (
    DMAController,
    DMAProgram,
    DMASpec,
    DMASpecError,
    Direction,
)
from repro.arch.params import NSCParameters
from repro.arch.switch import DeviceKind


def _spec(**kw):
    base = dict(
        device_kind=DeviceKind.MEMORY,
        device=0,
        direction=Direction.READ,
        variable="u",
    )
    base.update(kw)
    return DMASpec(**base)


class TestSpec:
    def test_symbolic_spec(self):
        spec = _spec()
        assert spec.is_symbolic
        assert "u+0" in spec.describe()

    def test_absolute_spec(self):
        spec = _spec(variable=None, offset=4096)
        assert not spec.is_symbolic
        assert "@4096" in spec.describe()

    def test_only_memory_and_cache(self):
        with pytest.raises(DMASpecError):
            _spec(device_kind=DeviceKind.FU)
        with pytest.raises(DMASpecError):
            _spec(device_kind=DeviceKind.SHIFT_DELAY)

    def test_zero_stride_rejected(self):
        with pytest.raises(DMASpecError):
            _spec(stride=0)

    def test_negative_stride_allowed(self):
        assert _spec(stride=-1).stride == -1

    def test_negative_absolute_offset_rejected(self):
        with pytest.raises(DMASpecError):
            _spec(variable=None, offset=-1)

    def test_negative_count_rejected(self):
        with pytest.raises(DMASpecError):
            _spec(count=-1)

    def test_validate_against_plane_range(self):
        p = NSCParameters()
        _spec(device=15).validate_against(p)
        with pytest.raises(DMASpecError, match="out of range"):
            _spec(device=16).validate_against(p)

    def test_validate_against_cache_range(self):
        p = NSCParameters()
        spec = _spec(device_kind=DeviceKind.CACHE, device=16, variable=None)
        with pytest.raises(DMASpecError, match="out of range"):
            spec.validate_against(p)


class TestProgram:
    def test_cycle_model_memory(self):
        p = NSCParameters()
        prog = DMAProgram(spec=_spec(), base_offset=0, count=100)
        assert prog.cycles(p) == p.dma_startup_cycles + p.memory_latency + 100

    def test_cycle_model_cache_is_cheaper(self):
        p = NSCParameters()
        mem = DMAProgram(spec=_spec(), base_offset=0, count=100)
        cache = DMAProgram(
            spec=_spec(device_kind=DeviceKind.CACHE, variable=None),
            base_offset=0,
            count=100,
        )
        assert cache.cycles(p) < mem.cycles(p)


class TestController:
    def test_load_and_complete(self):
        ctl = DMAController(DeviceKind.MEMORY, 0)
        prog = DMAProgram(spec=_spec(), base_offset=0, count=10)
        ctl.load(prog)
        assert ctl.program is prog
        ctl.complete(10)
        assert ctl.program is None
        assert ctl.transfers_completed == 1
        assert ctl.words_moved == 10

    def test_wrong_device_rejected(self):
        ctl = DMAController(DeviceKind.MEMORY, 1)
        prog = DMAProgram(spec=_spec(device=0), base_offset=0, count=10)
        with pytest.raises(DMASpecError, match="loaded into controller"):
            ctl.load(prog)
