"""Hypercube topology and hyperspace router."""

import pytest

from repro.arch.params import NSCParameters
from repro.arch.router import (
    HypercubeTopology,
    HyperspaceRouter,
    Message,
    RoutingError,
)


class TestTopology:
    def test_node_count(self):
        assert HypercubeTopology(6).n_nodes == 64
        assert HypercubeTopology(0).n_nodes == 1

    def test_neighbors_differ_by_one_bit(self):
        topo = HypercubeTopology(4)
        for nbr in topo.neighbors(5):
            assert bin(nbr ^ 5).count("1") == 1

    def test_neighbor_count_equals_dim(self):
        topo = HypercubeTopology(5)
        assert len(topo.neighbors(0)) == 5

    def test_distance_is_hamming(self):
        topo = HypercubeTopology(6)
        assert topo.distance(0, 63) == 6
        assert topo.distance(5, 5) == 0

    def test_ecube_route_endpoints_and_length(self):
        topo = HypercubeTopology(6)
        path = topo.route(3, 60)
        assert path[0] == 3 and path[-1] == 60
        assert len(path) == topo.distance(3, 60) + 1

    def test_ecube_route_hops_are_links(self):
        topo = HypercubeTopology(6)
        path = topo.route(0, 45)
        for a, b in zip(path, path[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_links_counted_once(self):
        topo = HypercubeTopology(3)
        links = list(topo.links())
        assert len(links) == 3 * 8 // 2
        assert len(set(links)) == len(links)

    def test_bad_node_rejected(self):
        topo = HypercubeTopology(3)
        with pytest.raises(RoutingError):
            topo.neighbors(8)
        with pytest.raises(RoutingError):
            topo.route(0, -1)


class TestRouter:
    def _router(self, dim=3):
        return HyperspaceRouter(NSCParameters(hypercube_dim=dim))

    def test_local_delivery_is_free(self):
        r = self._router()
        assert r.send(Message(src=2, dst=2, words=100)) == 0
        assert r.messages_sent == 0

    def test_latency_grows_with_distance(self):
        r = self._router()
        near = r.send(Message(src=0, dst=1, words=64))
        far = r.send(Message(src=0, dst=7, words=64))
        assert far > near

    def test_latency_grows_with_size(self):
        r = self._router()
        small = r.send(Message(src=0, dst=1, words=16))
        big = r.send(Message(src=0, dst=1, words=1600))
        assert big > small

    def test_traffic_accounting(self):
        r = self._router()
        r.send(Message(src=0, dst=3, words=10))  # 2 hops
        assert r.total_words == 20  # charged per link
        busiest = r.busiest_link()
        assert busiest is not None
        assert busiest[1].words == 10

    def test_exchange_contention_extends_makespan(self):
        r1 = self._router()
        solo = r1.exchange([Message(src=0, dst=1, words=128)])
        r2 = self._router()
        both = r2.exchange(
            [
                Message(src=0, dst=1, words=128),
                Message(src=0, dst=1, words=128),
            ]
        )
        assert both > solo

    def test_exchange_empty(self):
        assert self._router().exchange([]) == 0
