"""ALS shapes: unit counts, capability placement, internal routes."""

import pytest

from repro.arch.als import (
    ALS_CLASSES,
    ALSClass,
    ALSInstance,
    ALSKind,
    FUSlot,
    InternalEdge,
)
from repro.arch.funcunit import FUCapability


class TestShapes:
    def test_unit_counts(self):
        assert ALSKind.SINGLET.n_units == 1
        assert ALSKind.DOUBLET.n_units == 2
        assert ALSKind.TRIPLET.n_units == 3

    def test_every_kind_has_a_class(self):
        assert set(ALS_CLASSES) == set(ALSKind)

    def test_every_unit_is_fp_capable(self):
        """§2: every functional unit can perform floating point."""
        for cls in ALS_CLASSES.values():
            for slot in cls.slots:
                assert FUCapability.FP in slot.capability

    def test_one_integer_unit_per_als(self):
        """§3: only a single unit can perform integer operations."""
        for cls in ALS_CLASSES.values():
            ints = [
                s for s in cls.slots if FUCapability.INT_LOGICAL in s.capability
            ]
            assert len(ints) == 1

    def test_minmax_in_doublet_and_triplet(self):
        for kind in (ALSKind.DOUBLET, ALSKind.TRIPLET):
            assert ALS_CLASSES[kind].slot_with_capability(FUCapability.MINMAX) is not None

    def test_integer_unit_is_double_box(self):
        for cls in ALS_CLASSES.values():
            for slot in cls.slots:
                assert slot.is_double_box == (
                    FUCapability.INT_LOGICAL in slot.capability
                )


class TestInternalRoutes:
    def test_singlet_has_no_internal_edges(self):
        assert ALS_CLASSES[ALSKind.SINGLET].internal_edges == ()

    def test_doublet_chains_forward(self):
        edges = ALS_CLASSES[ALSKind.DOUBLET].internal_edges
        assert len(edges) == 1
        assert edges[0].src_slot == 0 and edges[0].dst_slot == 1

    def test_triplet_is_a_reduction_tree(self):
        edges = ALS_CLASSES[ALSKind.TRIPLET].internal_edges
        dests = {(e.dst_slot, e.dst_port) for e in edges}
        assert dests == {(2, "a"), (2, "b")}

    def test_routes_into_query(self):
        cls = ALS_CLASSES[ALSKind.TRIPLET]
        assert len(cls.internal_routes_into(2, "a")) == 1
        assert cls.internal_routes_into(1, "a") == ()

    def test_backward_edge_rejected(self):
        with pytest.raises(ValueError, match="forward"):
            ALSClass(
                kind=ALSKind.DOUBLET,
                slots=ALS_CLASSES[ALSKind.DOUBLET].slots,
                internal_edges=(InternalEdge(1, 0, "a"),),
            )

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError, match="port"):
            ALSClass(
                kind=ALSKind.DOUBLET,
                slots=ALS_CLASSES[ALSKind.DOUBLET].slots,
                internal_edges=(InternalEdge(0, 1, "c"),),
            )

    def test_wrong_slot_count_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            ALSClass(
                kind=ALSKind.TRIPLET,
                slots=ALS_CLASSES[ALSKind.DOUBLET].slots,
                internal_edges=(),
            )


class TestInstances:
    def test_fu_indexing(self):
        inst = ALSInstance(als_id=5, kind=ALSKind.TRIPLET, first_fu=10)
        assert inst.fu_index(0) == 10
        assert inst.fu_index(2) == 12

    def test_fu_index_out_of_range(self):
        inst = ALSInstance(als_id=0, kind=ALSKind.SINGLET, first_fu=0)
        with pytest.raises(IndexError):
            inst.fu_index(1)

    def test_names(self):
        assert ALSInstance(0, ALSKind.SINGLET, 0).name == "S0"
        assert ALSInstance(7, ALSKind.DOUBLET, 8).name == "D7"
        assert ALSInstance(12, ALSKind.TRIPLET, 20).name == "T12"

    def test_capability_delegates_to_class(self):
        inst = ALSInstance(als_id=1, kind=ALSKind.DOUBLET, first_fu=4)
        assert FUCapability.INT_LOGICAL in inst.capability(0)
        assert FUCapability.MINMAX in inst.capability(1)
