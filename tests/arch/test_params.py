"""NSCParameters: the paper's §2 numbers and parameter validation."""

import pytest

from repro.arch.params import MBYTE, NSCParameters, SUBSET_PARAMS


class TestPaperNumbers:
    """§2 headline figures must hold with default parameters."""

    def test_32_functional_units(self):
        assert NSCParameters().n_functional_units == 32

    def test_16_planes_of_128_mbytes(self):
        p = NSCParameters()
        assert p.n_memory_planes == 16
        assert p.memory_plane_bytes == 128 * MBYTE

    def test_2_gbytes_per_node(self):
        assert NSCParameters().node_memory_bytes == 2 * 1024 * MBYTE

    def test_16_caches(self):
        assert NSCParameters().n_caches == 16

    def test_two_shift_delay_units(self):
        assert NSCParameters().n_shift_delay_units == 2

    def test_peak_640_mflops_per_node(self):
        assert NSCParameters().peak_mflops_per_node == pytest.approx(640.0)

    def test_64_node_system_peak_40_gflops(self):
        p = NSCParameters()
        assert p.n_nodes == 64
        assert p.peak_gflops_system == pytest.approx(40.96, rel=0.05)

    def test_64_node_system_memory_128_gbytes(self):
        p = NSCParameters()
        assert p.system_memory_bytes == 128 * 1024 * MBYTE


class TestComposition:
    def test_als_composition_covers_all_units(self):
        p = NSCParameters()
        assert p.n_singlets + 2 * p.n_doublets + 3 * p.n_triplets == 32

    def test_n_als(self):
        p = NSCParameters()
        assert p.n_als == p.n_singlets + p.n_doublets + p.n_triplets

    def test_inconsistent_composition_rejected(self):
        with pytest.raises(ValueError, match="ALS composition"):
            NSCParameters(n_singlets=1, n_doublets=1, n_triplets=1)

    def test_zero_quantity_rejected(self):
        with pytest.raises(ValueError):
            NSCParameters(
                n_memory_planes=0,
            )

    def test_negative_hypercube_dim_rejected(self):
        with pytest.raises(ValueError):
            NSCParameters(hypercube_dim=-1)

    def test_nonpositive_clock_rejected(self):
        with pytest.raises(ValueError):
            NSCParameters(clock_mhz=0.0)


class TestVariants:
    def test_subset_is_valid(self):
        assert SUBSET_PARAMS.n_functional_units == 16
        assert SUBSET_PARAMS.n_als == 8

    def test_subset_peak_is_lower(self):
        assert (
            SUBSET_PARAMS.peak_mflops_per_node
            < NSCParameters().peak_mflops_per_node
        )

    def test_subset_helper_creates_variant(self):
        p = NSCParameters().subset(clock_mhz=10.0)
        assert p.clock_mhz == 10.0
        assert p.n_functional_units == 32

    def test_parameters_are_immutable(self):
        p = NSCParameters()
        with pytest.raises(Exception):
            p.clock_mhz = 5.0  # type: ignore[misc]

    def test_memory_plane_words(self):
        p = NSCParameters()
        assert p.memory_plane_words == 128 * MBYTE // 8

    def test_single_node_system(self):
        p = NSCParameters(hypercube_dim=0)
        assert p.n_nodes == 1
