"""Switch network: endpoint inventory and crosspoint derivation."""

import pytest

from repro.arch.params import NSCParameters
from repro.arch.switch import (
    DeviceKind,
    Endpoint,
    SwitchNetwork,
    SwitchRouteError,
    cache_read,
    cache_write,
    fu_in,
    fu_out,
    mem_read,
    mem_write,
    sd_in,
    sd_tap,
)


@pytest.fixture(scope="module")
def switch() -> SwitchNetwork:
    return SwitchNetwork(NSCParameters(), n_fus=32)


class TestInventory:
    def test_source_count(self, switch):
        p = NSCParameters()
        expected = 32 + p.n_memory_planes + p.n_caches + (
            p.n_shift_delay_units * p.shift_delay_taps
        )
        assert len(switch.sources) == expected

    def test_sink_count(self, switch):
        p = NSCParameters()
        expected = 64 + p.n_memory_planes + p.n_caches + p.n_shift_delay_units
        assert len(switch.sinks) == expected

    def test_fu_out_is_source_not_sink(self, switch):
        assert switch.is_source(fu_out(0))
        assert not switch.is_sink(fu_out(0))

    def test_fu_in_is_sink_not_source(self, switch):
        assert switch.is_sink(fu_in(0, "a"))
        assert not switch.is_source(fu_in(0, "a"))

    def test_memory_ports(self, switch):
        assert switch.is_source(mem_read(15))
        assert switch.is_sink(mem_write(15))
        assert not switch.is_source(mem_read(16))

    def test_cache_and_sd_ports(self, switch):
        assert switch.is_source(cache_read(0))
        assert switch.is_sink(cache_write(0))
        assert switch.is_sink(sd_in(1))
        assert switch.is_source(sd_tap(1, 7))
        assert not switch.is_source(sd_tap(2, 0))


class TestEndpointType:
    def test_str_forms(self):
        assert str(fu_out(3)) == "fu3.out"
        assert str(mem_read(2)) == "mem[2].read"
        assert str(sd_tap(0, 1)) == "sd[0].tap1"

    def test_ordering_is_stable(self):
        eps = [mem_read(2), fu_out(1), cache_read(0)]
        assert sorted(eps) == sorted(eps, key=lambda e: e.key)

    def test_bad_fu_port_rejected(self):
        with pytest.raises(ValueError):
            fu_in(0, "c")

    def test_hashable(self):
        assert len({fu_out(0), fu_out(0), fu_out(1)}) == 2


class TestRouting:
    def test_derive_simple_route(self, switch):
        settings = switch.derive_settings([(mem_read(0), fu_in(0, "a"))])
        assert len(settings) == 1
        assert str(settings[0]) == "mem[0].read -> fu0.a"

    def test_unknown_source_rejected(self, switch):
        with pytest.raises(SwitchRouteError, match="not a switch source"):
            switch.derive_settings([(fu_in(0, "a"), fu_in(0, "b"))])

    def test_unknown_sink_rejected(self, switch):
        with pytest.raises(SwitchRouteError, match="not a switch sink"):
            switch.derive_settings([(fu_out(0), fu_out(1))])

    def test_doubly_driven_sink_rejected(self, switch):
        with pytest.raises(SwitchRouteError, match="already driven"):
            switch.derive_settings(
                [
                    (mem_read(0), fu_in(0, "a")),
                    (mem_read(1), fu_in(0, "a")),
                ]
            )

    def test_fanout_limit(self, switch):
        limit = NSCParameters().switch_max_fanout
        conns = [(fu_out(0), fu_in(i + 1, "a")) for i in range(limit)]
        switch.derive_settings(conns)  # at the limit: fine
        conns.append((fu_out(0), fu_in(limit + 1, "b")))
        with pytest.raises(SwitchRouteError, match="fan-out"):
            switch.derive_settings(conns)

    def test_fanout_counted_per_source(self, switch):
        conns = [
            (fu_out(0), fu_in(1, "a")),
            (fu_out(2), fu_in(1, "b")),
        ]
        assert len(switch.derive_settings(conns)) == 2
