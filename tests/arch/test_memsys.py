"""Memory planes, variable allocation, double-buffered caches."""

import numpy as np
import pytest

from repro.arch.memsys import (
    AllocationError,
    DoubleBufferedCache,
    MemoryPlane,
    PlaneMemory,
    Variable,
)
from repro.arch.params import NSCParameters


@pytest.fixture()
def mem() -> PlaneMemory:
    return PlaneMemory(NSCParameters())


class TestMemoryPlane:
    def test_read_write_roundtrip(self):
        plane = MemoryPlane(0, 1 << 20)
        plane.write(100, np.arange(10.0))
        np.testing.assert_allclose(plane.read(100, 10), np.arange(10.0))

    def test_strided_access(self):
        plane = MemoryPlane(0, 1 << 20)
        plane.write(0, np.arange(5.0), stride=3)
        np.testing.assert_allclose(plane.read(0, 5, stride=3), np.arange(5.0))
        # the gaps stay zero
        assert plane.read(1, 1)[0] == 0.0

    def test_uninitialized_reads_zero(self):
        plane = MemoryPlane(0, 1 << 20)
        np.testing.assert_allclose(plane.read(50, 4), np.zeros(4))

    def test_capacity_enforced(self):
        plane = MemoryPlane(0, 128)
        with pytest.raises(AllocationError):
            plane.write(120, np.arange(20.0))

    def test_negative_address_rejected(self):
        plane = MemoryPlane(0, 128)
        with pytest.raises(AllocationError):
            plane.read(-1, 4)

    def test_lazy_growth_does_not_lose_data(self):
        plane = MemoryPlane(0, 1 << 20)
        plane.write(0, np.ones(4))
        plane.write(10_000, np.full(4, 2.0))
        np.testing.assert_allclose(plane.read(0, 4), np.ones(4))

    def test_empty_read(self):
        plane = MemoryPlane(0, 128)
        assert plane.read(0, 0).size == 0


class TestVariables:
    def test_declare_and_rw(self, mem):
        mem.declare("u", plane=0, length=100)
        mem.write_var("u", np.arange(100.0))
        np.testing.assert_allclose(mem.read_var("u"), np.arange(100.0))

    def test_auto_placement_packs_per_plane(self, mem):
        a = mem.declare("a", plane=0, length=10)
        b = mem.declare("b", plane=0, length=10)
        c = mem.declare("c", plane=1, length=10)
        assert a.offset == 0
        assert b.offset == 10
        assert c.offset == 0

    def test_overlap_rejected(self, mem):
        mem.declare("a", plane=0, length=10, offset=0)
        with pytest.raises(AllocationError, match="overlaps"):
            mem.declare("b", plane=0, length=10, offset=5)

    def test_duplicate_name_rejected(self, mem):
        mem.declare("a", plane=0, length=10)
        with pytest.raises(AllocationError, match="already"):
            mem.declare("a", plane=1, length=10)

    def test_unknown_plane_rejected(self, mem):
        with pytest.raises(AllocationError):
            mem.declare("a", plane=99, length=10)

    def test_undeclared_lookup_rejected(self, mem):
        with pytest.raises(AllocationError, match="undeclared"):
            mem.lookup("nope")

    def test_wrong_size_write_rejected(self, mem):
        mem.declare("a", plane=0, length=10)
        with pytest.raises(AllocationError):
            mem.write_var("a", np.zeros(5))

    def test_plane_capacity_enforced(self, mem):
        words = mem.params.memory_plane_words
        with pytest.raises(AllocationError, match="exceeds"):
            mem.declare("big", plane=0, length=words + 1)

    def test_variable_overlap_predicate(self):
        a = Variable("a", 0, 0, 10)
        b = Variable("b", 0, 10, 10)
        c = Variable("c", 0, 5, 10)
        d = Variable("d", 1, 5, 10)
        assert not a.overlaps(b)
        assert a.overlaps(c)
        assert not a.overlaps(d)


class TestDoubleBufferedCache:
    def test_swap_exchanges_roles(self):
        cache = DoubleBufferedCache(0, 16)
        cache.load_back(np.arange(4.0))
        assert cache.front[0] == 0.0
        cache.swap()
        np.testing.assert_allclose(cache.front[:4], np.arange(4.0))
        assert cache.swaps == 1

    def test_front_rw(self):
        cache = DoubleBufferedCache(0, 16)
        cache.write_front(2, np.ones(3))
        np.testing.assert_allclose(cache.read_front(2, 3), np.ones(3))

    def test_front_and_back_independent(self):
        cache = DoubleBufferedCache(0, 16)
        cache.write_front(0, np.ones(4))
        cache.load_back(np.full(4, 9.0))
        np.testing.assert_allclose(cache.front[:4], np.ones(4))

    def test_bounds_enforced(self):
        cache = DoubleBufferedCache(0, 16)
        with pytest.raises(AllocationError):
            cache.read_front(10, 10)
        with pytest.raises(AllocationError):
            cache.write_front(15, np.ones(2))
        with pytest.raises(AllocationError):
            cache.load_back(np.ones(17))

    def test_strided_front_access(self):
        cache = DoubleBufferedCache(0, 16)
        cache.write_front(0, np.arange(4.0), stride=2)
        np.testing.assert_allclose(cache.read_front(0, 4, stride=2), np.arange(4.0))
