"""NodeConfig: global FU indexing, ALS lookup, inventory."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.funcunit import FUCapability
from repro.arch.node import NodeConfig


class TestAssembly:
    def test_default_fu_count(self, node):
        assert node.n_fus == 32

    def test_default_als_count(self, node):
        assert node.n_als == 16

    def test_fu_indices_are_contiguous(self, node):
        covered = []
        for inst in node.als_instances:
            covered.extend(range(inst.first_fu, inst.first_fu + inst.n_units))
        assert covered == list(range(32))

    def test_singlets_first(self, node):
        kinds = [a.kind for a in node.als_instances]
        assert kinds[:4] == [ALSKind.SINGLET] * 4
        assert kinds[4:12] == [ALSKind.DOUBLET] * 8
        assert kinds[12:] == [ALSKind.TRIPLET] * 4

    def test_als_of_fu_inverse(self, node):
        for fu in range(node.n_fus):
            inst = node.als_of_fu(fu)
            assert inst.first_fu <= fu < inst.first_fu + inst.n_units

    def test_fu_capability_matches_slot(self, node):
        # triplet middle slots are the only plain-FP units
        plain = [
            fu
            for fu in range(node.n_fus)
            if node.fu_capability(fu) == FUCapability.FP
        ]
        assert len(plain) == 4  # one per triplet
        for fu in plain:
            assert node.als_of_fu(fu).kind is ALSKind.TRIPLET

    def test_fus_with_capability(self, node):
        ints = node.fus_with_capability(FUCapability.INT_LOGICAL)
        assert len(ints) == 16  # one per ALS
        mms = node.fus_with_capability(FUCapability.MINMAX)
        assert len(mms) == 12  # doublets + triplets


class TestLookups:
    def test_als_by_name(self, node):
        inst = node.als_by_name("T12")
        assert inst.kind is ALSKind.TRIPLET
        with pytest.raises(KeyError):
            node.als_by_name("Z9")

    def test_als_of_kind(self, node):
        assert len(node.als_of_kind(ALSKind.DOUBLET)) == 8

    def test_bad_indices_rejected(self, node):
        with pytest.raises(IndexError):
            node.als(99)
        with pytest.raises(IndexError):
            node.fu(32)


class TestInventory:
    def test_fig1_inventory(self, node):
        inv = node.inventory()
        assert inv["functional_units"] == 32
        assert inv["memory_planes"] == 16
        assert inv["memory_plane_mbytes"] == 128
        assert inv["node_memory_gbytes"] == pytest.approx(2.0)
        assert inv["caches"] == 16
        assert inv["shift_delay_units"] == 2
        assert inv["peak_mflops"] == pytest.approx(640.0)

    def test_subset_inventory(self, subset_node):
        inv = subset_node.inventory()
        assert inv["functional_units"] == 16
        assert inv["als"]["singlets"] == 0
        assert inv["als"]["triplets"] == 0

    def test_switch_built_over_node(self, node):
        # every FU output appears as a switch source
        from repro.arch.switch import fu_out

        for fu in range(node.n_fus):
            assert node.switch.is_source(fu_out(fu))

    def test_repr_mentions_shape(self, node):
        assert "4S/8D/4T" in repr(node)
