"""Interrupt controller: arming, ordering, delivery, masking."""


from repro.arch.interrupts import (
    DEFAULT_ARMED_KINDS,
    Interrupt,
    InterruptController,
    InterruptKind,
)


class TestPosting:
    def test_default_armed_kinds(self):
        ctl = InterruptController()
        assert ctl.is_armed(InterruptKind.PIPELINE_COMPLETE)
        assert ctl.is_armed(InterruptKind.CONDITION_TRUE)
        assert not ctl.is_armed(InterruptKind.FP_OVERFLOW)

    def test_unarmed_interrupts_dropped(self):
        ctl = InterruptController()
        assert ctl.post(InterruptKind.FP_OVERFLOW, cycle=10) is None
        assert len(ctl.dropped) == 1
        assert ctl.pending() == 0

    def test_arming_enables_delivery(self):
        ctl = InterruptController()
        ctl.arm(InterruptKind.FP_OVERFLOW)
        assert ctl.post(InterruptKind.FP_OVERFLOW, cycle=10) is not None
        assert ctl.pending() == 1

    def test_disarm(self):
        ctl = InterruptController()
        ctl.disarm(InterruptKind.PIPELINE_COMPLETE)
        assert ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=0) is None

    def test_latency_applied(self):
        ctl = InterruptController(latency_cycles=4)
        irq = ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=10)
        assert irq is not None and irq.cycle == 14


class TestDelivery:
    def test_delivery_in_cycle_order(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.CONDITION_TRUE, cycle=20)
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=10)
        delivered = ctl.deliver_until(100)
        assert [i.cycle for i in delivered] == [10, 20]

    def test_deliver_until_respects_cycle(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=10)
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=50)
        assert len(ctl.deliver_until(20)) == 1
        assert ctl.pending() == 1

    def test_handlers_invoked(self):
        ctl = InterruptController()
        seen = []
        ctl.on(InterruptKind.PIPELINE_COMPLETE, lambda irq: seen.append(irq.source))
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=1, source="pipe0")
        ctl.deliver_until(10)
        assert seen == ["pipe0"]

    def test_drain_delivers_everything(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=1_000_000)
        assert len(ctl.drain()) == 1
        assert ctl.pending() == 0

    def test_payload_carried(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.CONDITION_TRUE, cycle=0, payload=0.125)
        irq = ctl.deliver_until(10)[0]
        assert irq.payload == 0.125

    def test_next_pending_peeks(self):
        ctl = InterruptController()
        assert ctl.next_pending() is None
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=5)
        nxt = ctl.next_pending()
        assert nxt is not None and nxt.cycle == 5
        assert ctl.pending() == 1  # peek does not consume

    def test_reset(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=5)
        ctl.deliver_until(10)
        ctl.reset()
        assert ctl.pending() == 0
        assert ctl.delivered == []


class TestConfiguration:
    """The public configuration surface execution engines gate on."""

    def test_fresh_controller_is_default(self):
        ctl = InterruptController()
        assert ctl.is_default_config()
        cfg = ctl.configuration()
        assert cfg.armed == DEFAULT_ARMED_KINDS
        assert cfg.handler_kinds == ()
        assert cfg.pending == 0
        assert cfg.is_default

    def test_arm_and_disarm_change_config(self):
        ctl = InterruptController()
        ctl.arm(InterruptKind.FP_OVERFLOW)
        assert not ctl.is_default_config()
        assert InterruptKind.FP_OVERFLOW in ctl.configuration().armed
        ctl.disarm(InterruptKind.FP_OVERFLOW)
        assert ctl.is_default_config()
        ctl.disarm(InterruptKind.CONDITION_FALSE)
        assert not ctl.is_default_config()

    def test_handlers_and_pending_break_default(self):
        ctl = InterruptController()
        ctl.on(InterruptKind.PIPELINE_COMPLETE, lambda irq: None)
        cfg = ctl.configuration()
        assert cfg.handler_kinds == (InterruptKind.PIPELINE_COMPLETE,)
        assert not ctl.is_default_config()

        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=3)
        assert ctl.configuration().pending == 1
        assert not ctl.is_default_config()
        ctl.drain()
        assert ctl.is_default_config()

    def test_configuration_is_a_snapshot(self):
        ctl = InterruptController()
        cfg = ctl.configuration()
        ctl.arm(InterruptKind.FP_INVALID)
        assert InterruptKind.FP_INVALID not in cfg.armed  # frozen copy
