"""Interrupt controller: arming, ordering, delivery, masking."""


from repro.arch.interrupts import Interrupt, InterruptController, InterruptKind


class TestPosting:
    def test_default_armed_kinds(self):
        ctl = InterruptController()
        assert ctl.is_armed(InterruptKind.PIPELINE_COMPLETE)
        assert ctl.is_armed(InterruptKind.CONDITION_TRUE)
        assert not ctl.is_armed(InterruptKind.FP_OVERFLOW)

    def test_unarmed_interrupts_dropped(self):
        ctl = InterruptController()
        assert ctl.post(InterruptKind.FP_OVERFLOW, cycle=10) is None
        assert len(ctl.dropped) == 1
        assert ctl.pending() == 0

    def test_arming_enables_delivery(self):
        ctl = InterruptController()
        ctl.arm(InterruptKind.FP_OVERFLOW)
        assert ctl.post(InterruptKind.FP_OVERFLOW, cycle=10) is not None
        assert ctl.pending() == 1

    def test_disarm(self):
        ctl = InterruptController()
        ctl.disarm(InterruptKind.PIPELINE_COMPLETE)
        assert ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=0) is None

    def test_latency_applied(self):
        ctl = InterruptController(latency_cycles=4)
        irq = ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=10)
        assert irq is not None and irq.cycle == 14


class TestDelivery:
    def test_delivery_in_cycle_order(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.CONDITION_TRUE, cycle=20)
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=10)
        delivered = ctl.deliver_until(100)
        assert [i.cycle for i in delivered] == [10, 20]

    def test_deliver_until_respects_cycle(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=10)
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=50)
        assert len(ctl.deliver_until(20)) == 1
        assert ctl.pending() == 1

    def test_handlers_invoked(self):
        ctl = InterruptController()
        seen = []
        ctl.on(InterruptKind.PIPELINE_COMPLETE, lambda irq: seen.append(irq.source))
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=1, source="pipe0")
        ctl.deliver_until(10)
        assert seen == ["pipe0"]

    def test_drain_delivers_everything(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=1_000_000)
        assert len(ctl.drain()) == 1
        assert ctl.pending() == 0

    def test_payload_carried(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.CONDITION_TRUE, cycle=0, payload=0.125)
        irq = ctl.deliver_until(10)[0]
        assert irq.payload == 0.125

    def test_next_pending_peeks(self):
        ctl = InterruptController()
        assert ctl.next_pending() is None
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=5)
        nxt = ctl.next_pending()
        assert nxt is not None and nxt.cycle == 5
        assert ctl.pending() == 1  # peek does not consume

    def test_reset(self):
        ctl = InterruptController()
        ctl.post(InterruptKind.PIPELINE_COMPLETE, cycle=5)
        ctl.deliver_until(10)
        ctl.reset()
        assert ctl.pending() == 0
        assert ctl.delivered == []
