"""Renderers: the regenerated figures must be deterministic and faithful."""

import numpy as np
import pytest

from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.editor.render_ascii import (
    auto_layout,
    render_datapath,
    render_execution,
    render_icon_catalog,
    render_pipeline_diagram,
    render_window,
)
from repro.editor.render_svg import render_pipeline_svg
from repro.editor.session import EditorSession
from repro.sim.machine import NSCMachine
from repro.sim.pipeline_exec import execute_image


@pytest.fixture(scope="module")
def jacobi():
    node = NodeConfig()
    setup = build_jacobi_program(node, (5, 5, 5))
    return node, setup


class TestFigureRenders:
    def test_fig4_icon_catalog(self):
        text = render_icon_catalog()
        for name in ("singlet", "doublet", "doublet*", "triplet"):
            assert name in text
        assert "bypass" in text  # the second doublet form
        assert "H" in text       # heavy border: the double box

    def test_fig1_datapath(self):
        text = render_datapath(NodeConfig())
        assert "Hyperspace Router" in text
        assert "FLONET" in text
        assert "16 x 128 MB" in text
        assert "640 MFLOPS" in text
        assert "Shift/Delay x 2" in text

    def test_fig11_jacobi_pipeline(self, jacobi):
        _node, setup = jacobi
        text = render_pipeline_diagram(setup.program.pipelines[1])
        assert "point Jacobi update" in text
        assert "maxabs" in text          # the residual unit
        assert "condition: fu" in text   # the convergence check
        assert "sd[0].tap" in text       # neighbour taps
        assert "dma: mem[0] read u" in text

    def test_fig5_window(self):
        session = EditorSession()
        session.declare_variable("u", 0, 64)
        text = session.render()
        assert "CONTROL PANEL" in text
        assert "DECLARATIONS" in text
        assert "CONTROL FLOW" in text
        assert "[ " in text  # message strip

    def test_render_is_deterministic(self, jacobi):
        _node, setup = jacobi
        a = render_pipeline_diagram(setup.program.pipelines[1])
        b = render_pipeline_diagram(setup.program.pipelines[1])
        assert a == b

    def test_rubber_band_visible(self):
        from repro.arch.switch import fu_out
        from repro.editor.render_ascii import render_canvas

        session = EditorSession()
        session.select_icon("doublet")
        icon = session.drag_to(40, 2)
        session.start_connection(fu_out(icon.first_fu))
        session.canvas.drag_rubber_band(70, 10)
        text = render_canvas(session.canvas, session.diagram)
        assert "*" in text and "<- from" in text


class TestAutoLayout:
    def test_no_overlapping_als_icons(self, jacobi):
        _node, setup = jacobi
        canvas = auto_layout(setup.program.pipelines[1])
        boxes = [
            (p.x, p.y, p.width, p.height) for p in canvas.placements.values()
        ]
        for i, (x1, y1, w1, h1) in enumerate(boxes):
            for x2, y2, w2, h2 in boxes[i + 1 :]:
                overlap = not (
                    x1 + w1 <= x2 or x2 + w2 <= x1
                    or y1 + h1 <= y2 or y2 + h2 <= y1
                )
                assert not overlap, "icons overlap in the auto layout"

    def test_many_als_wrap_to_rows(self):
        from repro.diagram.pipeline import PipelineDiagram

        d = PipelineDiagram()
        node = NodeConfig()
        for inst in node.als_instances[:10]:
            d.add_als(inst.als_id, inst.kind, inst.first_fu)
        canvas = auto_layout(d)
        ys = {p.y for p in canvas.placements.values()}
        assert len(ys) > 1  # wrapped into more than one row


class TestExecutionView:
    def test_debug_annotation_shows_values(self, jacobi):
        """The §6 debugging extension: values flowing through the diagram."""
        node, setup = jacobi
        program = MicrocodeGenerator(node).generate(setup.program)
        machine = NSCMachine(node)
        machine.load_program(program)
        u0 = np.zeros((5, 5, 5))
        u0[2, 2, 2] = 1.0
        load_jacobi_inputs(machine, setup, u0, np.zeros((5, 5, 5)))
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        res = execute_image(program.images[1], machine, keep_outputs=True)
        text = render_execution(program.images[1], res)
        assert "maxabs" in text
        assert "condition fu" in text
        assert "last=" in text

    def test_uncaptured_streams_flagged(self, jacobi):
        node, setup = jacobi
        program = MicrocodeGenerator(node).generate(setup.program)
        machine = NSCMachine(node)
        machine.load_program(program)
        load_jacobi_inputs(
            machine, setup, np.zeros((5, 5, 5)), np.zeros((5, 5, 5))
        )
        execute_image(program.images[0], machine)
        machine.swap_caches(0, 1)
        res = execute_image(program.images[1], machine)  # no keep_outputs
        text = render_execution(program.images[1], res)
        assert "not captured" in text


class TestSVG:
    def test_svg_well_formed(self, jacobi):
        import xml.etree.ElementTree as ET

        _node, setup = jacobi
        svg = render_pipeline_svg(setup.program.pipelines[1])
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert len(list(root)) > 10

    def test_svg_mentions_ops(self, jacobi):
        _node, setup = jacobi
        svg = render_pipeline_svg(setup.program.pipelines[1])
        assert "maxabs" in svg
        assert "fscale" in svg

    def test_svg_deterministic(self, jacobi):
        _node, setup = jacobi
        a = render_pipeline_svg(setup.program.pipelines[1])
        b = render_pipeline_svg(setup.program.pipelines[1])
        assert a == b
