"""Canvas: placement, hit testing, pads, rubber banding."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.switch import DeviceKind, fu_in, fu_out
from repro.diagram.icons import make_als_icon, icon_for_endpoint_device
from repro.editor.canvas import Canvas, CanvasError, ICON_WIDTH


@pytest.fixture()
def canvas() -> Canvas:
    return Canvas(width=100, height=40)


@pytest.fixture()
def doublet():
    return make_als_icon(4, ALSKind.DOUBLET, first_fu=4)


class TestPlacement:
    def test_place_and_lookup(self, canvas, doublet):
        placement = canvas.place(doublet, 10, 5)
        assert placement.width == ICON_WIDTH
        assert canvas.placements["D4"] is placement

    def test_duplicate_placement_rejected(self, canvas, doublet):
        canvas.place(doublet, 10, 5)
        with pytest.raises(CanvasError, match="already placed"):
            canvas.place(doublet, 30, 5)

    def test_out_of_bounds_rejected(self, canvas, doublet):
        with pytest.raises(CanvasError, match="outside"):
            canvas.place(doublet, 95, 5)
        with pytest.raises(CanvasError):
            canvas.place(doublet, 10, 38)

    def test_move(self, canvas, doublet):
        canvas.place(doublet, 10, 5)
        moved = canvas.move("D4", 30, 8)
        assert (moved.x, moved.y) == (30, 8)

    def test_move_unknown_rejected(self, canvas):
        with pytest.raises(CanvasError, match="no icon"):
            canvas.move("Z9", 0, 0)

    def test_remove_scrubs_wires(self, canvas, doublet):
        canvas.place(doublet, 10, 5)
        canvas.add_wire(fu_out(4), fu_in(5, "a"))
        canvas.remove("D4")
        assert canvas.wires == []

    def test_occupancy(self, canvas, doublet):
        assert canvas.occupancy() == 0.0
        canvas.place(doublet, 10, 5)
        assert 0 < canvas.occupancy() < 1

    def test_suggest_position_flows_right_then_wraps(self, canvas):
        icons = [make_als_icon(i, ALSKind.SINGLET, i) for i in range(4)]
        positions = []
        for icon in icons:
            x, y = canvas.suggest_position()
            canvas.place(icon, x, y)
            positions.append((x, y))
        xs = [p[0] for p in positions]
        assert xs == sorted(xs) or positions[-1][1] > positions[0][1]


class TestHitTesting:
    def test_hit_inside_icon(self, canvas, doublet):
        canvas.place(doublet, 10, 5)
        assert canvas.hit_test(12, 6) == "D4"
        assert canvas.hit_test(80, 30) is None

    def test_topmost_wins(self, canvas):
        a = make_als_icon(0, ALSKind.SINGLET, 0)
        b = make_als_icon(1, ALSKind.SINGLET, 1)
        canvas.place(a, 10, 5)
        canvas.place(b, 12, 6)  # overlapping, placed later
        assert canvas.hit_test(13, 7) == "S1"

    def test_pad_positions_distinct(self, canvas, doublet):
        placement = canvas.place(doublet, 10, 5)
        positions = {placement.pad_position(p) for p in doublet.pads()}
        assert len(positions) == len(doublet.pads())

    def test_pad_at_finds_pad(self, canvas, doublet):
        placement = canvas.place(doublet, 10, 5)
        pad = doublet.pads()[0]
        x, y = placement.pad_position(pad)
        assert canvas.pad_at(x, y) == pad
        assert canvas.pad_at(0, 0) is None

    def test_endpoint_position(self, canvas, doublet):
        canvas.place(doublet, 10, 5)
        x, y = canvas.endpoint_position(fu_out(4))
        assert x == 10 + ICON_WIDTH
        with pytest.raises(CanvasError):
            canvas.endpoint_position(fu_out(20))


class TestRubberBand:
    def test_full_gesture(self, canvas, doublet):
        canvas.place(doublet, 10, 5)
        canvas.start_rubber_band(fu_out(4))
        canvas.drag_rubber_band(50, 20)
        assert canvas.rubber_band.x == 50
        anchor = canvas.finish_rubber_band()
        assert anchor == fu_out(4)
        assert canvas.rubber_band is None

    def test_drag_without_start_rejected(self, canvas):
        with pytest.raises(CanvasError):
            canvas.drag_rubber_band(1, 1)
        with pytest.raises(CanvasError):
            canvas.finish_rubber_band()

    def test_wire_bookkeeping(self, canvas):
        canvas.add_wire(fu_out(4), fu_in(5, "a"))
        canvas.remove_wire(fu_out(4), fu_in(5, "a"))
        assert canvas.wires == []
        with pytest.raises(CanvasError):
            canvas.remove_wire(fu_out(4), fu_in(5, "a"))


class TestDeviceIconGeometry:
    def test_sd_icon_is_tall(self, canvas):
        icon = icon_for_endpoint_device(DeviceKind.SHIFT_DELAY, 0, n_taps=8)
        placement = canvas.place(icon, 10, 2)
        assert placement.height > 30

    def test_memory_icon_is_short(self, canvas):
        icon = icon_for_endpoint_device(DeviceKind.MEMORY, 0)
        placement = canvas.place(icon, 10, 2)
        assert placement.height <= 8
