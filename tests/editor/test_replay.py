"""Diagram replay: the compiler-back-end mode and the C2 action counter."""

import pytest

from repro.arch.node import NodeConfig
from repro.compose.jacobi import build_jacobi_program
from repro.compose.kernels import build_saxpy_program
from repro.diagram.serialize import program_to_dict
from repro.editor.replay import ReplayError, action_cost, replay_program
from repro.editor.session import EditorSession


@pytest.fixture(scope="module")
def node() -> NodeConfig:
    return NodeConfig()


class TestReplay:
    def test_replayed_program_is_semantically_identical(self, node):
        setup = build_jacobi_program(node, (6, 6, 6))
        session = replay_program(setup.program, EditorSession(node=node))
        assert program_to_dict(session.program) == program_to_dict(setup.program)

    def test_replayed_program_checks_clean(self, node):
        setup = build_jacobi_program(node, (6, 6, 6))
        session = replay_program(setup.program, EditorSession(node=node))
        assert session.check_all().ok

    def test_geometry_created_for_every_als(self, node):
        setup = build_jacobi_program(node, (6, 6, 6))
        session = replay_program(setup.program, EditorSession(node=node))
        session.goto(1)
        assert len(session.canvas.placements) == len(
            setup.program.pipelines[1].als_uses
        )

    def test_action_cost_scales_with_program_size(self, node):
        small = action_cost(build_saxpy_program(node, 64).program)
        big = action_cost(build_jacobi_program(node, (6, 6, 6)).program)
        assert 0 < small < big

    def test_action_cost_is_deterministic(self, node):
        prog = build_saxpy_program(node, 64).program
        assert action_cost(prog) == action_cost(prog)

    def test_replay_into_dirty_pipeline_rejected(self, node):
        setup = build_saxpy_program(node, 64)
        session = EditorSession(node=node)
        session.select_icon("doublet")
        session.drag_to(40, 2)
        from repro.editor.replay import replay_pipeline

        with pytest.raises(ReplayError, match="not empty"):
            replay_pipeline(session, setup.program.pipelines[0])

    def test_illegal_diagram_fails_to_replay(self, node):
        from repro.arch.funcunit import Opcode

        setup = build_saxpy_program(node, 64)
        # corrupt: put a min/max op on an integer-capable unit
        diagram = setup.program.pipelines[0]
        fu = sorted(diagram.fu_ops)[0]
        diagram.fu_ops[fu] = diagram.fu_ops[fu].__class__(
            fu=fu, opcode=Opcode.MAX, constant=0.0
        )
        with pytest.raises(ReplayError):
            replay_program(setup.program, EditorSession(node=node))
