"""Undo/redo command stack."""

import pytest

from repro.editor.commands import Command, CommandError, CommandStack


def _counter_command(state, name="inc"):
    return Command(
        name=name,
        do=lambda: state.__setitem__("n", state["n"] + 1),
        undo=lambda: state.__setitem__("n", state["n"] - 1),
    )


class TestStack:
    def test_execute_applies(self):
        state = {"n": 0}
        stack = CommandStack()
        stack.execute(_counter_command(state))
        assert state["n"] == 1

    def test_undo_reverses(self):
        state = {"n": 0}
        stack = CommandStack()
        stack.execute(_counter_command(state))
        stack.undo()
        assert state["n"] == 0

    def test_redo_reapplies(self):
        state = {"n": 0}
        stack = CommandStack()
        stack.execute(_counter_command(state))
        stack.undo()
        stack.redo()
        assert state["n"] == 1

    def test_new_command_clears_redo(self):
        state = {"n": 0}
        stack = CommandStack()
        stack.execute(_counter_command(state))
        stack.undo()
        stack.execute(_counter_command(state, "other"))
        assert not stack.can_redo
        with pytest.raises(CommandError):
            stack.redo()

    def test_empty_undo_rejected(self):
        with pytest.raises(CommandError):
            CommandStack().undo()

    def test_history_names(self):
        state = {"n": 0}
        stack = CommandStack()
        stack.execute(_counter_command(state, "a"))
        stack.execute(_counter_command(state, "b"))
        assert stack.history == ["a", "b"]

    def test_history_bounded(self):
        state = {"n": 0}
        stack = CommandStack(limit=3)
        for i in range(5):
            stack.execute(_counter_command(state, f"c{i}"))
        assert len(stack.history) == 3
        assert stack.history == ["c2", "c3", "c4"]

    def test_undo_order_is_lifo(self):
        log = []
        stack = CommandStack()
        for name in ("first", "second"):
            stack.execute(
                Command(name, do=lambda: None,
                        undo=lambda n=name: log.append(n))
            )
        stack.undo()
        stack.undo()
        assert log == ["second", "first"]

    def test_clear(self):
        state = {"n": 0}
        stack = CommandStack()
        stack.execute(_counter_command(state))
        stack.clear()
        assert not stack.can_undo and not stack.can_redo
