"""Pop-up menus and the Fig. 9 DMA subwindow."""

import pytest

from repro.arch.als import ALSKind
from repro.arch.dma import Direction
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import cache_read, fu_in, mem_read, mem_write
from repro.checker.checker import Checker
from repro.diagram.pipeline import PipelineDiagram
from repro.editor.menus import (
    DMASubwindow,
    MenuError,
    PopupMenu,
    MenuEntry,
    build_fu_op_menu,
    build_pad_menu,
)


@pytest.fixture()
def checker() -> Checker:
    return Checker(NodeConfig())


@pytest.fixture()
def diagram() -> PipelineDiagram:
    d = PipelineDiagram()
    d.add_als(4, ALSKind.DOUBLET, first_fu=4)
    return d


class TestPopupMenu:
    def test_choose_by_label(self):
        menu = PopupMenu(title="t", entries=[MenuEntry("x", 42)])
        assert menu.choose("x") == 42

    def test_unknown_label_rejected(self):
        menu = PopupMenu(title="t")
        with pytest.raises(MenuError):
            menu.choose("nope")

    def test_disabled_entry_rejected(self):
        menu = PopupMenu(title="t", entries=[MenuEntry("x", 1, enabled=False)])
        with pytest.raises(MenuError, match="disabled"):
            menu.choose("x")


class TestPadMenu:
    def test_menu_lists_external_and_internal_choices(self, checker, diagram):
        """§5: 'external connections to other function units, caches,
        memories, or shift/delay units, or else internal connections for
        feedback loops or register file data'."""
        menu = build_pad_menu(checker, diagram, fu_in(5, "a"))
        labels = menu.labels()
        assert "mem[0].read" in labels
        assert "cache[0].read" in labels
        assert "internal from unit 0" in labels
        assert "feedback loop" in labels
        assert "register file constant..." in labels

    def test_illegal_sources_not_offered(self, checker, diagram):
        diagram.set_fu_op(4, Opcode.FADD)
        diagram.connect(mem_read(0), fu_in(4, "a"))
        menu = build_pad_menu(checker, diagram, fu_in(4, "b"))
        labels = menu.labels()
        assert "mem[1].read" not in labels  # second plane for fu4
        assert "mem[0].read" in labels

    def test_memory_write_pad_menu(self, checker, diagram):
        menu = build_pad_menu(checker, diagram, mem_write(3))
        # no internal/feedback entries for a non-FU pad
        assert "feedback loop" not in menu.labels()
        assert any(label.startswith("fu") for label in menu.labels())


class TestFuOpMenu:
    def test_menu_filtered_by_capability(self, checker):
        """Fig. 10: the menu shows only what the unit can perform."""
        int_menu = build_fu_op_menu(checker, 4)  # integer-capable
        mm_menu = build_fu_op_menu(checker, 5)   # min/max-capable
        assert "iadd" in int_menu.labels()
        assert "max" not in int_menu.labels()
        assert "max" in mm_menu.labels()
        assert "iadd" not in mm_menu.labels()

    def test_choose_returns_opcode(self, checker):
        menu = build_fu_op_menu(checker, 4)
        assert menu.choose("fadd") is Opcode.FADD


class TestDMASubwindow:
    def test_fill_and_commit(self):
        sub = DMASubwindow(endpoint=mem_read(3))
        sub.fill("variable", "u")
        sub.fill("offset", 10_000)
        sub.fill("stride", 4)
        spec = sub.to_spec()
        assert spec.device == 3
        assert spec.direction is Direction.READ
        assert spec.offset == 10_000
        assert spec.stride == 4

    def test_write_pad_gets_write_direction(self):
        sub = DMASubwindow(endpoint=mem_write(3))
        assert sub.direction is Direction.WRITE

    def test_unknown_field_rejected(self):
        sub = DMASubwindow(endpoint=mem_read(3))
        with pytest.raises(MenuError, match="no field"):
            sub.fill("color", "red")

    def test_template_reminds_choices(self):
        """§5: subwindow templates 'remind him of his choices'."""
        sub = DMASubwindow(endpoint=mem_read(3))
        sub.fill("variable", "u")
        sub.fill("stride", 4)
        text = sub.template()
        assert "Plane [3]" in text
        assert "u" in text
        assert "4" in text

    def test_cache_template(self):
        sub = DMASubwindow(endpoint=cache_read(7))
        assert "Cache [7]" in sub.template()
