"""EditorSession: the scripted interaction of §5, end to end."""

import pytest

from repro.arch.funcunit import Opcode
from repro.arch.switch import DeviceKind, fu_in, fu_out, mem_read, mem_write
from repro.diagram.pipeline import InputMod, InputModKind
from repro.editor.session import EditorError, EditorSession


@pytest.fixture()
def session() -> EditorSession:
    return EditorSession()


class TestIconWorkflow:
    """Figs. 6-7: select in the control panel, drag into the drawing area."""

    def test_select_then_drag_places_als(self, session):
        session.select_icon("triplet")
        icon = session.drag_to(40, 2)
        assert icon is not None and icon.icon_id.startswith("T")
        assert len(session.diagram.als_uses) == 1
        assert "placed" in session.message

    def test_each_drag_allocates_a_fresh_als(self, session):
        ids = set()
        for _ in range(4):
            session.select_icon("doublet")
            ids.add(session.drag_to(*session.canvas.suggest_position()).icon_id)
        assert len(ids) == 4

    def test_machine_exhaustion_reported(self, session):
        for i in range(4):
            session.select_icon("triplet")
            assert session.drag_to(2 + 20 * i, 2) is not None
        session.select_icon("triplet")
        assert session.drag_to(82, 2) is None
        assert "no free triplet" in session.message

    def test_bypassed_doublet_palette_entry(self, session):
        session.select_icon("doublet-bypassed")
        icon = session.drag_to(40, 2)
        assert icon.bypassed_slots == (1,)

    def test_drag_without_selection_fails_softly(self, session):
        assert session.drag_to(40, 2) is None
        assert "no icon selected" in session.message

    def test_unknown_palette_icon_raises(self, session):
        with pytest.raises(EditorError):
            session.select_icon("quadlet")

    def test_place_device_icons(self, session):
        assert session.place_device(DeviceKind.MEMORY, 0, 2, 2) is not None
        assert session.place_device(DeviceKind.CACHE, 3, 2, 10) is not None
        assert session.place_device(DeviceKind.MEMORY, 99, 2, 20) is None
        assert "no mem numbered 99" in session.message

    def test_move_icon(self, session):
        session.select_icon("singlet")
        icon = session.drag_to(20, 2)
        assert session.move_icon(icon.icon_id, 40, 4)
        assert session.canvas.placements[icon.icon_id].x == 40


class TestWiring:
    """Fig. 8: rubber-band connections vetted by the checker."""

    def _place_doublet(self, session):
        session.select_icon("doublet")
        return session.drag_to(40, 2)

    def test_legal_connection_commits(self, session):
        icon = self._place_doublet(session)
        fu = icon.first_fu
        report = session.connect(mem_read(0), fu_in(fu, "a"))
        assert report.ok
        assert (mem_read(0), fu_in(fu, "a")) in session.diagram.connections

    def test_illegal_connection_rolls_back(self, session):
        icon = self._place_doublet(session)
        fu = icon.first_fu
        session.connect(mem_read(0), fu_in(fu, "a"))
        report = session.connect(mem_read(1), fu_in(fu, "a"))
        assert not report.ok
        assert len(session.diagram.connections) == 1
        assert "already driven" in session.message

    def test_rubber_band_gesture(self, session):
        icon = self._place_doublet(session)
        session.place_device(DeviceKind.MEMORY, 1, 2, 2)
        fu = icon.first_fu
        session.start_connection(fu_out(fu))
        report = session.finish_connection(mem_write(1))
        assert report.ok
        assert (fu_out(fu), mem_write(1)) in session.diagram.connections

    def test_rubber_band_needs_placed_pad(self, session):
        with pytest.raises(EditorError):
            session.start_connection(fu_out(4))

    def test_disconnect(self, session):
        icon = self._place_doublet(session)
        fu = icon.first_fu
        session.connect(mem_read(0), fu_in(fu, "a"))
        assert session.disconnect(mem_read(0), fu_in(fu, "a"))
        assert session.diagram.connections == []

    def test_pad_menu_offers_legal_sources(self, session):
        icon = self._place_doublet(session)
        menu = session.pad_menu(fu_in(icon.first_fu, "a"))
        assert len(menu) > 0

    def test_input_mods(self, session):
        icon = self._place_doublet(session)
        fu = icon.first_fu
        report = session.set_input_mod(
            fu, "b", InputMod(InputModKind.CONSTANT, value=6.0)
        )
        assert report.ok
        assert session.diagram.input_mods[(fu, "b")].value == 6.0

    def test_mod_conflicts_with_wire(self, session):
        icon = self._place_doublet(session)
        fu = icon.first_fu
        session.connect(mem_read(0), fu_in(fu, "a"))
        report = session.set_input_mod(
            fu, "a", InputMod(InputModKind.CONSTANT, value=1.0)
        )
        assert not report.ok

    def test_set_delay_bounds(self, session):
        icon = self._place_doublet(session)
        fu = icon.first_fu
        assert session.set_delay(fu, "a", 5).ok
        assert not session.set_delay(fu, "a", 10_000).ok


class TestFUProgramming:
    """Fig. 10: operation menus."""

    def test_assign_op_via_checker(self, session):
        session.select_icon("doublet")
        icon = session.drag_to(40, 2)
        fu = icon.first_fu
        assert session.assign_op(fu, Opcode.IADD).ok
        assert not session.assign_op(fu, Opcode.MAX).ok  # wrong circuitry
        assert session.diagram.fu_ops[fu].opcode is Opcode.IADD

    def test_menu_matches_capability(self, session):
        session.select_icon("doublet")
        icon = session.drag_to(40, 2)
        menu = session.fu_menu(icon.first_fu)
        assert "iadd" in menu.labels()


class TestDMAWorkflow:
    """Fig. 9: the pop-up subwindow."""

    def test_full_popup_flow(self, session):
        session.declare_variable("u", 0, 128)
        sub = session.dma_popup(mem_read(0))
        session.fill_dma_field(sub, "variable", "u")
        session.fill_dma_field(sub, "stride", 2)
        assert session.commit_dma(sub).ok
        assert session.diagram.dma[mem_read(0)].stride == 2

    def test_undeclared_variable_refused(self, session):
        sub = session.dma_popup(mem_read(0))
        session.fill_dma_field(sub, "variable", "ghost")
        assert not session.commit_dma(sub).ok
        assert "not declared" in session.message

    def test_popup_only_for_memory_or_cache(self, session):
        with pytest.raises(EditorError):
            session.dma_popup(fu_in(4, "a"))


class TestPipelinePanelOps:
    def test_new_delete_copy_goto(self, session):
        session.new_pipeline("second")
        assert session.current == 1
        session.copy_pipeline()
        assert len(session.program.pipelines) == 3
        session.goto(0)
        assert session.current == 0
        session.delete_pipeline(2)
        assert len(session.program.pipelines) == 2

    def test_cannot_delete_last_pipeline(self, session):
        session.delete_pipeline()
        assert len(session.program.pipelines) == 1
        assert "cannot delete" in session.message

    def test_scrolling_clamps(self, session):
        session.scroll_backward()
        assert session.current == 0
        session.new_pipeline()
        session.scroll_forward()
        assert session.current == 1
        session.scroll_forward()
        assert session.current == 1

    def test_canvases_track_pipelines(self, session):
        session.select_icon("singlet")
        session.drag_to(20, 2)
        session.new_pipeline()
        assert len(session.canvas.placements) == 0
        session.goto(0)
        assert len(session.canvas.placements) == 1


class TestUndoRedo:
    def test_undo_place(self, session):
        session.select_icon("doublet")
        session.drag_to(40, 2)
        assert session.undo()
        assert session.diagram.als_uses == {}
        assert session.canvas.placements == {}
        assert session.redo()
        assert len(session.diagram.als_uses) == 1

    def test_undo_connection(self, session):
        session.select_icon("doublet")
        icon = session.drag_to(40, 2)
        session.connect(mem_read(0), fu_in(icon.first_fu, "a"))
        session.undo()
        assert session.diagram.connections == []

    def test_undo_empty_reports(self, session):
        assert not session.undo()
        assert "nothing to undo" in session.message


class TestPersistence:
    def test_save_load_round_trip(self, session, tmp_path):
        session.declare_variable("u", 0, 64)
        session.select_icon("triplet")
        icon = session.drag_to(40, 2)
        session.assign_op(icon.first_fu, Opcode.FADD)
        session.connect(mem_read(0), fu_in(icon.first_fu, "a"))
        path = str(tmp_path / "session.json")
        session.save(path)
        loaded = EditorSession.load(path)
        assert "u" in loaded.program.declarations
        assert len(loaded.diagram.als_uses) == 1
        assert loaded.diagram.fu_ops[icon.first_fu].opcode is Opcode.FADD
        # geometry restored too
        assert icon.icon_id in loaded.canvases[0].placements

    def test_action_counting(self, session):
        before = session.action_count
        session.select_icon("singlet")
        session.drag_to(20, 2)
        assert session.action_count == before + 2
