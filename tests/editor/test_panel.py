"""The control panel: palette buttons and selection protocol."""

import pytest

from repro.arch.als import ALSKind
from repro.editor.panel import (
    ControlPanel,
    PaletteIcon,
    PanelError,
    PanelOp,
)


class TestPalette:
    def test_every_figure4_form_present(self):
        values = {icon.value for icon in PaletteIcon}
        assert {"singlet", "doublet", "doublet-bypassed", "triplet"} <= values

    def test_device_icons_present(self):
        """§5 lists memory planes and shift/delay units as 'other icons
        which would be useful' — we provide them."""
        values = {icon.value for icon in PaletteIcon}
        assert {"memory-plane", "cache", "shift-delay"} <= values

    def test_als_kind_mapping(self):
        assert PaletteIcon.SINGLET.als_kind is ALSKind.SINGLET
        assert PaletteIcon.DOUBLET_BYPASSED.als_kind is ALSKind.DOUBLET
        assert PaletteIcon.MEMORY_PLANE.als_kind is None

    def test_bypassed_slots(self):
        assert PaletteIcon.DOUBLET_BYPASSED.bypassed_slots == (1,)
        assert PaletteIcon.DOUBLET.bypassed_slots == ()


class TestSelectionProtocol:
    def test_select_then_take(self):
        panel = ControlPanel()
        panel.select_icon("triplet")
        assert panel.take_selection() is PaletteIcon.TRIPLET
        # selection is consumed
        with pytest.raises(PanelError, match="no icon selected"):
            panel.take_selection()

    def test_reselect_replaces(self):
        panel = ControlPanel()
        panel.select_icon("singlet")
        panel.select_icon("doublet")
        assert panel.take_selection() is PaletteIcon.DOUBLET

    def test_unknown_button(self):
        with pytest.raises(PanelError, match="no icon button"):
            ControlPanel().select_icon("hexlet")

    def test_buttons_cover_editor_operations(self):
        """§5: insert, delete, copy, renumber, scroll, goto."""
        buttons = ControlPanel().buttons()
        for op in PanelOp:
            assert op.value in buttons
        assert "insert" in buttons and "renumber" in buttons
