"""The analysis acceptance bar on the real corpus.

Negative side: every program the repo actually ships — the registry
solvers at the bench shapes and the multinode local program — must
analyze with *zero* findings; a finding on a seed program is a CI
failure and the finding itself is the assertion message.  Positive
side: every seeded defect class must be flagged with its expected rule
on every solver (zero false negatives).  In between, the shared
plan-safety engine is pinned against the executors' own answers:
``screen_coverage`` against :meth:`ImageKernel._checked_fus`, and
``fusion_eligibility`` against :func:`check_batchable`.
"""

import pytest

from repro.analysis import analyze_program, fusion_eligibility, screen_coverage
from repro.analysis.seeding import SEEDED_DEFECTS
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program
from repro.compose.registry import SOLVERS
from repro.diagram.program import ExecPipeline, Halt, LoopUntil, SwapVars
from repro.sim import batchplan, progplan


def _corpus(node):
    generator = MicrocodeGenerator(node, run_checker=False)
    for entry in SOLVERS.values():
        for n in (7, 9):
            setup = entry.build_setup(
                node, (n, n, n), eps=1e-4, max_iterations=100, omega=1.5
            )
            yield f"{entry.name}-{n}", generator.generate(setup.program)


@pytest.fixture(scope="module")
def corpus(node):
    return list(_corpus(node))


class TestCorpusClean:
    def test_registry_corpus_analyzes_clean(self, corpus):
        for name, program in corpus:
            verdict = analyze_program(program)
            assert verdict.clean, (
                f"{name} must analyze clean but reported:\n"
                + verdict.format()
            )
            assert verdict.ok and verdict.issues_walked > 0
            assert verdict.fusion_eligible

    def test_multinode_local_program_analyzes_clean(self, node):
        # the hypercube slab program (loop=False: fixed-sweep body)
        setup = build_jacobi_program(node, (6, 6, 12), eps=1e-30, loop=False)
        program = MicrocodeGenerator(node, run_checker=False).generate(
            setup.program
        )
        verdict = analyze_program(program)
        assert verdict.clean, verdict.format()


class TestSeededDefects:
    """Zero false negatives: every planted defect class is reported."""

    @pytest.mark.parametrize("rule", sorted(SEEDED_DEFECTS))
    def test_defect_class_flagged_on_every_solver(self, rule, corpus):
        injector = SEEDED_DEFECTS[rule]
        for name, program in corpus:
            mutant = injector(program)
            verdict = analyze_program(mutant)
            rules = {f.rule for f in verdict.findings}
            assert rule in rules, (
                f"seeded {rule} on {name} went undetected "
                f"(reported only {sorted(rules)})"
            )

    def test_error_defects_break_static_ok(self, corpus):
        _name, program = corpus[0]
        for rule in ("double-write", "uninit-read", "raw-race",
                     "port-conflict"):
            verdict = analyze_program(SEEDED_DEFECTS[rule](program))
            assert not verdict.ok, rule

    def test_mutation_leaves_original_untouched(self, corpus):
        name, program = corpus[0]
        before = program.fingerprint()
        n_writes = [len(im.write_programs) for im in program.images]
        for injector in SEEDED_DEFECTS.values():
            injector(program)
        assert program.fingerprint() == before
        assert [len(im.write_programs) for im in program.images] == n_writes
        assert analyze_program(program).clean


class TestScreenCrossCheck:
    """screen_coverage == the fused engine's own exception-screen sets."""

    def test_matches_compiled_kernels_on_corpus(self, node, corpus):
        checked_any = False
        for name, program in corpus:
            plan = progplan.compiled_plan(program, node.params)
            for index, kernel in plan.kernels.items():
                report = screen_coverage(program.images[index])
                assert report.checked_fus == frozenset(
                    kernel._checked_fus()
                ), f"{name} image {index}: checked-FU sets diverge"
                assert report.reduce_fus == frozenset(kernel.reduce_fus), (
                    f"{name} image {index}: reduce-FU sets diverge"
                )
                checked_any = True
        assert checked_any

    def test_keep_outputs_disables_reduce_folding(self, node, corpus):
        name, program = corpus[0]
        plan = progplan.compiled_plan(
            program, node.params, keep_outputs=True
        )
        for index, kernel in plan.kernels.items():
            report = screen_coverage(
                program.images[index], keep_outputs=True
            )
            assert report.reduce_fus == frozenset(kernel.reduce_fus)
            assert report.reduce_fus == frozenset()

    def test_verdict_records_checked_fus(self, corpus):
        _name, program = corpus[0]
        verdict = analyze_program(program)
        assert len(verdict.checked_fus) == len(program.images)


class TestFusionCrossCheck:
    """fusion_eligibility == check_batchable, corpus and declines alike."""

    def _mutated(self, node, control_ops):
        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-3, loop=False)
        prog = setup.program
        prog.control.clear()
        for op in control_ops:
            prog.add_control(op)
        return MicrocodeGenerator(node, run_checker=False).generate(prog)

    def _dynamic_verdict(self, node, program, keep_outputs=False):
        try:
            plan = progplan.compiled_plan(
                program, node.params, keep_outputs=keep_outputs
            )
        except progplan.FusionUnsupported as exc:
            return str(exc)
        try:
            batchplan.check_batchable(plan)
        except progplan.FusionUnsupported as exc:
            return str(exc)
        return None

    def test_corpus_is_batchable_both_ways(self, node, corpus):
        for name, program in corpus:
            eligible, reasons = fusion_eligibility(program)
            assert eligible and reasons == (), name
            assert self._dynamic_verdict(node, program) is None, name

    def test_keep_outputs_declines_both_ways(self, node, corpus):
        _name, program = corpus[0]
        eligible, reasons = fusion_eligibility(program, keep_outputs=True)
        assert not eligible
        dynamic = self._dynamic_verdict(node, program, keep_outputs=True)
        assert dynamic in reasons

    def test_bad_issue_index_declines_both_ways(self, node):
        # the diagram layer refuses out-of-range control entries, so a
        # dangling issue index can only appear in mutated machine code
        program = self._mutated(node, [ExecPipeline(0), Halt()])
        program.control.insert(1, ExecPipeline(7))
        eligible, reasons = fusion_eligibility(program)
        assert not eligible
        dynamic = self._dynamic_verdict(node, program)
        assert dynamic is not None and dynamic in reasons

    def test_missing_watch_declines_both_ways(self, node):
        # the diagram layer validates watches against pipeline
        # *declarations*; a body that never issues the watched pipeline
        # only appears in mutated machine code
        import dataclasses

        setup = build_jacobi_program(node, (5, 5, 5), eps=1e-3)
        program = MicrocodeGenerator(node, run_checker=False).generate(
            setup.program
        )
        loop = next(
            op for op in program.control if isinstance(op, LoopUntil)
        )
        key = loop.condition_pipeline
        other = next(
            i for i, image in enumerate(program.images)
            if image.number != key or image.condition is None
        )
        mutated = dataclasses.replace(loop, body=(ExecPipeline(other),))
        program.control = [
            mutated if op is loop else op for op in program.control
        ]
        eligible, reasons = fusion_eligibility(program)
        assert not eligible
        dynamic = self._dynamic_verdict(node, program)
        assert dynamic is not None and dynamic in reasons

    @pytest.mark.parametrize("ops_name", [
        "halt_in_loop", "nested_loop",
    ])
    def test_declining_scripts_agree(self, node, ops_name):
        scripts = {
            "halt_in_loop": [
                ExecPipeline(0),
                LoopUntil(
                    body=(ExecPipeline(1), Halt(), SwapVars("u", "u_new")),
                    condition_pipeline=1,
                    max_iterations=4,
                ),
            ],
            "nested_loop": [
                ExecPipeline(0),
                LoopUntil(
                    body=(
                        ExecPipeline(1),
                        LoopUntil(
                            body=(ExecPipeline(1),),
                            condition_pipeline=1,
                            max_iterations=2,
                        ),
                    ),
                    condition_pipeline=1,
                    max_iterations=4,
                ),
            ],
        }
        program = self._mutated(node, scripts[ops_name])
        eligible, reasons = fusion_eligibility(program)
        assert not eligible and reasons
        dynamic = self._dynamic_verdict(node, program)
        assert dynamic is not None
        # the static engine reports *all* declines; the dynamic scan
        # stops at its first — so the dynamic verdict must be among the
        # static reasons, verbatim
        assert dynamic in reasons, (
            f"{ops_name}: dynamic said {dynamic!r}, static said {reasons!r}"
        )
