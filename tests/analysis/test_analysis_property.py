"""Property-based analyzer contract.

Soundness: programs the design-rule checker accepts must never earn an
*error*-severity finding (the analyzer's error class is "the machine
would fault or race", so a checker-clean, runnable program contradicting
that is an analyzer bug).  Usefulness: an analyzer-clean program runs
bit-identically on the reference interpreter and the fused fast path —
static cleanliness really does mean nothing execution-order-dependent.
Completeness: every seeded defect class is flagged on every (solver,
shape) draw — zero false negatives, the ``run_checker="static"`` bar.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.analysis import analyze_program
from repro.analysis.seeding import SEEDED_DEFECTS
from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.builders import BuilderError, ConstOperand, PipelineBuilder
from repro.compose.exprmap import (
    BinOp,
    Const,
    UnOp,
    Var,
    expr_fu_count,
    map_expression,
)
from repro.compose.registry import SOLVERS
from repro.diagram.program import ExecPipeline, Halt, VisualProgram
from repro.sim.machine import NSCMachine

NODE = NodeConfig()
VAR_NAMES = ("a", "b", "c")

_wrapped_var = st.builds(
    UnOp,
    opcode=st.sampled_from([Opcode.FABS, Opcode.FNEG]),
    operand=st.builds(Var, name=st.sampled_from(VAR_NAMES)),
)
_leaf = st.one_of(
    _wrapped_var,
    st.builds(Const, value=st.floats(-4, 4, allow_nan=False).map(
        lambda v: round(v, 3))),
)


def _exprs(max_leaves: int = 6):
    return st.recursive(
        _leaf,
        lambda children: st.one_of(
            st.builds(
                BinOp,
                opcode=st.sampled_from(
                    [Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.MAX,
                     Opcode.MIN]
                ),
                left=children,
                right=children,
            ),
            st.builds(
                UnOp,
                opcode=st.sampled_from([Opcode.FNEG, Opcode.FABS]),
                operand=children,
            ),
        ),
        max_leaves=max_leaves,
    )


def _compile_expression(expr, n=12):
    """Random expression -> MachineProgram, or None when unbuildable."""
    prog = VisualProgram(name="prop-analysis")
    for i, name in enumerate(VAR_NAMES):
        prog.declare(name, plane=i, length=n)
    prog.declare("result", plane=len(VAR_NAMES), length=n)
    b = PipelineBuilder(NODE, prog, vector_length=n)
    bound = {name: b.read_var(name) for name in VAR_NAMES}
    try:
        root = map_expression(b, expr, bound)
        if isinstance(root, ConstOperand):
            return None
        out = b.apply(Opcode.PASS, root)
    except BuilderError:
        return None
    b.write_var(out, "result")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())
    report = Checker(NODE).check_program(prog)
    assert report.ok, report.format()
    return MicrocodeGenerator(NODE).generate(prog)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(expr=_exprs(), data=st.data())
def test_checker_clean_programs_have_no_error_findings(expr, data):
    if not (1 <= expr_fu_count(expr) <= 24):
        return
    program = _compile_expression(expr)
    if program is None:
        assume(False)
        return
    verdict = analyze_program(program)
    errors = [f for f in verdict.findings if f.severity == "error"]
    assert not errors, verdict.format()

    # analyzer-clean => reference and fused agree bit for bit
    if not verdict.clean:
        return
    n = 12
    env = {
        name: np.array(
            data.draw(
                st.lists(
                    st.floats(-3, 3, allow_nan=False).map(
                        lambda v: round(v, 3)),
                    min_size=n, max_size=n,
                )
            )
        )
        for name in VAR_NAMES
    }
    results = {}
    for backend in ("reference", "fast"):
        machine = NSCMachine(NODE, backend=backend)
        machine.load_program(program)
        for name, values in env.items():
            machine.set_variable(name, values)
        machine.run()
        results[backend] = machine.get_variable("result")
    np.testing.assert_array_equal(results["reference"], results["fast"])


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    rule=st.sampled_from(sorted(SEEDED_DEFECTS)),
    method=st.sampled_from(sorted(SOLVERS)),
    n=st.sampled_from([5, 6, 7]),
)
def test_seeded_defects_always_flagged(rule, method, n):
    entry = SOLVERS[method]
    setup = entry.build_setup(
        NODE, (n, n, n), eps=1e-4, max_iterations=50, omega=1.4
    )
    program = MicrocodeGenerator(NODE, run_checker=False).generate(
        setup.program
    )
    assert analyze_program(program).clean
    mutant = SEEDED_DEFECTS[rule](program)
    verdict = analyze_program(mutant)
    assert rule in {f.rule for f in verdict.findings}, (
        f"{rule} seeded into {method}-{n} went unflagged:\n"
        + verdict.format()
    )
