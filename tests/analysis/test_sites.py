"""Span arithmetic: the exact AP reasoning under every dataflow rule."""

import pytest

from repro.analysis.sites import ENUMERATION_CAP, SiteKey, Span, covered_by_union


class TestSpanConstruction:
    def test_make_normalizes_negative_stride(self):
        span = Span.make(start=10, stride=-2, count=4)
        assert (span.start, span.stride, span.count) == (4, 2, 4)
        assert span.last == 10

    def test_make_collapses_singletons_and_zero_stride(self):
        assert Span.make(5, 7, 1) == Span(5, 1, 1)
        assert Span.make(5, 0, 9) == Span(5, 1, 1)

    def test_invariants_enforced(self):
        with pytest.raises(ValueError):
            Span(0, 1, 0)
        with pytest.raises(ValueError):
            Span(0, 0, 4)
        with pytest.raises(ValueError):
            Span(0, 3, 1)  # singleton must normalize to stride 1

    def test_contains(self):
        span = Span(4, 3, 5)  # 4 7 10 13 16
        assert all(x in span for x in (4, 7, 10, 13, 16))
        assert all(x not in span for x in (3, 5, 17, 19))


class TestIntersects:
    def test_interleaved_strides_do_not_alias(self):
        evens = Span(0, 2, 50)
        odds = Span(1, 2, 50)
        assert not evens.intersects(odds)
        assert not odds.intersects(evens)

    def test_coprime_strides_meet(self):
        a = Span(0, 3, 10)  # 0 3 .. 27
        b = Span(1, 5, 6)   # 1 6 11 16 21 26
        # common solutions of 3i ≡ 1+5j: 6, 21 — inside both ranges
        assert a.intersects(b) and b.intersects(a)
        assert a.overlap_offset(b) == 6

    def test_congruent_but_out_of_range(self):
        a = Span(0, 4, 3)    # 0 4 8
        b = Span(12, 4, 3)   # 12 16 20
        assert not a.intersects(b)
        assert a.overlap_offset(b) is None

    def test_identical_spans(self):
        span = Span(7, 11, 9)
        assert span.intersects(span)
        assert span.overlap_offset(span) == 7

    def test_exhaustive_against_set_arithmetic(self):
        cases = [
            Span.make(s, d, c)
            for s in (0, 1, 5)
            for d in (1, 2, 3, 7)
            for c in (1, 4, 13)
        ]
        for a in cases:
            sa = {a.start + i * a.stride for i in range(a.count)}
            for b in cases:
                sb = {b.start + i * b.stride for i in range(b.count)}
                assert a.intersects(b) == bool(sa & sb), (a, b)
                expected = min(sa & sb) if sa & sb else None
                assert a.overlap_offset(b) == expected, (a, b)


class TestCovers:
    def test_subprogression(self):
        outer = Span(0, 2, 20)   # 0..38 step 2
        inner = Span(4, 4, 5)    # 4 8 12 16 20
        assert outer.covers(inner)
        assert not inner.covers(outer)

    def test_offset_mismatch(self):
        outer = Span(0, 2, 20)
        assert not outer.covers(Span(1, 2, 3))

    def test_exhaustive_against_set_arithmetic(self):
        cases = [
            Span.make(s, d, c)
            for s in (0, 2)
            for d in (1, 2, 6)
            for c in (1, 3, 9)
        ]
        for a in cases:
            sa = {a.start + i * a.stride for i in range(a.count)}
            for b in cases:
                sb = {b.start + i * b.stride for i in range(b.count)}
                assert a.covers(b) == (sb <= sa), (a, b)


class TestCoveredByUnion:
    def test_single_def_fast_path(self):
        read = Span(0, 1, 100)
        assert covered_by_union(read, (Span(0, 1, 100),))

    def test_two_halves_cover(self):
        read = Span(0, 1, 100)
        halves = (Span(0, 1, 50), Span(50, 1, 50))
        assert covered_by_union(read, halves)

    def test_gap_detected(self):
        read = Span(0, 1, 100)
        gappy = (Span(0, 1, 50), Span(51, 1, 49))  # word 50 missing
        assert not covered_by_union(read, gappy)

    def test_interleaved_defs_cover(self):
        read = Span(0, 1, 40)
        assert covered_by_union(read, (Span(0, 2, 20), Span(1, 2, 20)))

    def test_empty_defs(self):
        assert not covered_by_union(Span(0, 1, 4), ())

    def test_oversized_read_degrades_conservatively(self):
        read = Span(0, 1, ENUMERATION_CAP + 1)
        # intersects at all => treated as covered (no false positives)
        assert covered_by_union(read, (Span(5, 1, 1),))
        assert not covered_by_union(read, (Span(ENUMERATION_CAP + 10, 1, 1),))

    def test_format(self):
        assert Span(3, 1, 1).format() == "[3]"
        assert Span(0, 1, 8).format() == "[0..7]"
        assert Span(0, 4, 3).format() == "[0..8 step 4]"


class TestSiteKey:
    def test_display_names(self):
        assert SiteKey.mem(0) == "mem[0]"
        assert SiteKey.cache(3) == "cache[3]"
        assert SiteKey.fu(17) == "fu17"
        assert SiteKey.sd(1) == "sd[1]"
        assert SiteKey.sd(0, 2) == "sd[0].tap2"
        assert SiteKey.control() == "control"
