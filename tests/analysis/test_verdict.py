"""Finding/verdict semantics: severity order, dedup, roll-up, serialization."""

import json

import pytest

from repro.analysis import (
    SEVERITIES,
    AnalysisVerdict,
    Finding,
    FindingCollector,
    severity_rank,
)
from repro.analysis.verdict import merge_findings


class TestSeverity:
    def test_order(self):
        assert SEVERITIES == ("info", "warning", "error")
        assert severity_rank("error") > severity_rank("warning") \
            > severity_rank("info")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            severity_rank("fatal")
        with pytest.raises(ValueError):
            Finding(rule="x", severity="fatal", site="mem[0]", issue="",
                    message="m")


class TestFindingCollector:
    def test_dedup_on_static_location(self):
        collector = FindingCollector()
        for _ in range(3):  # the same defect seen once per loop unroll
            collector.add("waw-overwrite", "warning", "mem[0]",
                          "pipeline 1 wrote [0..9], overwritten",
                          issue="pipeline 1")
        assert len(collector) == 1

    def test_distinct_messages_kept(self):
        collector = FindingCollector()
        collector.add("uninit-read", "error", "mem[0]", "read [0..3]")
        collector.add("uninit-read", "error", "mem[0]", "read [8..11]")
        assert len(collector) == 2

    def test_sorted_most_severe_first(self):
        collector = FindingCollector()
        collector.add("dead-code", "info", "control", "never executes")
        collector.add("double-write", "error", "mem[1]", "overlap")
        collector.add("dead-write", "warning", "mem[2]", "never read")
        severities = [f.severity for f in collector.sorted()]
        assert severities == ["error", "warning", "info"]

    def test_first_issue_label_wins(self):
        collector = FindingCollector()
        collector.add("dead-code", "warning", "fu3", "unused",
                      issue="pipeline 0")
        collector.add("dead-code", "warning", "fu3", "unused",
                      issue="pipeline 2")
        (finding,) = collector.sorted()
        assert finding.issue == "pipeline 0"

    def test_merge_findings(self):
        a, b = FindingCollector(), FindingCollector()
        a.add("dead-code", "info", "control", "x")
        b.add("dead-code", "info", "control", "x")  # duplicate across both
        b.add("control", "error", "control", "y")
        merged = merge_findings([a, b])
        assert [f.rule for f in merged] == ["control", "dead-code"]


def _verdict(findings=()):
    return AnalysisVerdict(
        program="p", fingerprint="f" * 64, findings=tuple(findings)
    )


def _finding(severity, rule="uninit-read"):
    return Finding(rule=rule, severity=severity, site="mem[0]",
                   issue="pipeline 0", message="msg")


class TestAnalysisVerdict:
    def test_clean_verdict(self):
        verdict = _verdict()
        assert verdict.ok and verdict.clean
        assert verdict.worst_severity == ""
        assert verdict.counts() == {"info": 0, "warning": 0, "error": 0}
        assert "no findings" in verdict.format()

    def test_ok_tolerates_warnings_not_errors(self):
        warned = _verdict([_finding("warning")])
        assert warned.ok and not warned.clean
        assert warned.worst_severity == "warning"
        errored = _verdict([_finding("warning"), _finding("error")])
        assert not errored.ok
        assert errored.worst_severity == "error"

    def test_at_or_above(self):
        verdict = _verdict(
            [_finding("info"), _finding("warning"), _finding("error")]
        )
        assert len(verdict.at_or_above("info")) == 3
        assert len(verdict.at_or_above("warning")) == 2
        assert len(verdict.at_or_above("error")) == 1

    def test_to_dict_round_trips_through_json(self):
        verdict = _verdict([_finding("error")])
        payload = json.loads(json.dumps(verdict.to_dict(), sort_keys=True))
        assert payload["ok"] is False and payload["clean"] is False
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["rule"] == "uninit-read"
        assert payload["program"] == "p"

    def test_format_lists_findings_and_fusion(self):
        verdict = AnalysisVerdict(
            program="p", fingerprint="f" * 64,
            findings=(_finding("error"),),
            fusion_eligible=False,
            fusion_reasons=("nested LoopUntil",),
        )
        text = verdict.format()
        assert "[error] uninit-read mem[0] at pipeline 0" in text
        assert "not batch-fusable: nested LoopUntil" in text
