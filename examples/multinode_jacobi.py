#!/usr/bin/env python3
"""Multi-node NSC: the §2 hypercube system solving Poisson in parallel.

Decomposes a 3-D grid into z-slabs across a simulated hypercube (slabs
mapped to nodes by Gray code so neighbours are one hop apart), runs the
same Jacobi node program everywhere, exchanges ghost planes through the
hyperspace router, and reports the compute/communication split and achieved
GFLOPS against the paper's 40-GFLOPS (64-node) peak.

Run:  python examples/multinode_jacobi.py [dim] [n] [backend]
      dim = hypercube dimension (default 2 -> 4 nodes)
      backend = reference | fast (default reference; identical results,
                the fast path batches all nodes into whole-system NumPy)
"""

import sys
import time

import numpy as np

from repro.apps.poisson3d import manufactured_solution
from repro.sim.multinode import MultiNodeStencil


def main() -> None:
    dim = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    backend = sys.argv[3] if len(sys.argv) > 3 else "reference"
    nodes = 1 << dim
    nz = max(n, nodes)  # at least one plane per node
    nz += (-nz) % nodes  # divisible by node count
    shape = (n, n, nz)

    print(f"hypercube dimension {dim}: {nodes} nodes; grid {shape}; "
          f"backend {backend}")
    mn = MultiNodeStencil(hypercube_dim=dim, shape=shape, eps=1e-6,
                          backend=backend)

    u_star, f, h = manufactured_solution(shape)
    mn.scatter("u", np.zeros(shape[::-1]))
    mn.scatter("f", f)

    start = time.perf_counter()
    result = mn.run(max_iterations=3000)
    wall = time.perf_counter() - start
    print(f"converged: {result.converged} in {result.iterations} sweeps "
          f"({wall:.2f}s host wall)")
    print(f"compute cycles: {result.compute_cycles:>10}")
    print(f"comm cycles:    {result.comm_cycles:>10} "
          f"({100 * result.comm_fraction:.1f}% of total)")
    print(f"words exchanged: {result.words_exchanged}")
    print(f"achieved: {result.achieved_gflops:.4f} GFLOPS of "
          f"{result.peak_gflops:.2f} peak "
          f"({100 * result.efficiency:.2f}%)")

    u = mn.gather("u")
    err = np.max(np.abs(u - u_star))
    print(f"error vs analytic solution: {err:.3e}")

    busiest = mn.router.busiest_link()
    if busiest is not None:
        (a, b), stats = busiest
        print(f"busiest link {a}<->{b}: {stats.messages} messages, "
              f"{stats.words} words")


if __name__ == "__main__":
    main()
