#!/usr/bin/env python3
"""The paper's running example: point Jacobi for the 3-D Poisson equation.

Builds the complete visual program of Eq. 1 (Figs. 2 and 11) — neighbour
gathering through a shift/delay unit, boundary masks in double-buffered
caches, residual reduction in a feedback min/max unit, convergence loop in
the sequencer — generates its microcode, and runs it on the simulated NSC
node against a manufactured Poisson problem.  The result is validated two
ways: bit-for-bit against a machine-semantics NumPy reference, and
physically against the analytic solution.

Run:  python examples/jacobi3d.py [nx [ny nz]]

With one argument the grid is cubic; with three it is non-cubic, which
also exercises the (nz, ny, nx) grid layout end to end (see
``repro.apps.poisson3d.grid_shape``).
"""

import sys

import numpy as np

from repro.apps.poisson3d import (
    grid_shape,
    jacobi_reference_run,
    manufactured_solution,
    poisson_residual,
)
from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.editor.render_ascii import render_pipeline_diagram
from repro.sim.machine import NSCMachine


def main() -> None:
    if len(sys.argv) == 4:
        shape = (int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]))
    elif len(sys.argv) <= 2:
        n = int(sys.argv[1]) if len(sys.argv) == 2 else 9
        shape = (n, n, n)
    else:
        sys.exit("usage: jacobi3d.py [nx [ny nz]] — give one size (cubic) "
                 "or all three")
    nx, ny, nz = shape
    eps = 1e-8

    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps, max_iterations=5000)
    print(f"== visual program for Eq. 1 on a {nx}x{ny}x{nz} grid ==")
    print(f"pipelines: {[p.label for p in setup.program.pipelines]}")
    print()
    print(render_pipeline_diagram(setup.program.pipelines[1]))
    print()

    program = MicrocodeGenerator(node).generate(setup.program)
    print(
        f"microcode: {len(program.images)} instructions x "
        f"{program.layout.total_bits} bits"
    )

    u_star, f, h = manufactured_solution(shape)
    machine = NSCMachine(node)
    machine.load_program(program)
    load_jacobi_inputs(machine, setup, np.zeros(shape), f)
    result = machine.run()
    metrics = machine.metrics(result)

    u = machine.get_variable("u")
    ref, ref_iters, history = jacobi_reference_run(
        np.zeros(shape), f, shape, h, eps=eps, max_iterations=5000
    )

    print(f"\nconverged: {result.converged} after "
          f"{result.loop_iterations[setup.update_pipeline]} sweeps "
          f"(reference: {ref_iters})")
    print(f"simulator vs reference max |diff|: {np.max(np.abs(u - ref)):.3e}")
    err = np.max(np.abs(u.reshape(grid_shape(shape)) - u_star))
    print(f"error vs analytic solution:        {err:.3e}")
    print(f"PDE residual of the iterate:       "
          f"{poisson_residual(u, f, shape, h):.3e}")
    print(f"\nperformance: {metrics.format()}")
    print(f"residual history (first 5): "
          f"{[f'{r:.2e}' for r in history[:5]]}")


if __name__ == "__main__":
    main()
