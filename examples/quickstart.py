#!/usr/bin/env python3
"""Quickstart: draw a pipeline, check it, generate microcode, run it.

This walks the whole Fig. 3 toolchain on the smallest useful program,
``out = alpha*x + y`` (saxpy), using the scripted editor exactly as §5's
user would use the mouse: select icons, wire pads, fill DMA pop-ups,
program units — then simulate the generated microcode on an NSC node.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch.funcunit import Opcode
from repro.arch.switch import fu_in, fu_out, mem_read, mem_write
from repro.codegen.asmtext import assembly_token_count
from repro.codegen.generator import MicrocodeGenerator
from repro.diagram.pipeline import InputMod, InputModKind
from repro.editor.render_ascii import render_pipeline_diagram
from repro.editor.session import EditorSession
from repro.sim.machine import NSCMachine

N = 64
ALPHA = 2.5


def draw_saxpy() -> EditorSession:
    s = EditorSession()

    # declarations (the left region of the Fig. 5 window)
    s.declare_variable("x", plane=0, length=N, initializer="user")
    s.declare_variable("y", plane=1, length=N, initializer="user")
    s.declare_variable("out", plane=2, length=N)

    # Fig. 6/7: select an ALS icon in the control panel and drag it in.
    s.select_icon("triplet")
    icon = s.drag_to(40, 2)
    scale_fu = icon.first_fu     # slot 0: computes alpha*x
    stage_fu = icon.first_fu + 1  # slot 1: stages y (its only plane)
    add_fu = icon.first_fu + 2   # slot 2: adds, drives the output plane

    # Fig. 8: rubber-band wiring, vetted by the checker as we go.
    assert s.connect(mem_read(0), fu_in(scale_fu, "a")).ok
    assert s.connect(mem_read(1), fu_in(stage_fu, "a")).ok
    # slots 0 and 1 feed slot 2 over the triplet's hardwired internal routes
    assert s.set_input_mod(
        add_fu, "a", InputMod(InputModKind.INTERNAL, src_slot=0)
    ).ok
    assert s.set_input_mod(
        add_fu, "b", InputMod(InputModKind.INTERNAL, src_slot=1)
    ).ok
    assert s.connect(fu_out(add_fu), mem_write(2)).ok

    # Fig. 9: the DMA pop-up subwindows behind each memory pad.
    for endpoint, var in ((mem_read(0), "x"), (mem_read(1), "y"),
                          (mem_write(2), "out")):
        sub = s.dma_popup(endpoint)
        s.fill_dma_field(sub, "variable", var)
        assert s.commit_dma(sub).ok

    # Fig. 10: program the units from their capability-filtered menus.
    assert s.assign_op(scale_fu, Opcode.FSCALE, constant=ALPHA).ok
    assert s.assign_op(stage_fu, Opcode.PASS).ok
    assert s.assign_op(add_fu, Opcode.FADD).ok
    s.diagram.vector_length = N
    s.diagram.label = "saxpy"
    return s


def main() -> None:
    session = draw_saxpy()

    print("=== the drawn pipeline (Fig. 11 style) ===")
    print(render_pipeline_diagram(session.diagram))
    print()

    report = session.check_all()
    print(f"checker: {report.format()}")
    assert report.ok

    generator = MicrocodeGenerator(session.node)
    program = generator.generate(session.program)
    word = program.images[0].microword
    print(
        f"\nmicrocode: {program.layout.total_bits} bits/instruction in "
        f"{program.layout.n_fields} fields; "
        f"{len(word.nonzero_fields())} fields are nonzero here"
    )
    print(
        f"editor actions used: {session.action_count}; equivalent "
        f"microassembler tokens: {assembly_token_count(program)}"
    )

    machine = NSCMachine(session.node)
    machine.load_program(program)
    rng = np.random.default_rng(0)
    x, y = rng.random(N), rng.random(N)
    machine.set_variable("x", x)
    machine.set_variable("y", y)
    result = machine.run()
    out = machine.get_variable("out")
    assert np.allclose(out, ALPHA * x + y)
    print(f"\nsimulated: {machine.metrics(result).format()}")
    print("saxpy result verified against NumPy.")


if __name__ == "__main__":
    main()
