#!/usr/bin/env python3
"""Comparing iterative solvers drawn in the visual environment.

The paper's example is one Jacobi pipeline; real NSC applications (the
multigrid work the example comes from) used stronger smoothers.  This
example draws three solvers — Jacobi, red-black Gauss-Seidel, and red-black
SOR — as visual programs, runs each to convergence on the same Poisson
problem, and prints the convergence race plus the per-sweep cost of the
two-phase reconfiguration.

Run:  python examples/solver_comparison.py [n]
"""

import sys

import numpy as np

from repro.arch.node import NodeConfig
from repro.codegen.generator import MicrocodeGenerator
from repro.compose.iterative import build_rbsor_program, load_rbsor_inputs
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
from repro.sim.machine import NSCMachine
from repro.apps.poisson3d import manufactured_solution


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    shape = (n, n, n)
    eps = 1e-7
    node = NodeConfig()
    u_star, f, h = manufactured_solution(shape)
    u0 = np.zeros(shape)

    print(f"solving Poisson on {shape} to residual < {eps:g}\n")
    print(f"{'solver':<18}{'sweeps':>8}{'cycles':>12}{'ms@20MHz':>10}"
          f"{'err vs analytic':>18}")

    def report(label, machine, result, sweeps):
        u = machine.get_variable("u").reshape(shape)
        err = np.max(np.abs(u - u_star))
        ms = result.total_cycles / node.params.clock_mhz / 1000.0
        print(f"{label:<18}{sweeps:>8}{result.total_cycles:>12}"
              f"{ms:>10.2f}{err:>18.3e}")

    setup = build_jacobi_program(node, shape, h=h, eps=eps,
                                 max_iterations=20_000)
    machine = NSCMachine(node)
    machine.load_program(MicrocodeGenerator(node).generate(setup.program))
    load_jacobi_inputs(machine, setup, u0, f)
    result = machine.run()
    report("jacobi", machine, result,
           result.loop_iterations[setup.update_pipeline])

    for omega, label in ((1.0, "rb-gauss-seidel"), (1.5, "rb-sor(1.5)")):
        setup = build_rbsor_program(node, shape, omega=omega, h=h, eps=eps,
                                    max_iterations=20_000)
        machine = NSCMachine(node)
        machine.load_program(
            MicrocodeGenerator(node).generate(setup.program)
        )
        load_rbsor_inputs(machine, setup, u0, f)
        result = machine.run()
        report(label, machine, result,
               result.loop_iterations[setup.black_pipeline])

    print("\nthe two-phase solvers pay one extra pipeline reconfiguration "
          "per sweep\nand still win on total machine cycles — the rapid "
          "reconfiguration of §2 at work.")


if __name__ == "__main__":
    main()
