#!/usr/bin/env python3
"""Comparing iterative solvers drawn in the visual environment.

The paper's example is one Jacobi pipeline; real NSC applications (the
multigrid work the example comes from) used stronger smoothers.  This
example submits three solvers — Jacobi, red-black Gauss-Seidel, and
red-black SOR — as jobs to the batch simulation service
(:mod:`repro.service`), runs them on the same Poisson problem, and prints
the convergence race plus the per-sweep cost of the two-phase
reconfiguration.  A second submission of the same jobs demonstrates the
service's compile-once program cache.

Run:  python examples/solver_comparison.py [n]
"""

import sys

from repro.apps.poisson3d import poisson_jobs
from repro.service.runner import BatchRunner


LABELS = {
    "jacobi": "jacobi",
    "rb-gs": "rb-gauss-seidel",
    "rb-sor": "rb-sor(1.5)",
}


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    eps = 1e-7
    jobs = poisson_jobs(n=n, eps=eps, max_sweeps=20_000, omega=1.5)

    print(f"solving Poisson on ({n}, {n}, {n}) to residual < {eps:g} "
          f"via the batch service\n")
    print(f"{'solver':<18}{'sweeps':>8}{'cycles':>12}{'ms@20MHz':>10}"
          f"{'err vs analytic':>18}")

    runner = BatchRunner(workers=1)
    records, summary = runner.run(jobs)
    clock_mhz = jobs[0].params().clock_mhz
    for job, record in zip(jobs, records):
        if not record["ok"]:
            print(f"{LABELS[job.method]:<18}  FAILED: {record['error']}")
            continue
        ms = record["cycles"] / clock_mhz / 1000.0
        print(f"{LABELS[job.method]:<18}{record['sweeps']:>8}"
              f"{record['cycles']:>12}{ms:>10.2f}"
              f"{record['error_vs_analytic']:>18.3e}")

    print("\nthe two-phase solvers pay one extra pipeline reconfiguration "
          "per sweep\nand still win on total machine cycles — the rapid "
          "reconfiguration of §2 at work.")

    # resubmit: every program now comes from the cache, no recompilation
    records2, summary2 = runner.run(jobs)
    assert all(r["cache_hit"] for r in records2)
    assert [r["cycles"] for r in records2] == [r["cycles"] for r in records]
    print(f"\nfirst submission:  {summary.format()}")
    print(f"second submission: {summary2.format()}")


if __name__ == "__main__":
    main()
