#!/usr/bin/env python3
"""A scripted tour of the visual environment: Figs. 4-10 as a session.

Replays the paper's §5 walk-through step by step, printing the display
window after each stage — icon selection and dragging (Fig. 6), a fully
populated drawing area (Fig. 7), a rubber-band connection with a rejected
illegal attempt (Fig. 8), the DMA pop-up subwindow (Fig. 9), and the
function-unit operation menu (Fig. 10) — then saves and reloads the session.

Run:  python examples/editor_tour.py
"""

import tempfile

from repro.arch.funcunit import Opcode
from repro.arch.switch import DeviceKind, fu_in, fu_out, mem_read, mem_write
from repro.editor.render_ascii import render_icon_catalog
from repro.editor.session import EditorSession


def stage(title: str) -> None:
    print("\n" + "=" * 72)
    print(f"== {title}")
    print("=" * 72)


def main() -> None:
    stage("Fig. 4: the ALS icon catalog")
    print(render_icon_catalog())

    s = EditorSession()
    s.declare_variable("a", plane=0, length=32, initializer="user")
    s.declare_variable("b", plane=1, length=32)

    stage("Fig. 5: the empty display window")
    print(s.render())

    stage("Fig. 6: selecting and positioning an icon")
    s.select_icon("doublet")
    icon = s.drag_to(40, 4)
    print(f"-> {s.message}")
    fu0, fu1 = icon.first_fu, icon.first_fu + 1

    stage("Fig. 7: all icons positioned")
    s.place_device(DeviceKind.MEMORY, 0, 4, 4)
    s.place_device(DeviceKind.MEMORY, 1, 4, 14)
    print(s.render())

    stage("Fig. 8: establishing connections (with one illegal attempt)")
    s.start_connection(mem_read(0))
    report = s.finish_connection(fu_in(fu0, "a"))
    print(f"legal wire:   ok={report.ok}: {s.message}")
    report = s.connect(mem_read(1), fu_in(fu0, "b"))
    print(f"illegal wire: ok={report.ok}: {s.message}")
    print("   (the checker refuses a second memory plane for one unit)")
    menu = s.pad_menu(fu_in(fu1, "a"))
    print(f"pad menu for fu{fu1}.a offers {len(menu)} legal choices, e.g. "
          f"{menu.labels()[:3]} ... plus internal/feedback/constant entries")
    s.connect(fu_out(fu0), fu_in(fu1, "a"))
    s.connect(fu_out(fu1), mem_write(1))

    stage("Fig. 9: the DMA pop-up subwindow")
    sub = s.dma_popup(mem_read(0))
    s.fill_dma_field(sub, "variable", "a")
    s.fill_dma_field(sub, "stride", 1)
    print(sub.template())
    s.commit_dma(sub)
    sub = s.dma_popup(mem_write(1))
    s.fill_dma_field(sub, "variable", "b")
    s.commit_dma(sub)

    stage("Fig. 10: programming the function units")
    menu = s.fu_menu(fu0)
    print(f"menu for fu{fu0} (integer-capable): {menu.labels()}")
    menu = s.fu_menu(fu1)
    print(f"menu for fu{fu1} (min/max-capable): {menu.labels()}")
    s.assign_op(fu0, Opcode.FABS)
    s.assign_op(fu1, Opcode.FSCALE, constant=3.0)
    s.diagram.vector_length = 32
    s.diagram.label = "b = 3*|a|"

    stage("Fig. 11: the completed pipeline diagram")
    print(s.render())
    report = s.check_all()
    print(f"\nfinal check: {report.format()}")

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        path = fh.name
    s.save(path)
    loaded = EditorSession.load(path)
    print(f"\nsaved and reloaded: {loaded!r}; "
          f"program checks {'clean' if loaded.check_all().ok else 'DIRTY'}")
    print(f"total user actions in this tour: {s.action_count}")


if __name__ == "__main__":
    main()
