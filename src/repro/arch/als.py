"""Arithmetic-logic structures (ALSs): singlets, doublets, triplets.

Paper §2: functional units "are hardwired into three types of
arithmetic-logic structures (ALSs), called singlets, doublets, and triplets,
which contain respectively 1, 2, or 3 floating-point units".  Fig. 4 shows
the corresponding icons, including the second doublet form in which one unit
is bypassed so the doublet operates as a singlet.

Within an ALS the units are *not* identical (§3): one unit has
integer/logical circuitry (drawn as a "double box"), another has max/min
circuitry.  The hardwired internal routes (e.g. the first unit of a doublet
feeding the second) are modelled as optional internal edges; anything not
internal must travel through the FLONET switch network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.funcunit import FUCapability


class ALSKind(enum.Enum):
    SINGLET = "singlet"
    DOUBLET = "doublet"
    TRIPLET = "triplet"

    @property
    def n_units(self) -> int:
        return {"singlet": 1, "doublet": 2, "triplet": 3}[self.value]


#: Input-port names on a functional unit.  Every unit is two-input/one-output;
#: unary operations leave ``b`` unused.
FU_INPUT_PORTS: Tuple[str, str] = ("a", "b")
FU_OUTPUT_PORT: str = "out"


@dataclass(frozen=True)
class FUSlot:
    """One functional-unit position within an ALS class."""

    position: int
    capability: FUCapability

    @property
    def is_double_box(self) -> bool:
        """Drawn with a double border in Fig. 4 (integer/logical capable)."""
        return FUCapability.INT_LOGICAL in self.capability


@dataclass(frozen=True)
class InternalEdge:
    """A hardwired route inside an ALS: output of one slot into an input
    port of a later slot.  Usable optionally; bypassed when not selected."""

    src_slot: int
    dst_slot: int
    dst_port: str


@dataclass(frozen=True)
class ALSClass:
    """Static description of an ALS shape shared by all instances."""

    kind: ALSKind
    slots: Tuple[FUSlot, ...]
    internal_edges: Tuple[InternalEdge, ...]

    def __post_init__(self) -> None:
        if len(self.slots) != self.kind.n_units:
            raise ValueError(
                f"{self.kind.value} must have {self.kind.n_units} slots, "
                f"got {len(self.slots)}"
            )
        for edge in self.internal_edges:
            if not (0 <= edge.src_slot < len(self.slots)):
                raise ValueError(f"internal edge source slot {edge.src_slot} out of range")
            if not (0 <= edge.dst_slot < len(self.slots)):
                raise ValueError(f"internal edge dest slot {edge.dst_slot} out of range")
            if edge.src_slot >= edge.dst_slot:
                raise ValueError("internal edges must flow forward (no cycles)")
            if edge.dst_port not in FU_INPUT_PORTS:
                raise ValueError(f"unknown input port {edge.dst_port!r}")

    def internal_routes_into(self, slot: int, port: str) -> Tuple[InternalEdge, ...]:
        """Internal edges that can feed ``(slot, port)``."""
        return tuple(
            e for e in self.internal_edges if e.dst_slot == slot and e.dst_port == port
        )

    def slot_with_capability(self, capability: FUCapability) -> int | None:
        """Position of the first slot providing *capability*, if any."""
        for s in self.slots:
            if capability in s.capability:
                return s.position
        return None


def _slot(pos: int, cap: FUCapability) -> FUSlot:
    return FUSlot(position=pos, capability=cap)


_FP = FUCapability.FP
_INT = FUCapability.FP | FUCapability.INT_LOGICAL
_MM = FUCapability.FP | FUCapability.MINMAX

#: Class descriptions.  Capability placement follows §3: one integer-capable
#: unit and one min/max-capable unit per ALS (the singlet's lone unit gets
#: integer circuitry — it is drawn as a double box in Fig. 4).
ALS_CLASSES: Dict[ALSKind, ALSClass] = {
    ALSKind.SINGLET: ALSClass(
        kind=ALSKind.SINGLET,
        slots=(_slot(0, _INT),),
        internal_edges=(),
    ),
    ALSKind.DOUBLET: ALSClass(
        kind=ALSKind.DOUBLET,
        slots=(_slot(0, _INT), _slot(1, _MM)),
        internal_edges=(InternalEdge(0, 1, "a"),),
    ),
    ALSKind.TRIPLET: ALSClass(
        kind=ALSKind.TRIPLET,
        slots=(_slot(0, _INT), _slot(1, _FP), _slot(2, _MM)),
        internal_edges=(InternalEdge(0, 2, "a"), InternalEdge(1, 2, "b")),
    ),
}


@dataclass(frozen=True)
class ALSInstance:
    """A concrete ALS in a node: an id, a shape, and its global FU indices."""

    als_id: int
    kind: ALSKind
    first_fu: int  # global index of slot 0's functional unit

    @property
    def als_class(self) -> ALSClass:
        return ALS_CLASSES[self.kind]

    @property
    def n_units(self) -> int:
        return self.kind.n_units

    @property
    def name(self) -> str:
        prefix = {"singlet": "S", "doublet": "D", "triplet": "T"}[self.kind.value]
        return f"{prefix}{self.als_id}"

    def fu_index(self, slot: int) -> int:
        """Global functional-unit index of *slot* within this ALS."""
        if not (0 <= slot < self.n_units):
            raise IndexError(f"slot {slot} out of range for {self.kind.value}")
        return self.first_fu + slot

    def slots(self) -> Tuple[FUSlot, ...]:
        return self.als_class.slots

    def capability(self, slot: int) -> FUCapability:
        return self.als_class.slots[slot].capability


__all__ = [
    "ALSKind",
    "ALSClass",
    "ALSInstance",
    "ALS_CLASSES",
    "FUSlot",
    "InternalEdge",
    "FU_INPUT_PORTS",
    "FU_OUTPUT_PORT",
]
