"""Functional units and their operation set.

Paper §2: "Every functional unit can perform floating-point operations, and
some of them can also perform either integer/logical operations or max/min
computations."  §3 adds that within each ALS "only a single unit can perform
integer operations, and another unit has circuitry for min/max computations"
— the asymmetry that complicates compilation and that the checker must know
about.

Operations are two-input / one-output (or one-input with the B port unused);
``PASS`` is the identity used when a doublet is configured as a singlet by
bypassing one of its units (Fig. 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


class FUCapability(enum.Flag):
    """Capability circuitry present in a functional unit."""

    FP = enum.auto()           # floating point (all units)
    INT_LOGICAL = enum.auto()  # integer / logical ("double box" in Fig. 4)
    MINMAX = enum.auto()       # max/min circuitry

    @property
    def label(self) -> str:
        parts = []
        if FUCapability.FP in self:
            parts.append("fp")
        if FUCapability.INT_LOGICAL in self:
            parts.append("int")
        if FUCapability.MINMAX in self:
            parts.append("minmax")
        return "+".join(parts)


class Opcode(enum.Enum):
    """Operations selectable from the function-unit pop-up menu (Fig. 10)."""

    # floating point (capability FP)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FSQRT = "fsqrt"
    FRECIP = "frecip"
    FSCALE = "fscale"    # multiply by a register-file constant
    FADDC = "faddc"      # add a register-file constant
    PASS = "pass"        # identity / bypass
    # comparisons produce 0.0 / 1.0 flags usable by the interrupt scheme
    FCMP_LT = "fcmp_lt"
    FCMP_LE = "fcmp_le"
    FCMP_GT = "fcmp_gt"
    FCMP_GE = "fcmp_ge"
    FCMP_EQ = "fcmp_eq"
    # integer / logical (capability INT_LOGICAL)
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IAND = "iand"
    IOR = "ior"
    IXOR = "ixor"
    INOT = "inot"
    ISHL = "ishl"
    ISHR = "ishr"
    # max / min (capability MINMAX)
    MAX = "max"
    MIN = "min"
    MAXABS = "maxabs"
    MINABS = "minabs"


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode.

    ``flops`` counts floating-point operations per element for MFLOPS
    accounting; ``arity`` is the number of stream inputs consumed; ``kernel``
    is the NumPy implementation used by the simulator (vectorized over whole
    streams, per the performance guidance for Python HPC code).
    """

    opcode: Opcode
    capability: FUCapability
    arity: int
    flops: int
    latency_key: str  # which NSCParameters latency field applies
    kernel: Callable[..., np.ndarray]
    uses_constant: bool = False

    @property
    def mnemonic(self) -> str:
        return self.opcode.value


def _as_int(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float64).astype(np.int64)


def _k_fdiv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(a, b)


def _k_frecip(a: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(1.0, a)


def _k_fsqrt(a: np.ndarray) -> np.ndarray:
    with np.errstate(invalid="ignore"):
        return np.sqrt(a)


_KERNELS: Dict[Opcode, OpInfo] = {}


def _register(
    opcode: Opcode,
    capability: FUCapability,
    arity: int,
    flops: int,
    latency_key: str,
    kernel: Callable[..., np.ndarray],
    uses_constant: bool = False,
) -> None:
    _KERNELS[opcode] = OpInfo(
        opcode=opcode,
        capability=capability,
        arity=arity,
        flops=flops,
        latency_key=latency_key,
        kernel=kernel,
        uses_constant=uses_constant,
    )


_FP = FUCapability.FP
_INT = FUCapability.INT_LOGICAL
_MM = FUCapability.MINMAX

_register(Opcode.FADD, _FP, 2, 1, "fu_latency_fp", np.add)
_register(Opcode.FSUB, _FP, 2, 1, "fu_latency_fp", np.subtract)
_register(Opcode.FMUL, _FP, 2, 1, "fu_latency_fp", np.multiply)
_register(Opcode.FDIV, _FP, 2, 1, "fu_latency_div", _k_fdiv)
_register(Opcode.FNEG, _FP, 1, 1, "fu_latency_fp", np.negative)
_register(Opcode.FABS, _FP, 1, 1, "fu_latency_fp", np.abs)
_register(Opcode.FSQRT, _FP, 1, 1, "fu_latency_div", _k_fsqrt)
_register(Opcode.FRECIP, _FP, 1, 1, "fu_latency_div", _k_frecip)
_register(
    Opcode.FSCALE, _FP, 1, 1, "fu_latency_fp",
    lambda a, c=1.0: np.multiply(a, c), uses_constant=True,
)
_register(
    Opcode.FADDC, _FP, 1, 1, "fu_latency_fp",
    lambda a, c=0.0: np.add(a, c), uses_constant=True,
)
_register(Opcode.PASS, _FP, 1, 0, "fu_latency_int", lambda a: np.asarray(a))
_register(
    Opcode.FCMP_LT, _FP, 2, 1, "fu_latency_fp",
    lambda a, b: np.less(a, b).astype(np.float64),
)
_register(
    Opcode.FCMP_LE, _FP, 2, 1, "fu_latency_fp",
    lambda a, b: np.less_equal(a, b).astype(np.float64),
)
_register(
    Opcode.FCMP_GT, _FP, 2, 1, "fu_latency_fp",
    lambda a, b: np.greater(a, b).astype(np.float64),
)
_register(
    Opcode.FCMP_GE, _FP, 2, 1, "fu_latency_fp",
    lambda a, b: np.greater_equal(a, b).astype(np.float64),
)
_register(
    Opcode.FCMP_EQ, _FP, 2, 1, "fu_latency_fp",
    lambda a, b: np.equal(a, b).astype(np.float64),
)
_register(
    Opcode.IADD, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) + _as_int(b)).astype(np.float64),
)
_register(
    Opcode.ISUB, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) - _as_int(b)).astype(np.float64),
)
_register(
    Opcode.IMUL, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) * _as_int(b)).astype(np.float64),
)
_register(
    Opcode.IAND, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) & _as_int(b)).astype(np.float64),
)
_register(
    Opcode.IOR, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) | _as_int(b)).astype(np.float64),
)
_register(
    Opcode.IXOR, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) ^ _as_int(b)).astype(np.float64),
)
_register(
    Opcode.INOT, _INT, 1, 0, "fu_latency_int",
    lambda a: (~_as_int(a)).astype(np.float64),
)
_register(
    Opcode.ISHL, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) << np.clip(_as_int(b), 0, 62)).astype(np.float64),
)
_register(
    Opcode.ISHR, _INT, 2, 0, "fu_latency_int",
    lambda a, b: (_as_int(a) >> np.clip(_as_int(b), 0, 62)).astype(np.float64),
)
_register(Opcode.MAX, _MM, 2, 1, "fu_latency_minmax", np.maximum)
_register(Opcode.MIN, _MM, 2, 1, "fu_latency_minmax", np.minimum)
_register(
    Opcode.MAXABS, _MM, 2, 1, "fu_latency_minmax",
    lambda a, b: np.maximum(np.abs(a), np.abs(b)),
)
_register(
    Opcode.MINABS, _MM, 2, 1, "fu_latency_minmax",
    lambda a, b: np.minimum(np.abs(a), np.abs(b)),
)

#: Registry of every opcode's static description.
OPCODES: Dict[Opcode, OpInfo] = dict(_KERNELS)


def opinfo(opcode: Opcode) -> OpInfo:
    """Look up the :class:`OpInfo` for *opcode*."""
    return OPCODES[opcode]


def ops_for_capability(capability: FUCapability) -> list[Opcode]:
    """All opcodes executable by a unit with *capability*.

    This is exactly the filtering the editor applies when building the
    function-unit pop-up menu (Fig. 10): units without integer circuitry
    never see integer entries.
    """
    return [op for op, info in OPCODES.items() if info.capability in capability]


def scalar_eval(opcode: Opcode, a: float, b: float = 0.0, constant: float = 0.0) -> float:
    """Evaluate *opcode* on scalars; reference semantics for tests."""
    info = OPCODES[opcode]
    if info.uses_constant:
        out = info.kernel(np.float64(a), constant)
    elif info.arity == 1:
        out = info.kernel(np.float64(a))
    else:
        out = info.kernel(np.float64(a), np.float64(b))
    result = float(np.asarray(out))
    return result


__all__ = [
    "FUCapability",
    "Opcode",
    "OpInfo",
    "OPCODES",
    "opinfo",
    "ops_for_capability",
    "scalar_eval",
]
