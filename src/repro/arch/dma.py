"""DMA controllers: the independent engines that pump data through pipelines.

Paper §2: "independent DMA controllers associated with each memory and cache
plane pump data through the pipelines."  The Fig. 9 pop-up subwindow is the
visual interface to exactly this module: "the cache or memory plane number,
variable name or starting address, stride, etc. are specified."

A :class:`DMASpec` is the semantic record the editor stores for a memory or
cache connection; the microcode generator compiles it into a DMA program and
the simulator's :mod:`repro.sim.dma_engine` executes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.arch.params import NSCParameters
from repro.arch.switch import DeviceKind


class Direction(enum.Enum):
    READ = "read"    # device -> pipeline (a stream source)
    WRITE = "write"  # pipeline -> device (a stream sink)


class DMASpecError(Exception):
    """An ill-formed DMA specification (bad plane, stride, addressing...)."""


@dataclass(frozen=True)
class DMASpec:
    """One DMA program: which device, which direction, and the address walk.

    Addressing is either symbolic (*variable* plus word *offset* into it) or
    absolute (*offset* from the start of the device).  *count* is the number
    of elements; ``None`` means "the pipeline's vector length", resolved at
    code-generation time.
    """

    device_kind: DeviceKind
    device: int
    direction: Direction
    variable: Optional[str] = None
    offset: int = 0
    stride: int = 1
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.device_kind not in (DeviceKind.MEMORY, DeviceKind.CACHE):
            raise DMASpecError(
                f"DMA programs apply to memory planes and caches, "
                f"not {self.device_kind.value}"
            )
        if self.device < 0:
            raise DMASpecError("device index must be non-negative")
        if self.stride == 0:
            raise DMASpecError("stride must be non-zero")
        if self.variable is None and self.offset < 0:
            raise DMASpecError("absolute offset must be non-negative")
        if self.count is not None and self.count < 0:
            raise DMASpecError("count must be non-negative")

    def validate_against(self, params: NSCParameters) -> None:
        """Device-range checks against a machine description."""
        if self.device_kind is DeviceKind.MEMORY:
            if self.device >= params.n_memory_planes:
                raise DMASpecError(
                    f"memory plane {self.device} out of range "
                    f"(machine has {params.n_memory_planes})"
                )
        else:
            if self.device >= params.n_caches:
                raise DMASpecError(
                    f"cache {self.device} out of range "
                    f"(machine has {params.n_caches})"
                )

    @property
    def is_symbolic(self) -> bool:
        return self.variable is not None

    def describe(self) -> str:
        where = (
            f"{self.variable}+{self.offset}" if self.is_symbolic else f"@{self.offset}"
        )
        return (
            f"{self.device_kind.value}[{self.device}] {self.direction.value} "
            f"{where} stride {self.stride}"
            + (f" count {self.count}" if self.count is not None else "")
        )


@dataclass(frozen=True)
class DMAProgram:
    """A fully resolved DMA program as loaded into a controller.

    Produced by the microcode generator once variables are bound and the
    vector length is known.
    """

    spec: DMASpec
    base_offset: int  # absolute word offset within the device
    count: int

    def cycles(self, params: NSCParameters) -> int:
        """Cost model: start-up plus one element per cycle."""
        startup = params.dma_startup_cycles + (
            params.memory_latency
            if self.spec.device_kind is DeviceKind.MEMORY
            else params.cache_latency
        )
        return startup + self.count


class DMAController:
    """One controller per memory plane / cache; holds the loaded program."""

    def __init__(self, device_kind: DeviceKind, device: int) -> None:
        self.device_kind = device_kind
        self.device = device
        self.program: Optional[DMAProgram] = None
        self.transfers_completed = 0
        self.words_moved = 0

    def load(self, program: DMAProgram) -> None:
        if (
            program.spec.device_kind is not self.device_kind
            or program.spec.device != self.device
        ):
            raise DMASpecError(
                f"program for {program.spec.device_kind.value}[{program.spec.device}] "
                f"loaded into controller {self.device_kind.value}[{self.device}]"
            )
        self.program = program

    def complete(self, words: int) -> None:
        self.transfers_completed += 1
        self.words_moved += words
        self.program = None


__all__ = [
    "Direction",
    "DMASpec",
    "DMASpecError",
    "DMAProgram",
    "DMAController",
]
