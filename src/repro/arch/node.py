"""Whole-node assembly: the static resource inventory of one NSC node.

:class:`NodeConfig` instantiates every ALS from the parameter set, assigns
global functional-unit indices, and builds the switch network over the
resulting endpoint inventory.  It is the single source of truth the
checker's knowledge base, the code generator, and the simulator all consult
— the paper's robustness argument (§4) that design changes should be
absorbed "merely by updating the knowledge base".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.als import ALS_CLASSES, ALSInstance, ALSKind
from repro.arch.funcunit import FUCapability
from repro.arch.params import NSCParameters
from repro.arch.switch import SwitchNetwork


@dataclass(frozen=True)
class FUDescriptor:
    """Resolved description of one functional unit within the node."""

    fu_index: int
    als_id: int
    slot: int
    capability: FUCapability


class NodeConfig:
    """Static description of one NSC node built from an
    :class:`~repro.arch.params.NSCParameters`."""

    def __init__(self, params: Optional[NSCParameters] = None) -> None:
        self.params = params if params is not None else NSCParameters()
        self.als_instances: List[ALSInstance] = []
        self._fus: List[FUDescriptor] = []
        self._build()
        self.switch = SwitchNetwork(self.params, self.n_fus)

    def _build(self) -> None:
        next_fu = 0
        als_id = 0
        plan: List[Tuple[ALSKind, int]] = [
            (ALSKind.SINGLET, self.params.n_singlets),
            (ALSKind.DOUBLET, self.params.n_doublets),
            (ALSKind.TRIPLET, self.params.n_triplets),
        ]
        for kind, count in plan:
            for _ in range(count):
                inst = ALSInstance(als_id=als_id, kind=kind, first_fu=next_fu)
                self.als_instances.append(inst)
                for slot in range(kind.n_units):
                    self._fus.append(
                        FUDescriptor(
                            fu_index=next_fu + slot,
                            als_id=als_id,
                            slot=slot,
                            capability=ALS_CLASSES[kind].slots[slot].capability,
                        )
                    )
                next_fu += kind.n_units
                als_id += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_fus(self) -> int:
        return len(self._fus)

    @property
    def n_als(self) -> int:
        return len(self.als_instances)

    def als(self, als_id: int) -> ALSInstance:
        if not (0 <= als_id < len(self.als_instances)):
            raise IndexError(f"no ALS {als_id} (node has {self.n_als})")
        return self.als_instances[als_id]

    def als_by_name(self, name: str) -> ALSInstance:
        for inst in self.als_instances:
            if inst.name == name:
                return inst
        raise KeyError(f"no ALS named {name!r}")

    def als_of_kind(self, kind: ALSKind) -> List[ALSInstance]:
        return [a for a in self.als_instances if a.kind is kind]

    def fu(self, fu_index: int) -> FUDescriptor:
        if not (0 <= fu_index < self.n_fus):
            raise IndexError(f"no functional unit {fu_index} (node has {self.n_fus})")
        return self._fus[fu_index]

    def fu_capability(self, fu_index: int) -> FUCapability:
        return self.fu(fu_index).capability

    def als_of_fu(self, fu_index: int) -> ALSInstance:
        return self.als(self.fu(fu_index).als_id)

    def fus_with_capability(self, capability: FUCapability) -> List[int]:
        return [
            d.fu_index for d in self._fus if capability in d.capability
        ]

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def inventory(self) -> Dict[str, object]:
        """The Fig. 1 datapath inventory as structured data."""
        p = self.params
        return {
            "functional_units": self.n_fus,
            "als": {
                "singlets": p.n_singlets,
                "doublets": p.n_doublets,
                "triplets": p.n_triplets,
            },
            "memory_planes": p.n_memory_planes,
            "memory_plane_mbytes": p.memory_plane_bytes // (1 << 20),
            "node_memory_gbytes": p.node_memory_bytes / (1 << 30),
            "caches": p.n_caches,
            "cache_buffer_words": p.cache_buffer_words,
            "shift_delay_units": p.n_shift_delay_units,
            "peak_mflops": p.peak_mflops_per_node,
        }

    def peak_mflops(self) -> float:
        return self.params.peak_mflops_per_node

    def __repr__(self) -> str:
        p = self.params
        return (
            f"NodeConfig({self.n_fus} FUs in {p.n_singlets}S/{p.n_doublets}D/"
            f"{p.n_triplets}T, {p.n_memory_planes} planes, {p.n_caches} caches)"
        )


__all__ = ["NodeConfig", "FUDescriptor"]
