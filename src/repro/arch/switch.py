"""The FLONET switch network: endpoint addressing and route derivation.

Paper §2: "A complex programmable switching network routes data among ALSs,
memory planes, caches, and shift-delay units."  Fig. 2 labels portions of it
FLONET.  The visual environment never shows switch settings to the user;
they are *derived* from the drawn connections ("The microcode generator
would later derive switch settings by interrogating the connection tables
built by the graphical editor", §5).

We model the network as a crossbar over typed endpoints with two physical
restrictions the checker enforces:

- every sink (a stream consumer) is driven by at most one source, and
- a source may fan out to at most ``switch_max_fanout`` sinks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.arch.params import NSCParameters


class DeviceKind(enum.Enum):
    """Classes of devices with switch-network ports."""

    FU = "fu"                  # functional unit: sinks a/b, source out
    MEMORY = "mem"             # memory plane: source read, sink write
    CACHE = "cache"            # data cache: source read, sink write
    SHIFT_DELAY = "sd"         # shift/delay unit: sink in, sources tap<k>


@dataclass(frozen=True)
class Endpoint:
    """A named port on a device: the thing an I/O pad stands for."""

    kind: DeviceKind
    device: int
    port: str

    def __hash__(self) -> int:
        # endpoints key every wiring index the compiler and checker
        # query; hashing the enum member each time dominated those maps
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.kind, self.device, self.port))
            self.__dict__["_hash"] = cached
        return cached

    def __lt__(self, other: "Endpoint") -> bool:
        if not isinstance(other, Endpoint):
            return NotImplemented
        return self.key < other.key

    def __str__(self) -> str:  # e.g. fu3.a, mem[2].read, sd[0].tap1
        if self.kind is DeviceKind.FU:
            return f"fu{self.device}.{self.port}"
        return f"{self.kind.value}[{self.device}].{self.port}"

    @property
    def key(self) -> Tuple[str, int, str]:
        return (self.kind.value, self.device, self.port)


def fu_in(fu: int, port: str) -> Endpoint:
    if port not in ("a", "b"):
        raise ValueError(f"FU input port must be 'a' or 'b', got {port!r}")
    return Endpoint(DeviceKind.FU, fu, port)


def fu_out(fu: int) -> Endpoint:
    return Endpoint(DeviceKind.FU, fu, "out")


def mem_read(plane: int) -> Endpoint:
    return Endpoint(DeviceKind.MEMORY, plane, "read")


def mem_write(plane: int) -> Endpoint:
    return Endpoint(DeviceKind.MEMORY, plane, "write")


def cache_read(cache: int) -> Endpoint:
    return Endpoint(DeviceKind.CACHE, cache, "read")


def cache_write(cache: int) -> Endpoint:
    return Endpoint(DeviceKind.CACHE, cache, "write")


def sd_in(unit: int) -> Endpoint:
    return Endpoint(DeviceKind.SHIFT_DELAY, unit, "in")


def sd_tap(unit: int, tap: int) -> Endpoint:
    return Endpoint(DeviceKind.SHIFT_DELAY, unit, f"tap{tap}")


class SwitchRouteError(Exception):
    """A requested routing violates the switch network's physical limits."""


@dataclass(frozen=True)
class SwitchSetting:
    """One crosspoint: *source* drives *sink*."""

    source: Endpoint
    sink: Endpoint

    def __str__(self) -> str:
        return f"{self.source} -> {self.sink}"


class SwitchNetwork:
    """Endpoint inventory and route validation for one node's FLONET."""

    def __init__(self, params: NSCParameters, n_fus: int) -> None:
        self.params = params
        self.n_fus = n_fus
        self._sources = frozenset(self._enumerate_sources())
        self._sinks = frozenset(self._enumerate_sinks())

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def _enumerate_sources(self) -> Iterable[Endpoint]:
        for fu in range(self.n_fus):
            yield fu_out(fu)
        for plane in range(self.params.n_memory_planes):
            yield mem_read(plane)
        for cache in range(self.params.n_caches):
            yield cache_read(cache)
        for unit in range(self.params.n_shift_delay_units):
            for tap in range(self.params.shift_delay_taps):
                yield sd_tap(unit, tap)

    def _enumerate_sinks(self) -> Iterable[Endpoint]:
        for fu in range(self.n_fus):
            yield fu_in(fu, "a")
            yield fu_in(fu, "b")
        for plane in range(self.params.n_memory_planes):
            yield mem_write(plane)
        for cache in range(self.params.n_caches):
            yield cache_write(cache)
        for unit in range(self.params.n_shift_delay_units):
            yield sd_in(unit)

    @property
    def sources(self) -> frozenset[Endpoint]:
        return self._sources

    @property
    def sinks(self) -> frozenset[Endpoint]:
        return self._sinks

    def is_source(self, ep: Endpoint) -> bool:
        return ep in self._sources

    def is_sink(self, ep: Endpoint) -> bool:
        return ep in self._sinks

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def derive_settings(
        self, connections: Iterable[Tuple[Endpoint, Endpoint]]
    ) -> List[SwitchSetting]:
        """Translate (source, sink) pairs into crosspoint settings.

        Raises :class:`SwitchRouteError` on unknown endpoints, multiply
        driven sinks, or fan-out beyond ``switch_max_fanout``.
        """
        settings: List[SwitchSetting] = []
        sink_driver: Dict[Endpoint, Endpoint] = {}
        fanout: Dict[Endpoint, int] = {}
        for source, sink in connections:
            if not self.is_source(source):
                raise SwitchRouteError(f"{source} is not a switch source")
            if not self.is_sink(sink):
                raise SwitchRouteError(f"{sink} is not a switch sink")
            if sink in sink_driver:
                raise SwitchRouteError(
                    f"sink {sink} already driven by {sink_driver[sink]}"
                )
            fanout[source] = fanout.get(source, 0) + 1
            if fanout[source] > self.params.switch_max_fanout:
                raise SwitchRouteError(
                    f"source {source} exceeds fan-out limit "
                    f"{self.params.switch_max_fanout}"
                )
            sink_driver[sink] = source
            settings.append(SwitchSetting(source=source, sink=sink))
        return settings


__all__ = [
    "DeviceKind",
    "Endpoint",
    "SwitchNetwork",
    "SwitchSetting",
    "SwitchRouteError",
    "fu_in",
    "fu_out",
    "mem_read",
    "mem_write",
    "cache_read",
    "cache_write",
    "sd_in",
    "sd_tap",
]
