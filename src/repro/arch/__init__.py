"""NSC node architecture: the machine model underneath the visual environment.

This subpackage is the "knowledge" the paper's checker and microcode
generator rely on: every hardware resource of a Navier-Stokes Computer node
is described here, in a parameterized form so that architectural subsets
(the paper's §6 programmability/performance trade-off) can be expressed by
swapping parameter sets rather than code.
"""

from repro.arch.params import NSCParameters, SUBSET_PARAMS
from repro.arch.funcunit import FUCapability, Opcode, OpInfo, OPCODES
from repro.arch.als import ALSKind, ALSClass, ALSInstance, FUSlot
from repro.arch.node import NodeConfig

__all__ = [
    "NSCParameters",
    "SUBSET_PARAMS",
    "FUCapability",
    "Opcode",
    "OpInfo",
    "OPCODES",
    "ALSKind",
    "ALSClass",
    "ALSInstance",
    "FUSlot",
    "NodeConfig",
]
