"""The interrupt scheme: pipeline completion, conditions, and exceptions.

Paper §2: "An elaborate interrupt scheme is used to signal pipeline
completions, evaluate conditional expressions, and trap exceptions."  The
sequencer (see :mod:`repro.sim.sequencer`) blocks on completion interrupts
between instructions and uses condition interrupts to implement the
residual-convergence loop of the Jacobi example.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple


class InterruptKind(enum.Enum):
    PIPELINE_COMPLETE = "pipeline_complete"  # a pipeline drained its streams
    CONDITION_TRUE = "condition_true"        # a monitored comparison fired
    CONDITION_FALSE = "condition_false"
    FP_OVERFLOW = "fp_overflow"
    FP_DIVIDE_BY_ZERO = "fp_divide_by_zero"
    FP_INVALID = "fp_invalid"
    DMA_FAULT = "dma_fault"


#: The controller's construction-time armed set: completions and
#: conditions delivered, exceptions masked (recorded in ``dropped``).
DEFAULT_ARMED_KINDS: FrozenSet[InterruptKind] = frozenset(
    {
        InterruptKind.PIPELINE_COMPLETE,
        InterruptKind.CONDITION_TRUE,
        InterruptKind.CONDITION_FALSE,
    }
)


@dataclass(frozen=True)
class InterruptConfig:
    """Observable controller configuration, for engines that must decide
    whether (and how) they can model a controller without stepping it."""

    armed: FrozenSet[InterruptKind]
    handler_kinds: Tuple[InterruptKind, ...]
    pending: int

    @property
    def is_default(self) -> bool:
        return (
            self.armed == DEFAULT_ARMED_KINDS
            and not self.handler_kinds
            and self.pending == 0
        )


@dataclass(frozen=True, order=True)
class Interrupt:
    """One posted interrupt, ordered by the cycle at which it fires."""

    cycle: int
    kind: InterruptKind = field(compare=False)
    source: str = field(compare=False, default="")
    payload: float = field(compare=False, default=0.0)


class InterruptController:
    """Arms, queues, and delivers interrupts in cycle order.

    Only armed kinds are delivered; unarmed exceptions are recorded in
    ``dropped`` so tests can assert on masking behaviour.
    """

    def __init__(self, latency_cycles: int = 0) -> None:
        self.latency_cycles = latency_cycles
        self._armed: set[InterruptKind] = set(DEFAULT_ARMED_KINDS)
        self._queue: List[Interrupt] = []
        self._handlers: Dict[InterruptKind, Callable[[Interrupt], None]] = {}
        self.delivered: List[Interrupt] = []
        self.dropped: List[Interrupt] = []

    def arm(self, kind: InterruptKind) -> None:
        self._armed.add(kind)

    def disarm(self, kind: InterruptKind) -> None:
        self._armed.discard(kind)

    def is_armed(self, kind: InterruptKind) -> bool:
        return kind in self._armed

    def configuration(self) -> InterruptConfig:
        """Snapshot of the armed set, registered handlers, and queue depth.

        This is the public surface execution engines gate on (the fused
        engine replays the post/deliver sequence analytically and must
        know the armed set; registered handlers force the stepped path)."""
        return InterruptConfig(
            armed=frozenset(self._armed),
            handler_kinds=tuple(sorted(self._handlers, key=lambda k: k.value)),
            pending=len(self._queue),
        )

    def is_default_config(self) -> bool:
        """True when the controller is in its construction-time state:
        default armed set, no handlers, nothing queued."""
        return self.configuration().is_default

    def on(self, kind: InterruptKind, handler: Callable[[Interrupt], None]) -> None:
        """Register *handler* to run when *kind* is delivered."""
        self._handlers[kind] = handler

    def post(
        self,
        kind: InterruptKind,
        cycle: int,
        source: str = "",
        payload: float = 0.0,
    ) -> Optional[Interrupt]:
        """Post an interrupt to fire ``latency_cycles`` after *cycle*."""
        irq = Interrupt(
            cycle=cycle + self.latency_cycles,
            kind=kind,
            source=source,
            payload=payload,
        )
        if kind not in self._armed:
            self.dropped.append(irq)
            return None
        heapq.heappush(self._queue, irq)
        return irq

    def pending(self) -> int:
        return len(self._queue)

    def next_pending(self) -> Optional[Interrupt]:
        return self._queue[0] if self._queue else None

    def deliver_until(self, cycle: int) -> List[Interrupt]:
        """Deliver every queued interrupt with fire-cycle <= *cycle*."""
        out: List[Interrupt] = []
        while self._queue and self._queue[0].cycle <= cycle:
            irq = heapq.heappop(self._queue)
            handler = self._handlers.get(irq.kind)
            if handler is not None:
                handler(irq)
            self.delivered.append(irq)
            out.append(irq)
        return out

    def drain(self) -> List[Interrupt]:
        """Deliver everything regardless of cycle (end of program)."""
        out: List[Interrupt] = []
        while self._queue:
            irq = heapq.heappop(self._queue)
            handler = self._handlers.get(irq.kind)
            if handler is not None:
                handler(irq)
            self.delivered.append(irq)
            out.append(irq)
        return out

    def reset(self) -> None:
        self._queue.clear()
        self.delivered.clear()
        self.dropped.clear()


__all__ = [
    "InterruptKind",
    "Interrupt",
    "InterruptConfig",
    "InterruptController",
    "DEFAULT_ARMED_KINDS",
]
