"""Machine parameters for a Navier-Stokes Computer node.

The paper (§2) fixes the headline numbers: 32 functional units per node,
memory in 16 planes of 128 Mbytes (2 Gbytes per node), 16 double-buffered
data caches, two shift/delay units, and a projected peak of 640 MFLOPS per
node.  Everything else (register-file depth, switch fan-out, latencies) is
not specified in the paper; we choose defaults consistent with the era and
make every quantity a parameter so the checker's knowledge base can be
re-targeted when the machine design changes — the robustness argument the
paper makes for having a checker at all.

The peak rate pins the clock: 640 MFLOPS / 32 FUs = 20 MHz per functional
unit (one floating-point result per cycle once a pipeline is full).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


MBYTE = 1 << 20
KBYTE = 1 << 10


@dataclass(frozen=True)
class NSCParameters:
    """Complete parameterization of one NSC node.

    Instances are immutable; derive variants with :meth:`subset` or
    :func:`dataclasses.replace`.
    """

    # --- functional units and ALS composition (must total n_functional_units)
    n_functional_units: int = 32
    n_singlets: int = 4
    n_doublets: int = 8
    n_triplets: int = 4

    # --- memory system
    n_memory_planes: int = 16
    memory_plane_bytes: int = 128 * MBYTE
    n_caches: int = 16
    cache_buffer_words: int = 8 * KBYTE  # per buffer; caches are double-buffered
    word_bytes: int = 8  # 64-bit floating point words

    # --- stream reformatting
    n_shift_delay_units: int = 2
    shift_delay_taps: int = 8          # output taps per shift/delay unit
    shift_delay_max_shift: int = 4096  # maximum element shift per tap

    # --- register files (one per functional unit)
    regfile_words: int = 64

    # --- switch network (FLONET)
    switch_max_fanout: int = 4  # sinks one source may drive

    # --- timing (cycles)
    clock_mhz: float = 20.0
    fu_latency_fp: int = 5        # floating point pipeline depth
    fu_latency_int: int = 2       # integer/logical pipeline depth
    fu_latency_minmax: int = 3    # max/min pipeline depth
    fu_latency_div: int = 17      # division is iterative
    switch_latency: int = 1       # cycles through FLONET per hop
    memory_latency: int = 8       # plane access start-up
    cache_latency: int = 2        # cache access start-up
    dma_startup_cycles: int = 12  # DMA program load / arbitration
    instruction_reconfig_cycles: int = 64  # switch reprogramming between pipelines

    # --- system level
    hypercube_dim: int = 6        # 64 nodes, per the paper's §2 example
    router_hop_cycles: int = 10
    router_link_words_per_cycle: float = 0.5

    # --- interrupt scheme
    interrupt_latency_cycles: int = 4

    def __post_init__(self) -> None:
        total = self.n_singlets + 2 * self.n_doublets + 3 * self.n_triplets
        if total != self.n_functional_units:
            raise ValueError(
                f"ALS composition covers {total} functional units, expected "
                f"{self.n_functional_units} "
                f"({self.n_singlets} singlets + {self.n_doublets} doublets + "
                f"{self.n_triplets} triplets)"
            )
        for name in (
            "n_functional_units",
            "n_memory_planes",
            "memory_plane_bytes",
            "n_caches",
            "cache_buffer_words",
            "word_bytes",
            "n_shift_delay_units",
            "shift_delay_taps",
            "regfile_words",
            "switch_max_fanout",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.hypercube_dim < 0:
            raise ValueError("hypercube_dim must be >= 0")
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def n_als(self) -> int:
        """Total number of arithmetic-logic structures."""
        return self.n_singlets + self.n_doublets + self.n_triplets

    @property
    def node_memory_bytes(self) -> int:
        """Total plane memory per node (2 Gbytes in the paper)."""
        return self.n_memory_planes * self.memory_plane_bytes

    @property
    def memory_plane_words(self) -> int:
        return self.memory_plane_bytes // self.word_bytes

    @property
    def peak_mflops_per_node(self) -> float:
        """One FP result per FU per cycle: 32 x 20 MHz = 640 MFLOPS."""
        return self.n_functional_units * self.clock_mhz

    @property
    def n_nodes(self) -> int:
        return 1 << self.hypercube_dim

    @property
    def peak_gflops_system(self) -> float:
        """Paper §2: a 64-node NSC peaks at 40 GFLOPS."""
        return self.peak_mflops_per_node * self.n_nodes / 1000.0

    @property
    def system_memory_bytes(self) -> int:
        """Paper §2: a 64-node NSC has 128 Gbytes."""
        return self.node_memory_bytes * self.n_nodes

    # ------------------------------------------------------------------
    # variants
    # ------------------------------------------------------------------
    def subset(self, **overrides: object) -> "NSCParameters":
        """Return a modified copy, used for architectural-subset studies."""
        return replace(self, **overrides)  # type: ignore[arg-type]


#: The paper's §6 suggestion: "use a simpler architectural model, perhaps a
#: subset of the NSC".  This subset keeps only doublets (uniform ALSs), half
#: the memory planes, no shift/delay units and a single cache per plane,
#: trading performance for programmability.  Benchmark C5 quantifies the
#: trade-off.
SUBSET_PARAMS = NSCParameters(
    n_functional_units=16,
    n_singlets=0,
    n_doublets=8,
    n_triplets=0,
    n_memory_planes=8,
    n_caches=8,
    n_shift_delay_units=1,
    hypercube_dim=0,
)

DEFAULT_PARAMS = NSCParameters()

__all__ = ["NSCParameters", "DEFAULT_PARAMS", "SUBSET_PARAMS", "MBYTE", "KBYTE"]
