"""Register files: constants, intermediates, and circular delay queues.

Paper §2: "each functional unit has an associated register file which can be
used to store constants or intermediate values, as well as to buffer data to
adjust for pipeline timing delays".  §5 describes the delay mechanism:
"Timing delays ... may be introduced by routing input data into a circular
queue in a register file and then retrieving the value a number of clock
cycles later when it appears at the head of the queue."

Each file has a fixed number of words shared between constant slots and
circular queues; a queue delaying a stream by *d* cycles consumes *d* words.
The allocator here is what both the checker (capacity rule) and the codegen
timing balancer (auto-inserted delays) use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class RegisterFileOverflow(Exception):
    """Raised when an allocation exceeds the register file's word capacity."""


@dataclass(frozen=True)
class ConstantSlot:
    """A register-file word holding a program constant."""

    index: int
    value: float


@dataclass(frozen=True)
class DelayQueue:
    """A circular queue of *length* words delaying one input stream.

    The delayed value "appears at the head of the queue" *length* cycles
    after entering; the queue therefore implements an exact element delay of
    ``length`` pipeline slots.
    """

    base: int
    length: int
    port: str  # which FU input port ('a' or 'b') the queue feeds


@dataclass
class RegisterFileAllocator:
    """Tracks word usage of one functional unit's register file."""

    capacity: int
    constants: List[ConstantSlot] = field(default_factory=list)
    queues: List[DelayQueue] = field(default_factory=list)

    @property
    def words_used(self) -> int:
        return len(self.constants) + sum(q.length for q in self.queues)

    @property
    def words_free(self) -> int:
        return self.capacity - self.words_used

    def alloc_constant(self, value: float) -> ConstantSlot:
        """Allocate one word for *value*; reuses an existing equal constant."""
        for slot in self.constants:
            if slot.value == value:
                return slot
        if self.words_free < 1:
            raise RegisterFileOverflow(
                f"register file full ({self.capacity} words) allocating constant"
            )
        slot = ConstantSlot(index=self.words_used, value=value)
        self.constants.append(slot)
        return slot

    def alloc_delay(self, port: str, length: int) -> DelayQueue:
        """Allocate a circular queue delaying input *port* by *length* cycles."""
        if length <= 0:
            raise ValueError("delay length must be positive")
        for q in self.queues:
            if q.port == port:
                raise RegisterFileOverflow(
                    f"input port {port!r} already has a delay queue"
                )
        if self.words_free < length:
            raise RegisterFileOverflow(
                f"register file has {self.words_free} free words, "
                f"delay of {length} requested"
            )
        queue = DelayQueue(base=self.words_used, length=length, port=port)
        self.queues.append(queue)
        return queue

    def delay_for_port(self, port: str) -> int:
        """Configured delay (cycles) on input *port*; 0 when none."""
        for q in self.queues:
            if q.port == port:
                return q.length
        return 0

    def reset(self) -> None:
        self.constants.clear()
        self.queues.clear()

    def snapshot(self) -> Dict[str, object]:
        """Serializable summary (used by the microcode generator)."""
        return {
            "capacity": self.capacity,
            "constants": [(s.index, s.value) for s in self.constants],
            "queues": [(q.base, q.length, q.port) for q in self.queues],
        }


__all__ = [
    "RegisterFileAllocator",
    "RegisterFileOverflow",
    "ConstantSlot",
    "DelayQueue",
]
