"""Memory planes and double-buffered data caches.

Paper §2: "Memory is arranged in 16 planes of 128 Mbytes each, for a total
memory of 2 Gbytes per node.  In addition, there are 16 double-buffered data
caches."  §3 explains why planes dominate the programming problem: a
functional unit may touch only one plane per instruction, concurrent users
of a plane contend, and the best variable layout for one pipeline may be
unworkable for the next — sometimes forcing multiple copies of arrays or
relocation between phases.

This module provides the *storage* model: a plane allocator for named
variables (what the Fig. 9 pop-up's "variable name or starting address"
refers to) and the double-buffer protocol of the caches.  Streaming access
is the job of :mod:`repro.arch.dma` and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.arch.params import NSCParameters


class AllocationError(Exception):
    """A variable does not fit, overlaps, or names an unknown plane."""


@dataclass(frozen=True)
class Variable:
    """A named region of one memory plane (word granularity)."""

    name: str
    plane: int
    offset: int  # word offset within the plane
    length: int  # words

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, other: "Variable") -> bool:
        return self.plane == other.plane and not (
            self.end <= other.offset or other.end <= self.offset
        )


class MemoryPlane:
    """One plane: a word-addressed array with an allocation map.

    Simulator storage is lazily grown NumPy; a 128 MB plane is 16M words and
    we only materialize the prefix programs actually touch.
    """

    def __init__(self, plane_id: int, n_words: int) -> None:
        self.plane_id = plane_id
        self.n_words = n_words
        self._data = np.zeros(0, dtype=np.float64)

    def _ensure(self, n: int) -> None:
        if n > self.n_words:
            raise AllocationError(
                f"plane {self.plane_id}: access at word {n} exceeds "
                f"{self.n_words}-word capacity"
            )
        if n > self._data.size:
            grown = np.zeros(max(n, 2 * self._data.size, 1024), dtype=np.float64)
            grown[: self._data.size] = self._data
            self._data = grown

    def read(self, offset: int, count: int, stride: int = 1) -> np.ndarray:
        """Read *count* words starting at *offset* with *stride* (a copy)."""
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        last = offset + (count - 1) * stride
        if offset < 0 or last < 0:
            raise AllocationError(f"plane {self.plane_id}: negative address")
        self._ensure(max(offset, last) + 1)
        return self._data[offset : offset + count * stride : stride].copy() \
            if stride > 0 else self._data[offset : (last - 1 if last > 0 else None) : stride].copy()

    def write(self, offset: int, values: np.ndarray, stride: int = 1) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        last = offset + (values.size - 1) * stride
        if offset < 0 or last < 0:
            raise AllocationError(f"plane {self.plane_id}: negative address")
        self._ensure(max(offset, last) + 1)
        if stride > 0:
            self._data[offset : offset + values.size * stride : stride] = values
        else:
            self._data[offset : (last - 1 if last > 0 else None) : stride] = values


class PlaneMemory:
    """All planes of one node plus the variable allocation table."""

    def __init__(self, params: NSCParameters) -> None:
        self.params = params
        self.planes: List[MemoryPlane] = [
            MemoryPlane(i, params.memory_plane_words)
            for i in range(params.n_memory_planes)
        ]
        self.variables: Dict[str, Variable] = {}

    def plane(self, plane_id: int) -> MemoryPlane:
        if not (0 <= plane_id < len(self.planes)):
            raise AllocationError(f"no memory plane {plane_id}")
        return self.planes[plane_id]

    # ------------------------------------------------------------------
    # variable table
    # ------------------------------------------------------------------
    def declare(
        self, name: str, plane: int, length: int, offset: Optional[int] = None
    ) -> Variable:
        """Declare variable *name* on *plane*; auto-places after existing
        variables when *offset* is omitted."""
        if name in self.variables:
            raise AllocationError(f"variable {name!r} already declared")
        if not (0 <= plane < self.params.n_memory_planes):
            raise AllocationError(f"no memory plane {plane}")
        if length <= 0:
            raise AllocationError("variable length must be positive")
        if offset is None:
            offset = max(
                (v.end for v in self.variables.values() if v.plane == plane),
                default=0,
            )
        var = Variable(name=name, plane=plane, offset=offset, length=length)
        if var.end > self.params.memory_plane_words:
            raise AllocationError(
                f"variable {name!r} ({length} words at {offset}) exceeds plane "
                f"capacity {self.params.memory_plane_words}"
            )
        for other in self.variables.values():
            if var.overlaps(other):
                raise AllocationError(
                    f"variable {name!r} overlaps {other.name!r} on plane {plane}"
                )
        self.variables[name] = var
        return var

    def lookup(self, name: str) -> Variable:
        try:
            return self.variables[name]
        except KeyError:
            raise AllocationError(f"undeclared variable {name!r}") from None

    def read_var(self, name: str) -> np.ndarray:
        var = self.lookup(name)
        return self.planes[var.plane].read(var.offset, var.length)

    def write_var(self, name: str, values: np.ndarray) -> None:
        var = self.lookup(name)
        values = np.asarray(values, dtype=np.float64)
        if values.size != var.length:
            raise AllocationError(
                f"variable {name!r} holds {var.length} words, got {values.size}"
            )
        self.planes[var.plane].write(var.offset, values)


class DoubleBufferedCache:
    """A data cache with two buffers that swap roles.

    One buffer streams into/out of the pipeline while the other is filled or
    drained by its DMA controller; :meth:`swap` flips them between pipeline
    phases.  This is the mechanism that lets memory traffic overlap compute.
    """

    def __init__(self, cache_id: int, buffer_words: int) -> None:
        self.cache_id = cache_id
        self.buffer_words = buffer_words
        self._buffers = [
            np.zeros(buffer_words, dtype=np.float64),
            np.zeros(buffer_words, dtype=np.float64),
        ]
        self._front = 0
        self.swaps = 0

    @property
    def front(self) -> np.ndarray:
        """Buffer visible to the pipeline."""
        return self._buffers[self._front]

    @property
    def back(self) -> np.ndarray:
        """Buffer owned by the DMA engine."""
        return self._buffers[1 - self._front]

    def swap(self) -> None:
        self._front = 1 - self._front
        self.swaps += 1

    def load_back(self, values: np.ndarray, offset: int = 0) -> None:
        values = np.asarray(values, dtype=np.float64)
        if offset < 0 or offset + values.size > self.buffer_words:
            raise AllocationError(
                f"cache {self.cache_id}: load of {values.size} words at "
                f"{offset} exceeds buffer of {self.buffer_words}"
            )
        self.back[offset : offset + values.size] = values

    def read_front(self, offset: int, count: int, stride: int = 1) -> np.ndarray:
        last = offset + (count - 1) * stride if count else offset
        if offset < 0 or (count and (last < 0 or max(offset, last) >= self.buffer_words)):
            raise AllocationError(
                f"cache {self.cache_id}: read [{offset}:{last}] out of range"
            )
        return self.front[offset : offset + count * stride : stride].copy()

    def write_front(self, offset: int, values: np.ndarray, stride: int = 1) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        last = offset + (values.size - 1) * stride
        if offset < 0 or last < 0 or max(offset, last) >= self.buffer_words:
            raise AllocationError(
                f"cache {self.cache_id}: write [{offset}:{last}] out of range"
            )
        self.front[offset : offset + values.size * stride : stride] = values


__all__ = [
    "AllocationError",
    "Variable",
    "MemoryPlane",
    "PlaneMemory",
    "DoubleBufferedCache",
]
