"""Shift/delay units: reformatting memory data into multiple vector streams.

Paper §2: "Two shift/delay units are provided to aid in reformatting memory
data into multiple vector streams."  This is the stencil trick: a single
stream of grid values enters the unit and several *taps* emit copies of the
stream shifted by fixed element offsets, so the six neighbours of a 3-D
stencil can be produced from one memory read instead of six.

A tap with shift *s* emits, at stream position *i*, the input element
``i + s`` (negative shifts look backwards).  Elements outside the stream are
the unit's fill value (zero), matching a hardware shift register that powers
up cleared; in practice programs size their streams so edge elements are
discarded or masked downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.arch.params import NSCParameters


class ShiftDelayError(Exception):
    """Illegal tap index or shift amount."""


@dataclass(frozen=True)
class TapSpec:
    """Configuration of one output tap: an element shift."""

    tap: int
    shift: int


class ShiftDelayUnit:
    """One shift/delay unit: an input port and ``n_taps`` shifted outputs."""

    def __init__(self, unit_id: int, n_taps: int, max_shift: int) -> None:
        self.unit_id = unit_id
        self.n_taps = n_taps
        self.max_shift = max_shift
        self._taps: Dict[int, TapSpec] = {}

    def configure_tap(self, tap: int, shift: int) -> TapSpec:
        if not (0 <= tap < self.n_taps):
            raise ShiftDelayError(
                f"shift/delay unit {self.unit_id}: tap {tap} out of range "
                f"(has {self.n_taps} taps)"
            )
        if abs(shift) > self.max_shift:
            raise ShiftDelayError(
                f"shift/delay unit {self.unit_id}: shift {shift} exceeds "
                f"+-{self.max_shift}"
            )
        spec = TapSpec(tap=tap, shift=shift)
        self._taps[tap] = spec
        return spec

    def tap_shift(self, tap: int) -> int:
        if tap not in self._taps:
            raise ShiftDelayError(
                f"shift/delay unit {self.unit_id}: tap {tap} not configured"
            )
        return self._taps[tap].shift

    @property
    def configured_taps(self) -> List[TapSpec]:
        return [self._taps[t] for t in sorted(self._taps)]

    def reset(self) -> None:
        self._taps.clear()

    # ------------------------------------------------------------------
    # stream semantics (used by the simulator)
    # ------------------------------------------------------------------
    def apply(self, stream: np.ndarray, tap: int) -> np.ndarray:
        """Emit the shifted stream for *tap* given the full input *stream*."""
        shift = self.tap_shift(tap)
        return shift_stream(stream, shift)

    @property
    def extra_latency(self) -> int:
        """Pipeline start-up cycles contributed by the unit itself.

        The *relative* alignment between taps is in the shifts; the unit adds
        one cycle of transit regardless of configuration.
        """
        return 1


def shift_stream(stream: np.ndarray, shift: int, fill: float = 0.0) -> np.ndarray:
    """Pure stream-shift semantics: output[i] = input[i + shift], else fill."""
    stream = np.asarray(stream, dtype=np.float64)
    n = stream.size
    out = np.full(n, fill, dtype=np.float64)
    if shift >= 0:
        m = n - shift
        if m > 0:
            out[:m] = stream[shift:]
    else:
        m = n + shift
        if m > 0:
            out[-m:] = stream[:m]
    return out


def make_units(params: NSCParameters) -> List[ShiftDelayUnit]:
    """Instantiate the node's shift/delay units from *params*."""
    return [
        ShiftDelayUnit(i, params.shift_delay_taps, params.shift_delay_max_shift)
        for i in range(params.n_shift_delay_units)
    ]


__all__ = [
    "ShiftDelayUnit",
    "ShiftDelayError",
    "TapSpec",
    "shift_stream",
    "make_units",
]
