"""The hyperspace router: inter-node communication over a hypercube.

Paper §1/§2: "multiple processing nodes arranged in a hypercube
configuration ... Communication between nodes is handled by means of a
hyperspace router."  The paper deliberately scopes the visual environment to
single-node programming, so the router here serves the multi-node simulation
layer (:mod:`repro.sim.multinode`) used for the 64-node performance claim
(benchmark C1): e-cube dimension-ordered routing with a simple
hops-plus-serialization cost model and per-link traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.arch.params import NSCParameters


class RoutingError(Exception):
    """Bad node id or malformed route request."""


class HypercubeTopology:
    """A ``dim``-dimensional binary hypercube of ``2**dim`` nodes."""

    def __init__(self, dim: int) -> None:
        if dim < 0:
            raise RoutingError("hypercube dimension must be >= 0")
        self.dim = dim
        self.n_nodes = 1 << dim

    def check_node(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise RoutingError(
                f"node {node} out of range for {self.dim}-cube "
                f"({self.n_nodes} nodes)"
            )

    def neighbors(self, node: int) -> List[int]:
        """Nodes one hop away (Hamming distance 1)."""
        self.check_node(node)
        return [node ^ (1 << d) for d in range(self.dim)]

    def distance(self, a: int, b: int) -> int:
        """Hop count between *a* and *b* (Hamming distance)."""
        self.check_node(a)
        self.check_node(b)
        return (a ^ b).bit_count()

    def route(self, src: int, dst: int) -> List[int]:
        """E-cube (dimension-ordered) path from *src* to *dst*, inclusive."""
        self.check_node(src)
        self.check_node(dst)
        path = [src]
        cur = src
        diff = src ^ dst
        for d in range(self.dim):
            if diff & (1 << d):
                cur ^= 1 << d
                path.append(cur)
        return path

    def links(self) -> Iterator[Tuple[int, int]]:
        """Every undirected link, each reported once as (low, high)."""
        for node in range(self.n_nodes):
            for d in range(self.dim):
                other = node ^ (1 << d)
                if node < other:
                    yield (node, other)


@dataclass(frozen=True)
class Message:
    """One inter-node transfer of ``words`` 64-bit words."""

    src: int
    dst: int
    words: int
    tag: str = ""


@dataclass
class LinkStats:
    messages: int = 0
    words: int = 0


class HyperspaceRouter:
    """Routes messages over a hypercube with per-link traffic accounting.

    The cost model charges ``router_hop_cycles`` per hop for the header plus
    serialization at ``router_link_words_per_cycle`` on each link traversed
    (store-and-forward, matching the era's routers).
    """

    def __init__(self, params: NSCParameters) -> None:
        self.params = params
        self.topology = HypercubeTopology(params.hypercube_dim)
        self.link_stats: Dict[Tuple[int, int], LinkStats] = {}
        self.messages_sent = 0

    def _link_key(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def send(self, message: Message) -> int:
        """Deliver *message*; returns the transfer latency in cycles."""
        path = self.topology.route(message.src, message.dst)
        hops = len(path) - 1
        if hops == 0:
            return 0  # local delivery is free
        for a, b in zip(path, path[1:]):
            stats = self.link_stats.setdefault(self._link_key(a, b), LinkStats())
            stats.messages += 1
            stats.words += message.words
        self.messages_sent += 1
        serialization = int(
            round(message.words / self.params.router_link_words_per_cycle)
        )
        return hops * (self.params.router_hop_cycles + serialization)

    def exchange(self, pairs: List[Message]) -> int:
        """Perform a set of concurrent transfers; returns the makespan.

        Transfers proceed in parallel; the makespan is the slowest transfer
        after accounting for contention (multiple messages sharing a link
        serialize on it).
        """
        link_load: Dict[Tuple[int, int], int] = {}
        latencies: List[int] = []
        for msg in pairs:
            path = self.topology.route(msg.src, msg.dst)
            base = self.send(msg)
            contention = 0
            for a, b in zip(path, path[1:]):
                key = self._link_key(a, b)
                contention = max(contention, link_load.get(key, 0))
                link_load[key] = link_load.get(key, 0) + int(
                    round(msg.words / self.params.router_link_words_per_cycle)
                )
            latencies.append(base + contention)
        return max(latencies, default=0)

    @property
    def total_words(self) -> int:
        return sum(s.words for s in self.link_stats.values())

    def busiest_link(self) -> Tuple[Tuple[int, int], LinkStats] | None:
        if not self.link_stats:
            return None
        key = max(self.link_stats, key=lambda k: self.link_stats[k].words)
        return key, self.link_stats[key]


__all__ = [
    "HypercubeTopology",
    "HyperspaceRouter",
    "Message",
    "LinkStats",
    "RoutingError",
]
