"""Queryable run history over the JSONL :class:`ResultStore`.

The store is the daemon's durable layer — every finished job appends one
record (the same schema ``nsc-vpe batch`` writes offline, which is what
makes daemon and offline stores digest-comparable).  ``GET /runs``
serves filtered views of it: by method, outcome, tier, job id, or label
substring, newest first, paginated.  Filtering happens on a fresh
:meth:`ResultStore.load` each query, so the endpoint always reflects
what is actually on disk — including records appended by *other*
writers sharing the store (the file lock in
:mod:`repro.service.results` makes that sharing safe).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.service.results import ResultStore


class HistoryQueryError(ValueError):
    """A /runs query parameter is malformed."""


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes"):
        return True
    if lowered in ("0", "false", "no"):
        return False
    raise HistoryQueryError(f"{name} must be a boolean, got {raw!r}")


class RunHistory:
    """Filtered, paginated views over one result store."""

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    def query(
        self,
        method: Optional[str] = None,
        ok: Optional[bool] = None,
        tier: Optional[str] = None,
        job_id: Optional[str] = None,
        label: Optional[str] = None,
        limit: int = 50,
        offset: int = 0,
    ) -> Dict[str, Any]:
        """Matching records, newest first.

        Returns ``{"total": N, "returned": n, "records": [...]}`` where
        ``total`` counts every match and ``records`` is the
        ``offset``/``limit`` page of them.
        """
        if limit < 0:
            raise HistoryQueryError(f"limit must be >= 0, got {limit}")
        if offset < 0:
            raise HistoryQueryError(f"offset must be >= 0, got {offset}")
        records = self.store.load()
        records.reverse()  # newest first: later appends shadow earlier
        matches: List[Dict[str, Any]] = []
        for record in records:
            if method is not None and record.get("method") != method:
                continue
            if ok is not None and bool(record.get("ok")) != ok:
                continue
            if tier is not None and record.get("tier") != tier:
                continue
            if job_id is not None and record.get("job_id") != job_id:
                continue
            if label is not None and label not in str(record.get("label", "")):
                continue
            matches.append(record)
        page = matches[offset : offset + limit]
        return {
            "total": len(matches),
            "returned": len(page),
            "offset": offset,
            "records": page,
        }

    def query_params(self, params: Dict[str, str]) -> Dict[str, Any]:
        """:meth:`query` driven by raw string query parameters (the HTTP
        layer's entry point); unknown parameters are rejected so typos
        fail loudly instead of silently returning everything."""
        known = {"method", "ok", "tier", "job_id", "label", "limit", "offset"}
        unknown = set(params) - known
        if unknown:
            raise HistoryQueryError(
                f"unknown query parameters: {sorted(unknown)}; "
                f"expected from {sorted(known)}"
            )
        try:
            limit = int(params.get("limit", "50"))
            offset = int(params.get("offset", "0"))
        except ValueError as exc:
            raise HistoryQueryError(f"limit/offset must be integers: {exc}")
        ok: Optional[bool] = None
        if "ok" in params:
            ok = _parse_bool("ok", params["ok"])
        return self.query(
            method=params.get("method"),
            ok=ok,
            tier=params.get("tier"),
            job_id=params.get("job_id"),
            label=params.get("label"),
            limit=limit,
            offset=offset,
        )


__all__ = ["RunHistory", "HistoryQueryError"]
