"""Thin stdlib client for the service daemon.

:class:`ServiceClient` is the programmatic face of ``nsc-vpe batch
--server URL``: pure :mod:`urllib.request`, JSON in and out, no
dependencies beyond what the daemon itself uses.  It adds exactly three
behaviors over raw HTTP:

- **identity** — every request carries the client's ``X-Client-Id`` (the
  rate-limiter key) and an ``X-Correlation-Id``, so daemon-side events
  are attributable to this caller;
- **polite retry** — a 429 answer is retried after the server's
  ``Retry-After`` hint, up to a bounded number of rounds, because the
  token bucket *guarantees* the retried request succeeds if the client
  actually waits (the no-starvation property);
- **completion polling** — :meth:`run` submits and long-polls
  ``GET /jobs/{id}?wait=`` until the submission finishes, returning the
  full result payload — the offline ``BatchRunner.run`` shape, one
  network hop away.

Errors the server reports deliberately (4xx/5xx JSON bodies) raise
:class:`ServerError` carrying the decoded payload; transport-level
failures raise their usual :mod:`urllib.error` exceptions so callers can
tell "the daemon said no" from "there is no daemon".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.server import correlation


class ServerError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """JSON client for one daemon base URL (e.g. ``http://127.0.0.1:8787``)."""

    def __init__(
        self,
        base_url: str,
        client_id: str = "nsc-vpe-cli",
        timeout: float = 120.0,
        max_rate_limit_retries: int = 8,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.max_rate_limit_retries = max_rate_limit_retries

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One JSON round trip, transparently retrying 429s."""
        body = None
        headers = {
            "X-Client-Id": self.client_id,
            correlation.HEADER: correlation.current() or correlation.new_id(),
            "Accept": "application/json",
        }
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        url = self.base_url + path
        for attempt in range(self.max_rate_limit_retries + 1):
            req = urllib.request.Request(url, data=body, headers=headers, method=method)
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                answer = self._decode(exc)
                if exc.code == 429 and attempt < self.max_rate_limit_retries:
                    # waiting out retry_after guarantees the retry is
                    # granted (no-starvation), so this loop terminates
                    time.sleep(
                        max(0.05, float(answer.get("retry_after", 0.2)))
                    )
                    continue
                raise ServerError(exc.code, answer)
        raise ServerError(429, {"error": "rate limited beyond retry budget"})

    @staticmethod
    def _decode(exc: urllib.error.HTTPError) -> Dict[str, Any]:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except Exception:
            return {"error": f"HTTP {exc.code}"}

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def submit(
        self,
        jobs: Optional[List[Dict[str, Any]]] = None,
        sweep: Optional[Dict[str, Any]] = None,
        tag: str = "",
        resume: bool = False,
    ) -> Dict[str, Any]:
        """``POST /jobs``; returns the submission status payload (its
        ``"id"`` is the handle everything else takes)."""
        payload: Dict[str, Any] = {}
        if jobs is not None:
            payload["jobs"] = jobs
        if sweep is not None:
            payload["sweep"] = sweep
        if tag:
            payload["tag"] = tag
        if resume:
            payload["resume"] = True
        return self.request("POST", "/jobs", payload)

    def status(self, sub_id: str, wait: float = 0.0) -> Dict[str, Any]:
        path = f"/jobs/{sub_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def result(self, sub_id: str, wait: float = 0.0) -> Dict[str, Any]:
        path = f"/jobs/{sub_id}/result"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def wait(self, sub_id: str, timeout: float = 600.0) -> Dict[str, Any]:
        """Long-poll until the submission leaves queued/running (or
        *timeout* elapses); returns the final status payload."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self.status(sub_id)
            status = self.status(sub_id, wait=min(30.0, remaining))
            if status.get("state") in ("done", "failed"):
                return status

    def run(
        self,
        jobs: Optional[List[Dict[str, Any]]] = None,
        sweep: Optional[Dict[str, Any]] = None,
        tag: str = "",
        resume: bool = False,
        timeout: float = 600.0,
    ) -> Dict[str, Any]:
        """Submit, wait, fetch: the one-call offline-equivalent path."""
        sub = self.submit(jobs=jobs, sweep=sweep, tag=tag, resume=resume)
        status = self.wait(sub["id"], timeout=timeout)
        if status.get("state") == "failed":
            raise ServerError(500, {"error": status.get("error", "run failed")})
        if status.get("state") != "done":
            raise ServerError(
                504, {"error": f"submission {sub['id']} still {status.get('state')} "
                               f"after {timeout}s"}
            )
        return self.result(sub["id"])

    def runs(self, **params: Any) -> Dict[str, Any]:
        query = "&".join(f"{k}={v}" for k, v in params.items() if v is not None)
        return self.request("GET", "/runs" + (f"?{query}" if query else ""))

    def events(self, after: int = 0, limit: int = 1000, wait: float = 0.0
               ) -> Dict[str, Any]:
        path = f"/events?after={after}&limit={limit}"
        if wait > 0:
            path += f"&wait={wait:g}"
        return self.request("GET", path)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("POST", "/shutdown")


__all__ = ["ServiceClient", "ServerError"]
