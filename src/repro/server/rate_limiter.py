"""Per-client token-bucket rate limiting for the service daemon.

One :class:`TokenBucket` models one client's budget: it holds up to
``capacity`` tokens, refills continuously at ``refill_rate`` tokens per
second, and a request is granted iff a whole token is available.  Both
laws the property suite (``tests/property/test_rate_limiter_property.py``)
pins down follow directly from the update rule:

- **bounded grant**: over any window of ``elapsed`` seconds, the number
  of granted requests can never exceed ``capacity + refill_rate *
  elapsed`` — the bucket can only hand out what it started with plus
  what trickled in;
- **no starvation**: a rejection comes with a ``retry_after`` hint (the
  time until the missing fraction refills), and a client that waits it
  out is guaranteed its next request succeeds, provided nobody else
  drains its bucket in between — buckets are per-client precisely so
  nobody else can.

The clock is injectable so tests (and the hypothesis properties) drive
time deterministically; production uses :func:`time.monotonic`.

:class:`RateLimiter` maintains one bucket per client key (the daemon
keys on the ``X-Client-Id`` header, falling back to the peer address)
behind a lock, so the asyncio request path and any helper thread see a
consistent picture.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One client's continuously refilling budget.

    ``capacity`` is the burst size (and the initial balance);
    ``refill_rate`` is tokens per second.  Fractional token state is
    kept exactly — granting only ever subtracts whole tokens, refilling
    adds ``rate * dt`` — so the bounded-grant invariant holds over any
    interleaving of arrivals and refills.
    """

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if refill_rate <= 0:
            raise ValueError(f"refill_rate must be > 0, got {refill_rate}")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()

    def _refill(self, now: float) -> None:
        # a clock that jumps backwards (it should not: monotonic) must
        # never mint tokens, so negative deltas are clamped away
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_rate)

    def try_acquire(self, n: int = 1) -> Tuple[bool, float]:
        """Attempt to take *n* whole tokens.

        Returns ``(granted, retry_after)``: ``retry_after`` is 0 on a
        grant, otherwise the seconds until the deficit will have
        refilled — the no-starvation hint (waiting that long guarantees
        the retry succeeds if nothing else drains the bucket).
        """
        if n < 1:
            raise ValueError(f"must acquire >= 1 token, got {n}")
        self._refill(self._clock())
        if self._tokens >= n:
            self._tokens -= n
            return True, 0.0
        return False, (n - self._tokens) / self.refill_rate

    @property
    def tokens(self) -> float:
        """Current balance (refreshed to now) — for /stats and tests."""
        self._refill(self._clock())
        return self._tokens


class RateLimiter:
    """Per-client buckets with shared capacity/refill configuration.

    ``check(client)`` is the single entry point: it lazily creates the
    client's bucket and answers ``(granted, retry_after)``.  Rejections
    are counted per client (surfaced by ``GET /stats``).  Thread-safe —
    the daemon calls it from the event loop while tests poke it from
    worker threads.
    """

    def __init__(
        self,
        capacity: float = 60,
        refill_rate: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._rejected: Dict[str, int] = {}
        self._granted = 0
        self._lock = threading.Lock()

    def check(self, client: str, n: int = 1) -> Tuple[bool, float]:
        """Grant or reject one request from *client*."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.capacity, self.refill_rate, self._clock)
                self._buckets[client] = bucket
            granted, retry_after = bucket.try_acquire(n)
            if granted:
                self._granted += 1
            else:
                self._rejected[client] = self._rejected.get(client, 0) + 1
            return granted, retry_after

    def stats(self) -> Dict[str, object]:
        """JSON-ready snapshot for ``GET /stats``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "refill_per_s": self.refill_rate,
                "clients": len(self._buckets),
                "granted": self._granted,
                "rejected": sum(self._rejected.values()),
                "rejected_by_client": dict(self._rejected),
            }


__all__ = ["TokenBucket", "RateLimiter"]
