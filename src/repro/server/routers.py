"""Endpoint handlers for the service daemon.

Each handler is a plain function from ``(app, request)`` to
``(status_code, json_payload)`` — no asyncio, no sockets, no parsing.
The HTTP plumbing in :mod:`repro.server.app` owns the wire format and
middleware (correlation, rate limiting); everything *semantic* about the
API surface lives here, which is what makes the handlers directly
testable without a socket in sight.

The surface (all JSON in, JSON out):

====================  ====================================================
``GET /healthz``      liveness (never rate-limited)
``GET /stats``        live counters: cache/plan hits, submissions, events
``POST /jobs``        submit ``{"jobs": [...]}`` or ``{"sweep": {...}}``
``GET /jobs``         list submissions, oldest first
``GET /jobs/{id}``    submission status (``?wait=SEC`` long-polls)
``GET /jobs/{id}/result``  full records + summary once done
``GET /runs``         queryable history over the result store
``GET /events``       event tail (``?after=SEQ``, ``?wait=SEC``)
``POST /shutdown``    graceful stop
====================  ====================================================
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.server.history import HistoryQueryError
from repro.server.service import SubmissionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.app import Request, ServiceApp

Reply = Tuple[int, Dict[str, Any]]

#: Long-poll ceilings: a ``?wait=`` beyond this is clamped, not refused.
MAX_WAIT_S = 60.0


def _wait_seconds(request: "Request") -> float:
    raw = request.query.get("wait")
    if raw is None:
        return 0.0
    try:
        return min(MAX_WAIT_S, max(0.0, float(raw)))
    except ValueError:
        raise HistoryQueryError(f"wait must be a number, got {raw!r}")


def healthz(app: "ServiceApp", request: "Request") -> Reply:
    return 200, {"ok": True, "uptime_s": round(time.time() - app.service.started_s, 3)}


def stats(app: "ServiceApp", request: "Request") -> Reply:
    payload = app.service.stats()
    payload["rate_limiter"] = app.limiter.stats()
    return 200, payload


def submit_jobs(app: "ServiceApp", request: "Request") -> Reply:
    try:
        sub, created = app.service.submit(request.json(), request.correlation_id)
    except SubmissionError as exc:
        return 400, {"error": str(exc)}
    status = sub.status()
    status["created"] = created
    return (202 if created else 200), status


def list_jobs(app: "ServiceApp", request: "Request") -> Reply:
    subs = app.service.submissions()
    return 200, {
        "total": len(subs),
        "submissions": [
            {
                "id": s.sub_id,
                "state": s.state,
                "tag": s.tag,
                "n_jobs": len(s.specs),
                "created_s": round(s.created_s, 3),
                "dedup_hits": s.dedup_hits,
            }
            for s in subs
        ],
    }


def job_status(app: "ServiceApp", request: "Request", sub_id: str) -> Reply:
    wait = _wait_seconds(request)
    sub = app.service.get(sub_id)
    if sub is not None and wait > 0 and sub.state in ("queued", "running"):
        sub = app.service.wait(sub_id, timeout=wait)
    if sub is None:
        return 404, {"error": f"unknown submission {sub_id!r}"}
    return 200, sub.status()


def job_result(app: "ServiceApp", request: "Request", sub_id: str) -> Reply:
    wait = _wait_seconds(request)
    sub = app.service.get(sub_id)
    if sub is not None and wait > 0 and sub.state in ("queued", "running"):
        sub = app.service.wait(sub_id, timeout=wait)
    if sub is None:
        return 404, {"error": f"unknown submission {sub_id!r}"}
    if sub.state in ("queued", "running"):
        return 409, {
            "error": f"submission {sub_id} is {sub.state}; result not ready",
            "state": sub.state,
        }
    if sub.state == "failed":
        return 500, {"error": sub.error, "state": "failed", "id": sub.sub_id}
    return 200, {
        "id": sub.sub_id,
        "state": sub.state,
        "summary": sub.summary,
        "records": sub.records,
    }


def runs(app: "ServiceApp", request: "Request") -> Reply:
    if app.service.history is None:
        return 409, {
            "error": "daemon is running without a result store "
            "(start with serve --results PATH)"
        }
    return 200, app.service.history.query_params(request.query)


def events(app: "ServiceApp", request: "Request") -> Reply:
    query = request.query
    unknown = set(query) - {"after", "limit", "wait"}
    if unknown:
        raise HistoryQueryError(f"unknown query parameters: {sorted(unknown)}")
    try:
        after = int(query.get("after", "0"))
        limit = int(query.get("limit", "1000"))
    except ValueError as exc:
        raise HistoryQueryError(f"after/limit must be integers: {exc}")
    wait = _wait_seconds(request)
    buffer = app.service.events
    if wait > 0 and buffer.last_seq <= after:
        deadline = time.monotonic() + wait
        while buffer.last_seq <= after and time.monotonic() < deadline:
            time.sleep(0.02)
    items, dropped = buffer.since(after=after, limit=limit)
    return 200, {
        "events": items,
        "dropped": dropped,
        "last_seq": buffer.last_seq,
        "returned": len(items),
    }


def shutdown(app: "ServiceApp", request: "Request") -> Reply:
    app.request_shutdown()
    return 200, {"ok": True, "stopping": True}


def dispatch(app: "ServiceApp", request: "Request") -> Reply:
    """Route one parsed request to its handler.

    Returns 404 for unknown paths and 405 for known paths with the
    wrong verb; handler-level validation errors surface as 400.
    """
    method, parts = request.method, request.path_parts
    try:
        if parts == ("healthz",):
            return _only(method, "GET", healthz, app, request)
        if parts == ("stats",):
            return _only(method, "GET", stats, app, request)
        if parts == ("jobs",):
            if method == "POST":
                return submit_jobs(app, request)
            return _only(method, "GET", list_jobs, app, request)
        if len(parts) == 2 and parts[0] == "jobs":
            return _only(method, "GET", job_status, app, request, parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            return _only(method, "GET", job_result, app, request, parts[1])
        if parts == ("runs",):
            return _only(method, "GET", runs, app, request)
        if parts == ("events",):
            return _only(method, "GET", events, app, request)
        if parts == ("shutdown",):
            return _only(method, "POST", shutdown, app, request)
    except HistoryQueryError as exc:
        return 400, {"error": str(exc)}
    except ValueError as exc:
        return 400, {"error": str(exc)}
    return 404, {"error": f"no such endpoint: {request.path}"}


def _only(method: str, expected: str, handler, app, request, *args) -> Reply:
    if method != expected:
        return 405, {"error": f"{request.path} supports {expected}, not {method}"}
    return handler(app, request, *args)


__all__ = ["dispatch", "MAX_WAIT_S"]
