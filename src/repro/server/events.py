"""The daemon's live event stream: a bounded, sequence-numbered buffer.

The obs layer already knows how to emit structured events to a sink
(:class:`repro.obs.JsonlSink`); the daemon installs an
:class:`EventBuffer` as the *process default sink*
(:func:`repro.obs.set_default_sink`), so every tracer the stack creates
— the batch-level tracer inside :class:`~repro.service.runner.BatchRunner`,
the per-job tracers inside :func:`~repro.service.runner.execute_job` —
streams its span and event records here without a single call site
changing.  The buffer then serves three consumers at once:

- ``GET /events`` tails it by sequence number (``?after=SEQ``), each
  event carrying its monotonically increasing ``seq`` so a client can
  resume exactly where it left off;
- an optional downstream :class:`~repro.obs.JsonlSink` receives every
  event for the durable on-disk log (``serve --events-log``), the
  artifact the ``service-smoke`` CI job uploads;
- ``GET /stats`` reports the emission and drop counters.

**Slow consumers never block execution.**  ``emit`` appends to a
fixed-size ring: when a reader falls more than ``maxlen`` events behind,
the oldest events are dropped — and *counted*, never silently — so a
stalled ``GET /events`` client costs the daemon nothing.  A reader that
asks for a range the ring has already evicted is told how many events it
missed (``dropped`` in the response), which is the bounded-buffer
contract the event-stream test tier pins down.

Every stamped event also carries the correlation id bound to the
emitting context (:func:`repro.server.correlation.stamp`), tying spans
and counters back to the request that caused them.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.server import correlation


class EventBuffer:
    """Thread-safe ring of sequence-numbered events (a sink).

    ``maxlen`` bounds memory: the ring holds the most recent ``maxlen``
    events, older ones are evicted and tallied in :attr:`dropped`.
    ``downstream`` is an optional second sink (duck-typed ``emit``)
    receiving every event — the daemon wires a
    :class:`~repro.obs.JsonlSink` here for the durable log.
    """

    def __init__(self, maxlen: int = 4096, downstream: Optional[Any] = None) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = int(maxlen)
        self.downstream = downstream
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.maxlen)
        self._next_seq = 1
        self._dropped = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # sink protocol
    # ------------------------------------------------------------------
    def emit(self, payload: Dict[str, Any]) -> None:
        """Append one event (never blocks, never raises on behalf of the
        instrumentation)."""
        event = correlation.stamp(dict(payload))
        with self._lock:
            event["seq"] = self._next_seq
            self._next_seq += 1
            if len(self._ring) == self.maxlen:
                self._dropped += 1
            self._ring.append(event)
        if self.downstream is not None:
            try:
                self.downstream.emit(event)
            except Exception:
                pass  # the durable log must never sink the daemon

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def since(
        self, after: int = 0, limit: int = 1000
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Events with ``seq > after``, oldest first, capped at *limit*.

        Returns ``(events, dropped)`` where ``dropped`` counts events in
        the requested range the ring had already evicted — a slow
        consumer learns exactly how far behind it fell instead of
        silently missing data.
        """
        with self._lock:
            oldest = self._next_seq - len(self._ring)
            # seqs in (after, oldest) existed but aged out of the ring
            dropped = max(0, oldest - after - 1)
            events = [e for e in self._ring if e["seq"] > after][: max(0, limit)]
            return events, dropped

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently emitted event (0 when
        nothing was emitted yet)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def dropped(self) -> int:
        """Total events evicted from the ring so far (monotonic)."""
        with self._lock:
            return self._dropped

    def stats(self) -> Dict[str, int]:
        """JSON-ready snapshot for ``GET /stats``."""
        with self._lock:
            return {
                "emitted": self._next_seq - 1,
                "buffered": len(self._ring),
                "dropped": self._dropped,
                "maxlen": self.maxlen,
            }


__all__ = ["EventBuffer"]
