"""The daemon's HTTP plumbing: stdlib asyncio, zero heavy dependencies.

The service speaks plain HTTP/1.1 with JSON bodies over
:func:`asyncio.start_server` — no web framework, because the repro
toolchain must not grow one: the whole server is a request parser, a
response writer, and two pieces of middleware wrapped around
:func:`repro.server.routers.dispatch`:

- **correlation** — every request runs under a bound correlation id
  (client-supplied ``X-Correlation-Id`` or freshly minted), echoed on
  the response and stamped onto every telemetry event emitted while the
  request is in flight (:mod:`repro.server.correlation`);
- **rate limiting** — a per-client token bucket
  (:mod:`repro.server.rate_limiter`) keyed on ``X-Client-Id`` (falling
  back to the peer address) answers 429 with a ``Retry-After`` hint;
  ``/healthz`` is exempt so liveness probes never get throttled.

Handlers run via :func:`asyncio.to_thread`, so long-polls (``?wait=``)
and lock waits in the service core block a pool thread, never the event
loop — the daemon stays responsive while a client camps on
``GET /jobs/{id}?wait=30``.  Context variables propagate into the
thread, which is exactly how the correlation binding survives the hop.

Two hosting modes share the same :class:`ServiceApp`:

- :func:`serve_forever` — the blocking CLI entry point
  (``nsc-vpe serve``): installs SIGINT/SIGTERM handlers for a graceful
  stop and prints the ``serving on http://HOST:PORT`` banner the smoke
  driver and the chaos tests parse to discover an ephemeral port;
- :func:`start_in_thread` — in-process hosting for tests: the event
  loop runs on a daemon thread and the returned :class:`ServerHandle`
  exposes the bound address and a thread-safe ``stop()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import signal
import threading
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.server import correlation
from repro.server.rate_limiter import RateLimiter
from repro.server.routers import dispatch
from repro.server.service import SimService

#: Request bodies beyond this are refused with 413 — a submission is a
#: list of job specs, not a payload channel.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _BadRequest(Exception):
    """Malformed wire data; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request, as the handlers see it."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    client: str
    correlation_id: str
    path_parts: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.path_parts = tuple(
            unquote(part) for part in self.path.strip("/").split("/") if part
        )

    def json(self) -> Any:
        """The body decoded as JSON (400 via ValueError when it isn't)."""
        if not self.body:
            raise ValueError("request body is empty; expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")


class ServiceApp:
    """HTTP front end over one :class:`SimService`."""

    def __init__(
        self,
        service: SimService,
        limiter: Optional[RateLimiter] = None,
    ) -> None:
        self.service = service
        self.limiter = limiter if limiter is not None else RateLimiter()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: requests currently being answered; shutdown drains these (but
        #: not idle keep-alive connections, which are simply dropped)
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Ask the server to stop (thread-safe; POST /shutdown and
        signal handlers both land here)."""
        if self._loop is not None and self._stop is not None:
            # the loop may already be gone (POST /shutdown raced a
            # handle.stop()); a second ask is then simply satisfied
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)

    async def run_async(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: Optional[threading.Event] = None,
        banner: bool = False,
        install_signals: bool = False,
    ) -> None:
        """Serve until :meth:`request_shutdown`; binds (and with
        ``port=0`` discovers) the address before signalling *ready*."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, ValueError):
                    self._loop.add_signal_handler(sig, self._stop.set)
        server = await asyncio.start_server(self._handle, host, port)
        bound = server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        if banner:
            # the line the smoke driver and chaos tests parse
            print(f"serving on http://{self.host}:{self.port}", flush=True)
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            # a POST /shutdown must still get its answer: drain requests
            # that are mid-response before the loop is torn down
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._idle.wait(), timeout=5.0)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = str(peer[0]) if peer else "unknown"
        try:
            while True:
                try:
                    request = await self._read_request(reader, peer_host)
                except _BadRequest as exc:
                    await self._write(
                        writer, None, exc.status, {"error": str(exc)}, keep=False
                    )
                    break
                if request is None:
                    break
                keep = request.headers.get("connection", "").lower() != "close"
                self._inflight += 1
                if self._idle is not None:
                    self._idle.clear()
                try:
                    status, payload = await self._respond(request)
                    await self._write(writer, request, status, payload, keep)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0 and self._idle is not None:
                        self._idle.set()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down while this connection idled
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader, peer_host: str
    ) -> Optional[Request]:
        line = await reader.readline()
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(400, f"malformed request line: {line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise _BadRequest(431, "too many request headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header line: {raw!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            raise _BadRequest(400, "content-length is not an integer")
        if length < 0:
            raise _BadRequest(400, "content-length is negative")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        return Request(
            method=method,
            path=split.path,
            query=query,
            headers=headers,
            body=body,
            client=headers.get("x-client-id", peer_host),
            correlation_id=headers.get(correlation.HEADER.lower())
            or correlation.new_id(),
        )

    async def _respond(self, request: Request) -> Tuple[int, Dict[str, Any]]:
        if request.path_parts != ("healthz",):
            granted, retry_after = self.limiter.check(request.client)
            if not granted:
                return 429, {
                    "error": "rate limited; retry later",
                    "retry_after": round(retry_after, 4),
                }

        def run() -> Tuple[int, Dict[str, Any]]:
            with correlation.bind(request.correlation_id):
                return dispatch(self, request)

        try:
            # handlers may block (long-polls, worker locks); a pool
            # thread eats that, the event loop never does
            return await asyncio.to_thread(run)
        except Exception as exc:  # a handler bug must not kill the daemon
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        request: Optional[Request],
        status: int,
        payload: Dict[str, Any],
        keep: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            phrase = HTTPStatus(status).phrase
        except ValueError:
            phrase = "Unknown"
        lines = [
            f"HTTP/1.1 {status} {phrase}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        if request is not None:
            lines.append(f"{correlation.HEADER}: {request.correlation_id}")
        if status == 429 and "retry_after" in payload:
            lines.append(f"Retry-After: {max(1, math.ceil(payload['retry_after']))}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


class ServerHandle:
    """A server hosted on a background thread (test fixture shape)."""

    def __init__(self, app: ServiceApp, thread: threading.Thread) -> None:
        self.app = app
        self.thread = thread

    @property
    def host(self) -> str:
        assert self.app.host is not None
        return self.app.host

    @property
    def port(self) -> int:
        assert self.app.port is not None
        return self.app.port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        self.app.request_shutdown()
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def start_in_thread(
    service: SimService,
    host: str = "127.0.0.1",
    port: int = 0,
    limiter: Optional[RateLimiter] = None,
) -> ServerHandle:
    """Host *service* over HTTP on a daemon thread; returns once bound."""
    app = ServiceApp(service, limiter)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(app.run_async(host, port, ready=ready)),
        name="nsc-vpe-serve-http",
        daemon=True,
    )
    thread.start()
    if not ready.wait(15.0):
        raise RuntimeError("HTTP server failed to come up within 15s")
    return ServerHandle(app, thread)


def serve_forever(
    service: SimService,
    host: str = "127.0.0.1",
    port: int = 8787,
    limiter: Optional[RateLimiter] = None,
) -> None:
    """Blocking CLI entry point: serve until SIGINT/SIGTERM (or
    ``POST /shutdown``), announcing the bound address on stdout."""
    app = ServiceApp(service, limiter)
    asyncio.run(
        app.run_async(host, port, banner=True, install_signals=True)
    )


__all__ = [
    "MAX_BODY_BYTES",
    "Request",
    "ServiceApp",
    "ServerHandle",
    "start_in_thread",
    "serve_forever",
]
