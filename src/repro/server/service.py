"""The resident simulation service: submissions, dedup, warm execution.

:class:`SimService` is what ``nsc-vpe serve`` keeps alive between
requests — the piece every ``nsc-vpe batch`` invocation used to rebuild
from scratch:

- one persistent :class:`~repro.service.cache.ProgramCache` (and through
  it the process-wide :data:`~repro.sim.fastpath.PLAN_CACHE`) handed to
  every :class:`~repro.service.runner.BatchRunner` the daemon builds, so
  a program compiled for one request is a cache hit for every later one;
- one persistent :class:`~repro.service.shm.ShmArena` for shm-transport
  batches (segments are per-batch, the arena and its resource-tracker
  setup are forever);
- one :class:`~repro.service.results.ResultStore` as the durable layer —
  the same JSONL schema offline batches write, so a daemon-written store
  is digest-comparable to an offline run of the same jobs;
- the :class:`~repro.server.events.EventBuffer` installed as the process
  default tracer sink, turning every span/counter event the stack emits
  into the ``GET /events`` live stream.

**Submissions** are the unit of work: a list of job specs (or a sweep
that expands into one) plus options, content-hashed into a submission
id.  Submitting a payload whose hash is already registered *coalesces*
onto the existing submission — concurrent duplicate ``POST /jobs`` from
retrying clients execute once and share the result (the ``tag`` field
exists precisely so an intentional re-run can opt out of coalescing).
Execution is strictly serial on one worker thread: requests stay
snappy on the event loop, jobs run in submission order, and the store
sees exactly one writer.

The daemon adds nothing to the record schema — correlation ids and
submission bookkeeping live in events and status payloads, never in
stored records — which is what keeps the acceptance contract honest:
a warm daemon's store is digest-identical (modulo volatile keys) to
``nsc-vpe batch`` run offline.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import tracer as obs
from repro.server import correlation
from repro.server.events import EventBuffer
from repro.server.history import RunHistory
from repro.service.cache import ProgramCache
from repro.service.jobs import JobSpecError, SimJob
from repro.service.results import ResultStore
from repro.service.retry import RetryPolicy
from repro.service.runner import BatchRunner
from repro.service.shm import ShmArena
from repro.service.sweep import SweepSpec

#: Submission lifecycle states.  ``failed`` means the *infrastructure*
#: failed (the runner raised); individual job failures leave the
#: submission ``done`` with a non-zero ``summary["failed"]``.
STATES = ("queued", "running", "done", "failed")


class SubmissionError(ValueError):
    """The submission payload is malformed (maps to HTTP 400)."""


@dataclass
class Submission:
    """One content-addressed batch moving through the daemon."""

    sub_id: str
    specs: List[Dict[str, Any]]
    tag: str = ""
    resume: bool = False
    correlation_id: str = ""
    state: str = "queued"
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    records: Optional[List[Dict[str, Any]]] = None
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: duplicate POSTs coalesced onto this submission after the first
    dedup_hits: int = 0

    def status(self) -> Dict[str, Any]:
        """The ``GET /jobs/{id}`` payload: lifecycle plus, once run, the
        per-job reliability picture (``attempts``/``tier``/``timings``
        from the record schema) without the full result bodies."""
        payload: Dict[str, Any] = {
            "id": self.sub_id,
            "state": self.state,
            "tag": self.tag,
            "resume": self.resume,
            "n_jobs": len(self.specs),
            "correlation_id": self.correlation_id,
            "created_s": round(self.created_s, 3),
            "dedup_hits": self.dedup_hits,
        }
        if self.started_s is not None:
            payload["started_s"] = round(self.started_s, 3)
        if self.finished_s is not None:
            payload["finished_s"] = round(self.finished_s, 3)
        if self.error is not None:
            payload["error"] = self.error
        if self.summary is not None:
            payload["summary"] = self.summary
        if self.records is not None:
            payload["jobs"] = [
                {
                    "job_id": r.get("job_id"),
                    "label": r.get("label"),
                    "ok": r.get("ok"),
                    "tier": r.get("tier"),
                    "attempts": r.get("attempts"),
                    "cache_hit": r.get("cache_hit"),
                    "timings": r.get("timings"),
                }
                for r in self.records
            ]
        return payload


def _canonical_specs(payload: Dict[str, Any]) -> Tuple[List[Dict[str, Any]], str]:
    """Validate and normalize the payload into effective job specs.

    Accepts ``{"jobs": [spec, ...]}`` or ``{"sweep": {axes...}}``.
    Specs are normalized through :class:`SimJob` round-trips so two
    payloads meaning the same jobs hash identically however they were
    spelled (``"n": 7`` vs an explicit shape, axis lists vs tuples).
    Returns ``(specs, kind)``.
    """
    has_jobs = "jobs" in payload
    has_sweep = "sweep" in payload
    if has_jobs == has_sweep:
        raise SubmissionError('give exactly one of "jobs" or "sweep"')
    if has_jobs:
        raw = payload["jobs"]
        if not isinstance(raw, list) or not raw:
            raise SubmissionError('"jobs" must be a non-empty list of specs')
        try:
            jobs = [SimJob.from_dict(spec) for spec in raw]
        except (JobSpecError, TypeError, ValueError) as exc:
            raise SubmissionError(f"bad job spec: {exc}")
        return [job.to_dict() for job in jobs], "jobs"
    raw = payload["sweep"]
    if not isinstance(raw, dict):
        raise SubmissionError('"sweep" must be an object of sweep axes')
    data = dict(raw)
    for axis in ("grids", "methods", "dims", "subset", "seeds"):
        if axis in data:
            if not isinstance(data[axis], list):
                raise SubmissionError(f'sweep axis "{axis}" must be a list')
            data[axis] = tuple(data[axis])
    try:
        spec = SweepSpec(**data)
    except (JobSpecError, TypeError, ValueError) as exc:
        raise SubmissionError(f"bad sweep spec: {exc}")
    return [job.to_dict() for job in spec.expand()], "sweep"


class SimService:
    """The daemon's execution core (transport-agnostic: the HTTP layer
    in :mod:`repro.server.app` is one client of this object; tests and
    the smoke driver are others).

    Call :meth:`start` before submitting and :meth:`stop` when done —
    start installs the event buffer as the process default tracer sink
    and launches the worker thread; stop reverses both and releases the
    persistent arena.  Usable as a context manager.
    """

    _STOP = object()

    def __init__(
        self,
        store_path: Optional[str] = None,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        timeout: Optional[float] = None,
        transport: str = "pickle",
        batch_fusion: str = "off",
        run_checker: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        events: Optional[EventBuffer] = None,
        max_queued: int = 256,
    ) -> None:
        self.workers = workers
        self.timeout = timeout
        self.transport = transport
        self.batch_fusion = batch_fusion
        self.run_checker = run_checker
        self.retry = retry
        self.cache_dir = cache_dir
        self.cache = ProgramCache(cache_dir)
        self.arena = ShmArena() if transport == "shm" else None
        self.store = ResultStore(store_path) if store_path else None
        # "is not None", not truthiness: an empty ResultStore has len 0
        self.history = RunHistory(self.store) if self.store is not None else None
        self.events = events if events is not None else EventBuffer()
        self.max_queued = max_queued
        self.telemetry = obs.Telemetry()
        self.started_s = time.time()
        self.jobs_executed = 0
        self.jobs_ok = 0
        self._counters: Dict[str, int] = {}
        self._submissions: Dict[str, Submission] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._previous_sink: Optional[Any] = None
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SimService":
        if self._running:
            return self
        self._previous_sink = obs.set_default_sink(self.events)
        self._worker = threading.Thread(
            target=self._worker_loop, name="nsc-vpe-serve-runner", daemon=True
        )
        self._running = True
        self._worker.start()
        self.events.emit({"type": "service_started"})
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if not self._running:
            return
        self._running = False
        self._queue.put(self._STOP)
        if self._worker is not None:
            self._worker.join(timeout)
        obs.set_default_sink(self._previous_sink)
        if self.arena is not None:
            self.arena.destroy()
        self.events.emit({"type": "service_stopped"})

    def __enter__(self) -> "SimService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, payload: Dict[str, Any], correlation_id: Optional[str] = None
    ) -> Tuple[Submission, bool]:
        """Register (or coalesce onto) a submission; returns
        ``(submission, created)``.

        The submission id is a content hash over the *effective* job
        specs plus the client ``tag`` and ``resume`` flag — identical
        payloads map to the same id, so duplicate POSTs (concurrent or
        later) coalesce onto one execution.  A client that wants the
        same jobs executed again sends a different ``tag``.
        """
        if not isinstance(payload, dict):
            raise SubmissionError("submission payload must be a JSON object")
        unknown = set(payload) - {"jobs", "sweep", "tag", "resume"}
        if unknown:
            raise SubmissionError(
                f"unknown submission fields: {sorted(unknown)}"
            )
        tag = str(payload.get("tag", ""))
        resume = bool(payload.get("resume", False))
        if resume and self.store is None:
            raise SubmissionError(
                "resume requires the daemon to run with a result store "
                "(serve --results)"
            )
        specs, kind = _canonical_specs(payload)
        digest = hashlib.sha256(
            json.dumps(
                {"jobs": specs, "tag": tag, "resume": resume},
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        ).hexdigest()
        sub_id = digest[:16]
        with self._lock:
            existing = self._submissions.get(sub_id)
            if existing is not None:
                existing.dedup_hits += 1
                self._count("server.dedup")
                self.events.emit(
                    {
                        "type": "submission_deduplicated",
                        "submission": sub_id,
                        "state": existing.state,
                    }
                )
                return existing, False
            queued = sum(
                1 for s in self._submissions.values()
                if s.state in ("queued", "running")
            )
            if queued >= self.max_queued:
                raise SubmissionError(
                    f"submission queue full ({self.max_queued} pending)"
                )
            sub = Submission(
                sub_id=sub_id,
                specs=specs,
                tag=tag,
                resume=resume,
                correlation_id=correlation_id or correlation.new_id(),
            )
            self._submissions[sub_id] = sub
            self._order.append(sub_id)
            self._count("server.submissions")
        self.events.emit(
            {
                "type": "submission_queued",
                "submission": sub_id,
                "kind": kind,
                "n_jobs": len(specs),
                "correlation_id": sub.correlation_id,
            }
        )
        self._queue.put(sub)
        return sub, True

    def get(self, sub_id: str) -> Optional[Submission]:
        with self._lock:
            return self._submissions.get(sub_id)

    def submissions(self) -> List[Submission]:
        """All submissions, oldest first."""
        with self._lock:
            return [self._submissions[sid] for sid in self._order]

    def wait(self, sub_id: str, timeout: float = 60.0) -> Optional[Submission]:
        """Block (politely) until the submission finishes or *timeout*
        elapses; returns the submission either way (None if unknown)."""
        deadline = time.monotonic() + timeout
        while True:
            sub = self.get(sub_id)
            if sub is None or sub.state in ("done", "failed"):
                return sub
            if time.monotonic() >= deadline:
                return sub
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # execution (worker thread)
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            sub: Submission = item
            with correlation.bind(sub.correlation_id):
                self._execute(sub)

    def _execute(self, sub: Submission) -> None:
        sub.state = "running"
        sub.started_s = time.time()
        self.events.emit(
            {
                "type": "submission_started",
                "submission": sub.sub_id,
                "n_jobs": len(sub.specs),
            }
        )
        try:
            jobs = [SimJob.from_dict(spec) for spec in sub.specs]
            runner = BatchRunner(
                workers=self.workers,
                timeout=self.timeout,
                cache_dir=self.cache_dir,
                store=self.store,
                transport=self.transport,
                run_checker=self.run_checker,
                batch_fusion=self.batch_fusion,
                retry=self.retry,
                resume=sub.resume,
                cache=self.cache,
                arena=self.arena,
            )
            records, summary = runner.run(jobs)
            # field arrays never leave the daemon as JSON; records keep
            # their digests (fields_sha256), same as the store does
            for record in records:
                record.pop("fields", None)
            sub.records = records
            sub.summary = asdict(summary)
            sub.state = "done"
            with self._lock:
                self.jobs_executed += summary.total
                self.jobs_ok += summary.succeeded
                if runner.last_telemetry is not None:
                    self.telemetry.merge(runner.last_telemetry)
        except Exception as exc:  # infrastructure failure, not a job's
            sub.error = f"{type(exc).__name__}: {exc}"
            sub.state = "failed"
            self._count("server.submission_failed")
        finally:
            sub.finished_s = time.time()
            self.events.emit(
                {
                    "type": "submission_finished",
                    "submission": sub.sub_id,
                    "state": sub.state,
                    "summary": sub.summary,
                    "counters": self.counters(),
                }
            )

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def counters(self) -> Dict[str, int]:
        """Live counters: cache layers first (the warm-path proof), then
        batch-level telemetry and the daemon's own server.* counts."""
        merged: Dict[str, int] = {
            "cache.hit": self.cache.stats.hits,
            "cache.miss": self.cache.stats.misses,
            "cache.disk_hit": self.cache.stats.disk_hits,
            "cache.check_skipped": self.cache.stats.checks_skipped,
            "plan.hit": self.cache.plans.stats.hits,
            "plan.miss": self.cache.plans.stats.misses,
        }
        with self._lock:
            merged.update(self.telemetry.counters)
            merged.update(self._counters)
        return merged

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload."""
        with self._lock:
            by_state = {state: 0 for state in STATES}
            dedup = 0
            for sub in self._submissions.values():
                by_state[sub.state] += 1
                dedup += sub.dedup_hits
            submissions = {"total": len(self._submissions), **by_state,
                           "dedup_hits": dedup}
            jobs = {"executed": self.jobs_executed, "ok": self.jobs_ok,
                    "failed": self.jobs_executed - self.jobs_ok}
        return {
            "uptime_s": round(time.time() - self.started_s, 3),
            "workers": self.workers,
            "transport": self.transport,
            "batch_fusion": self.batch_fusion,
            "store": str(self.store.path) if self.store else None,
            "submissions": submissions,
            "jobs": jobs,
            "cache": self.cache.stats.as_dict(),
            "plan_cache": {
                "entries": len(self.cache.plans),
                **self.cache.plans.stats.as_dict(),
            },
            "arena": {
                "segments": len(self.arena.names),
                "nbytes": self.arena.nbytes,
            } if self.arena is not None else None,
            "counters": self.counters(),
            "events": self.events.stats(),
        }


__all__ = ["SimService", "Submission", "SubmissionError", "STATES"]
