"""The resident simulation service (``nsc-vpe serve``).

Everything ``repro.service`` can do — batches, sweeps, caching, retry,
resume, shm transport — hosted behind a long-lived stdlib-asyncio HTTP
daemon so the expensive warm state (compiled-program cache, plan cache,
shm arena) survives across requests instead of dying with each CLI
invocation.  The layering, bottom up:

- :mod:`repro.server.rate_limiter` — per-client token buckets;
- :mod:`repro.server.correlation` — request ids threaded through events;
- :mod:`repro.server.events` — the bounded live event ring
  (``GET /events``), installed as the process default tracer sink;
- :mod:`repro.server.history` — queryable views over the result store
  (``GET /runs``);
- :mod:`repro.server.service` — :class:`SimService`: submissions,
  content-hash dedup, the single worker thread, the persistent caches;
- :mod:`repro.server.routers` / :mod:`repro.server.app` — the HTTP
  surface and its middleware;
- :mod:`repro.server.client` — the thin client the CLI's ``--server``
  mode rides on.

``docs/SERVICE.md`` (Resident service section) has the cookbook;
``docs/OBSERVABILITY.md`` covers correlation ids and the event stream.
"""

from repro.server.app import ServerHandle, ServiceApp, serve_forever, start_in_thread
from repro.server.client import ServerError, ServiceClient
from repro.server.correlation import HEADER as CORRELATION_HEADER
from repro.server.events import EventBuffer
from repro.server.history import HistoryQueryError, RunHistory
from repro.server.rate_limiter import RateLimiter, TokenBucket
from repro.server.service import SimService, Submission, SubmissionError

__all__ = [
    "CORRELATION_HEADER",
    "EventBuffer",
    "HistoryQueryError",
    "RateLimiter",
    "RunHistory",
    "ServerError",
    "ServerHandle",
    "ServiceApp",
    "ServiceClient",
    "SimService",
    "Submission",
    "SubmissionError",
    "TokenBucket",
    "serve_forever",
    "start_in_thread",
]
