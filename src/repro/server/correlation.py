"""Request correlation for the service daemon.

Every request the daemon handles gets a **correlation id**: either the
one the client sent in the ``X-Correlation-Id`` header (so a caller can
stitch its own logs to the daemon's) or a freshly generated token.  The
id travels three ways:

- it is echoed back on the response (same header), so the client always
  learns which id its request ran under;
- it is bound to a :mod:`contextvars` context variable for the dynamic
  extent of the request — and, because the daemon executes submissions
  on a worker thread that re-binds the submission's id, for the extent
  of the *run* too;
- the daemon's event sink stamps the bound id onto every telemetry
  event it forwards (:func:`stamp`), so the live ``GET /events`` stream
  and the on-disk event log attribute every span and counter event to
  the request that caused it.  The obs layer itself stays ignorant of
  correlation — the stamp happens at the sink boundary.

Stored *result records* deliberately do not carry correlation ids: they
are identity-relevant to nothing the job computed, and keeping them out
is what lets a daemon-written store stay digest-identical to an offline
``nsc-vpe batch`` run (the acceptance contract).
"""

from __future__ import annotations

import contextvars
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: Header used in both directions.
HEADER = "X-Correlation-Id"

_CURRENT: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "nsc_vpe_correlation_id", default=None
)


def new_id() -> str:
    """A fresh 12-hex-digit correlation token."""
    return uuid.uuid4().hex[:12]


def current() -> Optional[str]:
    """The correlation id bound to this context, or None."""
    return _CURRENT.get()


@contextmanager
def bind(correlation_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind *correlation_id* (or a fresh one when None) for the extent
    of the ``with`` body, restoring the previous binding after."""
    value = correlation_id or new_id()
    token = _CURRENT.set(value)
    try:
        yield value
    finally:
        _CURRENT.reset(token)


def stamp(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Return *payload* with the bound correlation id added (when one is
    bound and the payload does not already carry one)."""
    cid = _CURRENT.get()
    if cid is not None and "correlation_id" not in payload:
        payload = dict(payload)
        payload["correlation_id"] = cid
    return payload


__all__ = ["HEADER", "new_id", "current", "bind", "stamp"]
