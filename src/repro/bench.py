"""Performance harness: the reference interpreter vs. the fast path.

Each scenario runs an identical workload on both execution backends
(:data:`repro.sim.fastpath.BACKENDS`), *verifies* that they agree —
bit-identical grids, identical cycle and flop counts — and reports wall
time, simulated-cycle throughput, and speedup.  Results serialize to
machine-readable ``BENCH_<scenario>.json`` files, which CI uploads as
artifacts on every PR (the ``bench-smoke`` job fails if the backends ever
disagree).

Scenarios:

- ``jacobi_single`` — the paper's Eq. 1 example to convergence on one node;
- ``jacobi_multinode`` — the 64-node hypercube system (§2), one z-plane per
  slab, fixed sweep count: the headline fast-path scenario;
- ``batch_service`` — Poisson solver jobs through the batch service,
  measuring end-to-end job throughput;
- ``jacobi_converge`` — a single node run to convergence, where per-issue
  dispatch dominates: measures the whole-program compiled engine
  (:mod:`repro.sim.progplan`) against the per-issue fast path
  (``speedup_vs_unfused``) as well as the reference;
- ``hypercube_scaling`` — the fused multi-node schedule across 8/16/32/64
  nodes, emitting per-node-count throughput;
- ``batch_shm`` — the one scenario whose two sides are *transports*, not
  backends: an identical large-grid batch (``keep_fields=True``) through
  the classic pickling pool and through the zero-copy shared-memory
  transport (:mod:`repro.service.shm`), with bit-identical field arrays
  required and the speedup gated at
  :data:`BATCH_SHM_MIN_SPEEDUP` on the full configuration;
- ``fused_coverage`` — the formerly-fallback program classes through the
  fused engine: a multi-node residual-skew *ablation* build (timed,
  gated at :data:`FUSED_COVERAGE_MIN_SPEEDUP` full), plus
  ``keep_outputs`` and rearmed-interrupt runs with bit-identical
  streams and proof the compiled engine accepted each;
- ``batch_fused`` — the second transport-style scenario: one seeded
  same-program sweep through the serial service twice, per-job fused
  (``batch_fusion="off"``) vs whole-batch slab execution
  (``batch_fusion="auto"``, :mod:`repro.sim.batchplan`), with
  bit-identical records required and the slab side gated at
  :data:`BATCH_FUSED_MIN_SPEEDUP` on the full configuration;
- ``analysis_coverage`` — the one *untimed* scenario: the static
  analyzer (:mod:`repro.analysis`) must report zero findings on every
  registry solver at the bench shapes, and must flag every seeded
  defect class (double-write, uninitialized read, WAW, RAW race, port
  conflict, dead write) on every solver — zero false negatives.

Drive it with ``nsc-vpe bench [--quick] [--scenarios ...] [--out DIR]``,
or programmatically via :func:`run_scenario` / :func:`run_bench`.  A
committed baseline (``benchmarks/perf/baseline.json``) guards against
perf regressions: ``nsc-vpe bench --compare benchmarks/perf/baseline.json``
exits non-zero when any recorded speedup falls more than
:data:`REGRESSION_TOLERANCE` below its baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.fastpath import BACKENDS

#: Scenario names in canonical execution order.
SCENARIOS = (
    "jacobi_single",
    "jacobi_multinode",
    "batch_service",
    "jacobi_converge",
    "hypercube_scaling",
    "batch_shm",
    "fused_coverage",
    "batch_fused",
    "analysis_coverage",
)

#: Scenarios that emit pass/fail checks instead of timed speedups; they
#: never appear in the committed perf baseline (nothing to floor).
UNTIMED_SCENARIOS = frozenset({"analysis_coverage"})

#: Allowed fractional drop of a speedup below its committed baseline.
REGRESSION_TOLERANCE = 0.2

#: Required shm-vs-pickle speedup for batch_shm's full configuration.
BATCH_SHM_MIN_SPEEDUP = 1.3

#: Required fused-vs-reference speedup for fused_coverage's full
#: configuration (the multi-node residual-skew ablation workload).
FUSED_COVERAGE_MIN_SPEEDUP = 3.0

#: Required batch-fused-vs-per-job-fused speedup for batch_fused's full
#: configuration (the 32-job seeded Jacobi sweep).
BATCH_FUSED_MIN_SPEEDUP = 2.0


class BenchError(ValueError):
    """Unknown scenario or malformed bench request."""


def _timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def _side(wall_s: float, sim_cycles: int, **extra: Any) -> Dict[str, Any]:
    record = {
        "wall_s": wall_s,
        "sim_cycles": int(sim_cycles),
        "sim_cycles_per_sec": sim_cycles / wall_s if wall_s > 0 else 0.0,
    }
    record.update(extra)
    return record


def _finish(
    name: str,
    quick: bool,
    config: Dict[str, Any],
    sides: Dict[str, Dict[str, Any]],
    checks: Dict[str, bool],
    pair: Tuple[str, str] = ("reference", "fast"),
) -> Dict[str, Any]:
    """Assemble one scenario record.  ``pair`` names the (baseline,
    contender) sides the headline ``speedup`` divides — backends for most
    scenarios, transports for ``batch_shm``."""
    base_wall = sides[pair[0]]["wall_s"]
    cont_wall = sides[pair[1]]["wall_s"]
    return {
        "scenario": name,
        "quick": quick,
        "config": config,
        "backends": sides,
        "speedup": base_wall / cont_wall if cont_wall > 0 else 0.0,
        "speedup_pair": list(pair),
        "checks": checks,
        "ok": all(checks.values()),
    }


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _scenario_jacobi_single(quick: bool) -> Dict[str, Any]:
    from repro.arch.node import NodeConfig
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
    from repro.sim.machine import NSCMachine

    n = 8 if quick else 12
    eps = 1e-5
    shape = (n, n, n)
    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps, max_iterations=5000)
    program = MicrocodeGenerator(node).generate(setup.program)
    from repro.apps.poisson3d import manufactured_solution

    _u_star, f, _h = manufactured_solution(shape, h=setup.h)

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, np.zeros(shape), f)
        result, wall = _timed(machine.run)
        sweeps = result.loop_iterations.get(setup.update_pipeline, 0)
        runs[backend] = (machine, result)
        sides[backend] = _side(wall, result.total_cycles, sweeps=sweeps)

    (m_ref, r_ref), (m_fast, r_fast) = runs["reference"], runs["fast"]
    checks = {
        "grids_identical": bool(
            np.array_equal(m_ref.get_variable("u"), m_fast.get_variable("u"))
        ),
        "cycles_equal": r_ref.total_cycles == r_fast.total_cycles,
        "flops_equal": r_ref.total_flops == r_fast.total_flops,
        "converged_both": bool(r_ref.converged) and bool(r_fast.converged),
        "metrics_equal": (
            m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
        ),
    }
    config = {"shape": list(shape), "eps": eps, "hypercube_dim": 0}
    return _finish("jacobi_single", quick, config, sides, checks)


def _scenario_jacobi_multinode(quick: bool) -> Dict[str, Any]:
    from repro.apps.poisson3d import manufactured_solution
    from repro.sim.multinode import MultiNodeStencil

    dim = 6  # the paper's 64-node system
    shape = (8, 8, 64)  # one real z-plane per slab
    sweeps = 12 if quick else 40
    u_star, _f, _h = manufactured_solution(shape)

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        stencil = MultiNodeStencil(
            hypercube_dim=dim, shape=shape, eps=1e-30, backend=backend
        )
        stencil.scatter("u", u_star)
        result, wall = _timed(lambda: stencil.run(max_iterations=sweeps))
        runs[backend] = (stencil, result)
        sides[backend] = _side(
            wall,
            result.total_cycles,
            iterations=result.iterations,
            achieved_gflops=result.achieved_gflops,
        )

    (s_ref, r_ref), (s_fast, r_fast) = runs["reference"], runs["fast"]
    checks = {
        "grids_identical": bool(
            np.array_equal(s_ref.gather("u"), s_fast.gather("u"))
        ),
        "compute_cycles_equal": r_ref.compute_cycles == r_fast.compute_cycles,
        "comm_cycles_equal": r_ref.comm_cycles == r_fast.comm_cycles,
        "flops_equal": r_ref.flops == r_fast.flops,
        "words_equal": r_ref.words_exchanged == r_fast.words_exchanged,
        "residual_history_equal": (
            r_ref.residual_history == r_fast.residual_history
        ),
    }
    config = {
        "shape": list(shape),
        "hypercube_dim": dim,
        "n_nodes": 1 << dim,
        "sweeps": sweeps,
    }
    return _finish("jacobi_multinode", quick, config, sides, checks)


def _irq_stream(machine) -> List[Tuple[Any, ...]]:
    """The full delivered-interrupt stream (Interrupt.__eq__ compares
    fire cycles only, so parity checks need every field)."""
    return [
        (i.cycle, i.kind, i.source, i.payload)
        for i in machine.interrupts.delivered
    ]


#: Record keys that may legitimately differ between backend/transport
#: runs ("checker" and "cache_hit" depend on compile history, not on
#: what the job computed; "timings"/"duration_s" are wall-clock; "tier"
#: and "fallback_reason" name the execution tier, which is exactly what
#: differs across backends; "slab_size" exists only on the batch-fused
#: tier's records).
_BACKEND_DEPENDENT_KEYS = (
    "job_id", "label", "backend", "cache_hit", "checker",
    "timings", "duration_s", "tier", "fallback_reason", "slab_size",
)


def _scenario_batch_service(quick: bool) -> Dict[str, Any]:
    from repro.apps.poisson3d import poisson_jobs
    from repro.service.runner import BatchRunner

    n = 5 if quick else 7
    eps = 1e-3 if quick else 1e-4
    methods = ("jacobi", "rb-gs", "rb-sor")
    max_sweeps = 2000

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        jobs = poisson_jobs(
            n=n, methods=methods, eps=eps, max_sweeps=max_sweeps, backend=backend
        )
        runner = BatchRunner(workers=1)
        (records, summary), wall = _timed(lambda: runner.run(jobs))
        runs[backend] = records
        sides[backend] = _side(
            wall,
            summary.total_cycles,
            jobs=summary.total,
            jobs_per_sec=summary.total / wall if wall > 0 else 0.0,
        )

    def comparable(record: Dict[str, Any]) -> Dict[str, Any]:
        return {
            k: v for k, v in record.items() if k not in _BACKEND_DEPENDENT_KEYS
        }

    ref_records, fast_records = runs["reference"], runs["fast"]
    checks = {
        "all_jobs_ok": all(
            r.get("ok") for r in ref_records + fast_records
        ),
        "records_equal": [comparable(r) for r in ref_records]
        == [comparable(r) for r in fast_records],
    }
    config = {
        "n": n,
        "methods": list(methods),
        "eps": eps,
        "max_sweeps": max_sweeps,
    }
    return _finish("batch_service", quick, config, sides, checks)


def _scenario_jacobi_converge(quick: bool) -> Dict[str, Any]:
    """Single-node convergence run: the compiled engine's home turf.

    Times three engines on one workload — the reference interpreter, the
    per-issue fast path (``fuse=False``, PR 2's backend), and the
    whole-program compiled engine — each best-of-two to damp scheduler
    noise, with full parity checks across all three.
    """
    from repro.arch.node import NodeConfig
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
    from repro.sim.machine import NSCMachine
    from repro.apps.poisson3d import manufactured_solution

    n = 8
    eps = 1e-5 if quick else 1e-11
    reps = 2 if quick else 3
    shape = (n, n, n)
    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps, max_iterations=20_000)
    program = MicrocodeGenerator(node).generate(setup.program)
    _u_star, f, _h = manufactured_solution(shape, h=setup.h)

    engines = (
        ("reference", "reference", True),
        ("fast_unfused", "fast", False),
        ("fast", "fast", True),
    )
    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for name, backend, fuse in engines:
        wall = float("inf")
        for _rep in range(reps):
            machine = NSCMachine(node, backend=backend)
            machine.load_program(program)
            load_jacobi_inputs(machine, setup, np.zeros(shape), f)
            result, elapsed = _timed(lambda: machine.run(fuse=fuse))
            wall = min(wall, elapsed)
        sweeps = result.loop_iterations.get(setup.update_pipeline, 0)
        runs[name] = (machine, result)
        sides[name] = _side(wall, result.total_cycles, sweeps=sweeps)

    (m_ref, r_ref) = runs["reference"]
    (m_unf, r_unf) = runs["fast_unfused"]
    (m_fast, r_fast) = runs["fast"]
    checks = {
        "grids_identical": bool(
            np.array_equal(m_ref.get_variable("u"), m_fast.get_variable("u"))
        ),
        "grids_identical_unfused": bool(
            np.array_equal(m_ref.get_variable("u"), m_unf.get_variable("u"))
        ),
        "cycles_equal": (
            r_ref.total_cycles == r_fast.total_cycles == r_unf.total_cycles
        ),
        "flops_equal": r_ref.total_flops == r_fast.total_flops == r_unf.total_flops,
        "loop_iterations_equal": (
            r_ref.loop_iterations == r_fast.loop_iterations
            == r_unf.loop_iterations
        ),
        "issue_trace_equal": (
            r_ref.issue_trace == r_fast.issue_trace == r_unf.issue_trace
        ),
        "converged_all": all(bool(r.converged) for r in (r_ref, r_unf, r_fast)),
        "metrics_equal": (
            m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
        ),
        "interrupts_equal": _irq_stream(m_ref) == _irq_stream(m_fast),
    }
    config = {"shape": list(shape), "eps": eps, "hypercube_dim": 0}
    record = _finish("jacobi_converge", quick, config, sides, checks)
    fast_wall = sides["fast"]["wall_s"]
    record["speedup_vs_unfused"] = (
        sides["fast_unfused"]["wall_s"] / fast_wall if fast_wall > 0 else 0.0
    )
    return record


def _scenario_hypercube_scaling(quick: bool) -> Dict[str, Any]:
    """The fused multi-node schedule at 8, 16, 32, and 64 nodes.

    Each node count runs both backends with full parity checks and its
    own throughput entry under ``record["scaling"]``.
    """
    from repro.apps.poisson3d import manufactured_solution
    from repro.sim.multinode import MultiNodeStencil

    dims = (3, 4, 5, 6)
    shape = (8, 8, 64)  # nz divides every node count
    sweeps = 6 if quick else 20
    u_star, _f, _h = manufactured_solution(shape)

    sides = {b: {"wall_s": 0.0, "sim_cycles": 0} for b in BACKENDS}
    checks: Dict[str, bool] = {}
    scaling: List[Dict[str, Any]] = []
    for dim in dims:
        runs: Dict[str, Any] = {}
        walls: Dict[str, float] = {}
        for backend in BACKENDS:
            stencil = MultiNodeStencil(
                hypercube_dim=dim, shape=shape, eps=1e-30, backend=backend
            )
            stencil.scatter("u", u_star)
            result, wall = _timed(lambda: stencil.run(max_iterations=sweeps))
            runs[backend] = (stencil, result)
            walls[backend] = wall
            sides[backend]["wall_s"] += wall
            sides[backend]["sim_cycles"] += result.total_cycles
        (s_ref, r_ref), (s_fast, r_fast) = runs["reference"], runs["fast"]
        n_nodes = 1 << dim
        checks[f"grids_identical_{n_nodes}"] = bool(
            np.array_equal(s_ref.gather("u"), s_fast.gather("u"))
        )
        checks[f"cycles_equal_{n_nodes}"] = (
            r_ref.compute_cycles == r_fast.compute_cycles
            and r_ref.comm_cycles == r_fast.comm_cycles
        )
        checks[f"residuals_equal_{n_nodes}"] = (
            r_ref.residual_history == r_fast.residual_history
        )
        checks[f"flops_equal_{n_nodes}"] = r_ref.flops == r_fast.flops
        scaling.append(
            {
                "n_nodes": n_nodes,
                "ref_wall_s": walls["reference"],
                "fast_wall_s": walls["fast"],
                "speedup": (
                    walls["reference"] / walls["fast"]
                    if walls["fast"] > 0
                    else 0.0
                ),
                "achieved_gflops": r_fast.achieved_gflops,
                "comm_fraction": r_fast.comm_fraction,
                "sim_cycles": r_fast.total_cycles,
            }
        )
    for side in sides.values():
        wall = side["wall_s"]
        side["sim_cycles_per_sec"] = side["sim_cycles"] / wall if wall > 0 else 0.0
    config = {
        "shape": list(shape),
        "node_counts": [1 << d for d in dims],
        "sweeps": sweeps,
    }
    record = _finish("hypercube_scaling", quick, config, sides, checks)
    record["scaling"] = scaling
    return record


def _scenario_batch_shm(quick: bool) -> Dict[str, Any]:
    """The zero-copy shared-memory transport vs the pickling pool.

    One large-grid batch with ``keep_fields=True`` runs twice through a
    two-worker pool: once with every grid pickled across the executor's
    pipes (the status-quo transport) and once with inputs shared
    read-only and result fields written into preallocated shared-memory
    segments.  Everything else — jobs, workers, warmed disk cache — is
    held identical, the field arrays must come back bit-identical, and
    on the full configuration the shm side must win by at least
    :data:`BATCH_SHM_MIN_SPEEDUP`.
    """
    import tempfile

    from repro.service.jobs import SimJob
    from repro.service.runner import BatchRunner

    # quick is a *parity* smoke: grids that small pay more in segment
    # setup than they save in pickling, so only the full configuration
    # makes (and gates) a perf claim
    n = 16 if quick else 64
    n_jobs = 4 if quick else 12
    sweeps = 1
    reps = 2
    workers = 2
    # the stock machine's double-buffered caches hold 8K words; 64^3 is a
    # deliberate large-memory configuration of the same machine, and the
    # largest cubic grid at all: the z-neighbour shift is nx*ny = 4096,
    # exactly the shift/delay units' +-4096 reach
    if n * n * n > 8 * 1024:
        overrides = (("cache_buffer_words", 512 * 1024),)
    else:
        overrides = ()
    jobs = [
        SimJob(
            method="jacobi",
            shape=(n, n, n),
            eps=1e-30,  # never converges early: exactly `sweeps` sweeps
            max_sweeps=sweeps,
            backend="fast",
            keep_fields=True,
            param_overrides=overrides,
            label=f"jacobi-shm-n{n}#{i}",
        )
        for i in range(n_jobs)
    ]
    field_bytes = n_jobs * n * n * n * 8

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    with tempfile.TemporaryDirectory() as cache_dir:
        # warm the shared disk cache so neither transport pays the
        # (identical) compile cost inside its timed window
        BatchRunner(workers=1, cache_dir=cache_dir).run(jobs[:1])
        for transport in ("pickle", "shm"):
            wall = float("inf")
            for _rep in range(reps):
                runner = BatchRunner(
                    workers=workers, cache_dir=cache_dir, transport=transport
                )
                (records, summary), elapsed = _timed(lambda: runner.run(jobs))
                wall = min(wall, elapsed)
            runs[transport] = records
            sides[transport] = _side(
                wall,
                summary.total_cycles,
                jobs=summary.total,
                jobs_per_sec=summary.total / wall if wall > 0 else 0.0,
                field_mb=field_bytes / 1e6,
                field_mb_per_sec=field_bytes / 1e6 / wall if wall > 0 else 0.0,
            )

    pickle_records, shm_records = runs["pickle"], runs["shm"]

    def comparable(record: Dict[str, Any]) -> Dict[str, Any]:
        skip = _BACKEND_DEPENDENT_KEYS + ("fields",)
        return {k: v for k, v in record.items() if k not in skip}

    checks = {
        "all_jobs_ok": all(r.get("ok") for r in pickle_records + shm_records),
        "records_equal": [comparable(r) for r in pickle_records]
        == [comparable(r) for r in shm_records],
        # explicit presence checks keep a failed job (no fields in its
        # record) reported as a failed check instead of a scenario-killing
        # KeyError — or a vacuous pass when both sides lack fields
        "fields_bit_identical": all(
            p.get("fields") is not None
            and s.get("fields") is not None
            and np.array_equal(p["fields"]["u"], s["fields"]["u"])
            for p, s in zip(pickle_records, shm_records)
        ),
        "field_digests_equal": all(
            p.get("fields_sha256") == s.get("fields_sha256")
            and p.get("fields_sha256") is not None
            for p, s in zip(pickle_records, shm_records)
        ),
    }
    config = {
        "n": n,
        "jobs": n_jobs,
        "sweeps": sweeps,
        "workers": workers,
        "backend": "fast",
        "field_mb": field_bytes / 1e6,
        "min_speedup": None if quick else BATCH_SHM_MIN_SPEEDUP,
    }
    record = _finish(
        "batch_shm", quick, config, sides, checks, pair=("pickle", "shm")
    )
    if not quick:
        # the acceptance gate rides the record so CI and humans see it
        record["checks"]["meets_min_speedup"] = (
            record["speedup"] >= BATCH_SHM_MIN_SPEEDUP
        )
        record["ok"] = all(record["checks"].values())
    return record


def _scenario_fused_coverage(quick: bool) -> Dict[str, Any]:
    """The formerly-fallback program classes through the fused engine.

    One record covers the three fallback classes the coverage work
    closed, with hard evidence that the *fused* engine (not a fallback
    tier) executed each of them:

    - **residual-skew ablation** (timed, the headline): a multi-node
      Jacobi build with auto-balancing disabled — skewed operand streams
      — on a non-cubic grid, reference backend vs the fused fast
      backend.  Exactly the ablation study the paper motivates; this
      used to drop all the way to the reference stepper.  Full parity is
      asserted and the full configuration gates
      :data:`FUSED_COVERAGE_MIN_SPEEDUP`.
    - **keep_outputs** (single node): per-issue ``fu_outputs`` streams
      must come back bit-identical to the reference, and the compiled
      engine must *accept* the run (``try_run_fused`` is not None).
    - **rearmed interrupts** (single node): FP kinds armed, a condition
      kind disarmed, non-finite inputs — delivered *and* dropped
      interrupt streams must match the reference exactly, again with the
      fused engine provably engaged.
    """
    from repro.apps.poisson3d import manufactured_solution
    from repro.arch.interrupts import InterruptKind
    from repro.arch.node import NodeConfig
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
    from repro.sim import progplan
    from repro.sim.machine import NSCMachine
    from repro.sim.multinode import MultiNodeStencil

    node = NodeConfig()
    checks: Dict[str, bool] = {}

    # --- timed sides: the multi-node residual-skew ablation build -------
    dim = 3 if quick else 4
    n_nodes = 1 << dim
    shape = (6, 8, 32)  # non-cubic; nz divides both node counts
    sweeps = 10 if quick else 40
    reps = 1 if quick else 2
    local_shape = (shape[0], shape[1], shape[2] // n_nodes + 2)
    setup = build_jacobi_program(node, local_shape, eps=1e-30, loop=False)
    skew_program = MicrocodeGenerator(node, auto_balance=False).generate(
        setup.program
    )
    u_star, _f, _h = manufactured_solution(shape)

    def make_stencil(backend: str) -> MultiNodeStencil:
        stencil = MultiNodeStencil(
            hypercube_dim=dim,
            shape=shape,
            eps=1e-30,
            precompiled=(setup, skew_program),
            backend=backend,
        )
        stencil.scatter("u", u_star)
        return stencil

    # the whole-system compiler must *accept* the skewed build — a
    # FusionUnsupported here would silently time a fallback tier instead
    try:
        progplan.fused_stepper(make_stencil("fast"))
        checks["skew_fuses_multinode"] = True
    except progplan.FusionUnsupported:
        checks["skew_fuses_multinode"] = False

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        wall = float("inf")
        for _rep in range(reps):
            stencil = make_stencil(backend)
            result, elapsed = _timed(lambda: stencil.run(max_iterations=sweeps))
            wall = min(wall, elapsed)
        runs[backend] = (stencil, result)
        sides[backend] = _side(
            wall,
            result.total_cycles,
            iterations=result.iterations,
            achieved_gflops=result.achieved_gflops,
        )
    (s_ref, r_ref), (s_fast, r_fast) = runs["reference"], runs["fast"]
    checks.update(
        {
            "grids_identical": bool(
                np.array_equal(s_ref.gather("u"), s_fast.gather("u"))
            ),
            "compute_cycles_equal": r_ref.compute_cycles == r_fast.compute_cycles,
            "comm_cycles_equal": r_ref.comm_cycles == r_fast.comm_cycles,
            "flops_equal": r_ref.flops == r_fast.flops,
            "residual_history_equal": (
                r_ref.residual_history == r_fast.residual_history
            ),
        }
    )

    # --- untimed coverage checks on one node ----------------------------
    cov_shape = (5, 6, 7)  # non-cubic again
    cov_setup = build_jacobi_program(node, cov_shape, eps=1e-4, max_iterations=40)
    cov_program = MicrocodeGenerator(node).generate(cov_setup.program)
    _u, cov_f, _h2 = manufactured_solution(cov_shape, h=cov_setup.h)
    rng = np.random.default_rng(20260726)
    cov_u0 = rng.random(cov_shape)

    def fresh(backend: str) -> NSCMachine:
        machine = NSCMachine(node, backend=backend)
        machine.load_program(cov_program)
        load_jacobi_inputs(machine, cov_setup, cov_u0, cov_f)
        return machine

    def irq_streams(machine: NSCMachine) -> Tuple[List[str], List[str]]:
        # repr: NaN payloads must compare equal, not unequal-to-itself
        return (
            [
                repr((i.cycle, i.kind, i.source, i.payload))
                for i in machine.interrupts.delivered
            ],
            [
                repr((i.cycle, i.kind, i.source, i.payload))
                for i in machine.interrupts.dropped
            ],
        )

    # keep_outputs: fused engine engaged, per-issue streams bit-identical
    probe = fresh("fast")
    checks["keep_outputs_runs_fused"] = (
        progplan.try_run_fused(probe, cov_program, 1_000_000, keep_outputs=True)
        is not None
    )
    m_ref = fresh("reference")
    r_ref1 = m_ref.run(keep_outputs=True)
    m_fast = fresh("fast")
    r_fast1 = m_fast.run(keep_outputs=True)
    checks["keep_outputs_streams_identical"] = (
        r_ref1.total_cycles == r_fast1.total_cycles
        and len(r_ref1.pipeline_results) == len(r_fast1.pipeline_results)
        and all(
            set(p.fu_outputs) == set(q.fu_outputs)
            and all(
                np.array_equal(p.fu_outputs[fu], q.fu_outputs[fu])
                for fu in p.fu_outputs
            )
            for p, q in zip(r_ref1.pipeline_results, r_fast1.pipeline_results)
        )
    )

    # rearmed interrupts: FP armed, CONDITION_FALSE masked, inf/nan input
    bad_u0 = cov_u0.copy()
    bad_u0[2, 3, 1] = np.inf
    bad_u0[1, 2, 3] = np.nan

    def rearm(machine: NSCMachine) -> NSCMachine:
        machine.set_variable("u", bad_u0.reshape(-1))
        machine.interrupts.arm(InterruptKind.FP_OVERFLOW)
        machine.interrupts.arm(InterruptKind.FP_INVALID)
        machine.interrupts.disarm(InterruptKind.CONDITION_FALSE)
        return machine

    probe = rearm(fresh("fast"))
    checks["rearmed_runs_fused"] = (
        progplan.try_run_fused(probe, cov_program, 1_000_000) is not None
    )
    m_ref = rearm(fresh("reference"))
    m_ref.run()
    m_fast = rearm(fresh("fast"))
    m_fast.run()
    checks["rearmed_interrupts_identical"] = irq_streams(m_ref) == irq_streams(m_fast)
    # the NaN seed propagates into the grid; NaNs at equal positions match
    checks["rearmed_grids_identical"] = bool(
        np.array_equal(
            m_ref.get_variable("u"), m_fast.get_variable("u"), equal_nan=True
        )
    )

    config = {
        "shape": list(shape),
        "hypercube_dim": dim,
        "n_nodes": n_nodes,
        "sweeps": sweeps,
        "coverage_shape": list(cov_shape),
        "min_speedup": None if quick else FUSED_COVERAGE_MIN_SPEEDUP,
    }
    record = _finish("fused_coverage", quick, config, sides, checks)
    if not quick:
        # the acceptance gate rides the record so CI and humans see it
        record["checks"]["meets_min_speedup"] = (
            record["speedup"] >= FUSED_COVERAGE_MIN_SPEEDUP
        )
        record["ok"] = all(record["checks"].values())
    return record


def _scenario_batch_fused(quick: bool) -> Dict[str, Any]:
    """Whole-batch slab execution vs N per-job fused runs.

    One seeded Jacobi sweep — every job the same compiled program, each
    with its own random initial guess — runs twice through the serial
    service: once with ``batch_fusion="off"`` (N independent fused runs,
    the status-quo fast path) and once with ``batch_fusion="auto"`` (one
    :class:`~repro.sim.batchplan.BatchProgramRun` sweeping the whole
    stack).  Jobs, seeds, and the warmed disk cache are held identical,
    the records must agree on everything the jobs computed (grids,
    cycles, flops, convergence), every batch-side record must carry the
    ``batch_fused`` tier stamp, and on the full configuration the slab
    side must win by at least :data:`BATCH_FUSED_MIN_SPEEDUP`.

    The configuration deliberately pins the *control-amortization*
    regime the tier exists for: many short same-program jobs, where
    per-job machine construction and input loading dominate.  On large
    DRAM-bound grids (48³ and up) the two tiers run at compute parity —
    the stacked operand streams fall out of cache exactly as N separate
    streams do — so a big-grid configuration would measure the memory
    system, not the batching win; see ``docs/BACKENDS.md``.
    """
    import tempfile

    from repro.service.jobs import SimJob
    from repro.service.runner import BatchRunner

    n = 16 if quick else 24
    n_jobs = 6 if quick else 32
    sweeps = 2
    # wall times are tens of milliseconds; best-of-3 keeps a single
    # scheduler hiccup on either side from deciding the gated ratio
    reps = 3
    # same large-memory configuration batch_shm uses: grids past the 8K
    # double-buffered cache need the deliberate big-cache machine variant
    if n * n * n > 8 * 1024:
        overrides = (("cache_buffer_words", 512 * 1024),)
    else:
        overrides = ()
    jobs = [
        SimJob(
            method="jacobi",
            shape=(n, n, n),
            eps=1e-30,  # never converges early: exactly `sweeps` sweeps
            max_sweeps=sweeps,
            backend="fast",
            u0_seed=i,
            param_overrides=overrides,
            label=f"jacobi-bf-n{n}-s{i}",
        )
        for i in range(n_jobs)
    ]

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    with tempfile.TemporaryDirectory() as cache_dir:
        # warm the shared disk cache so neither side pays the (identical,
        # once-per-program) compile cost inside its timed window
        BatchRunner(workers=1, cache_dir=cache_dir).run(jobs[:1])
        for side, mode in (("per_job", "off"), ("batch_fused", "auto")):
            wall = float("inf")
            for _rep in range(reps):
                runner = BatchRunner(
                    workers=1, cache_dir=cache_dir, batch_fusion=mode
                )
                (records, summary), elapsed = _timed(lambda: runner.run(jobs))
                wall = min(wall, elapsed)
            runs[side] = records
            sides[side] = _side(
                wall,
                summary.total_cycles,
                jobs=summary.total,
                jobs_per_sec=summary.total / wall if wall > 0 else 0.0,
            )

    per_job_records, batch_records = runs["per_job"], runs["batch_fused"]

    def comparable(record: Dict[str, Any]) -> Dict[str, Any]:
        return {
            k: v for k, v in record.items() if k not in _BACKEND_DEPENDENT_KEYS
        }

    checks = {
        "all_jobs_ok": all(
            r.get("ok") for r in per_job_records + batch_records
        ),
        # everything the jobs computed — converged/sweeps/cycles/metrics/
        # error_vs_analytic — must be bit-identical between the tiers
        "records_equal": [comparable(r) for r in per_job_records]
        == [comparable(r) for r in batch_records],
        # tier stamps prove which engine ran each side: a silent fallback
        # to per-job execution would pass parity while voiding the claim
        "per_job_tier_fused": all(
            r.get("tier") == "fused" for r in per_job_records
        ),
        "batch_tier_batch_fused": all(
            r.get("tier") == "batch_fused"
            and r.get("slab_size") == n_jobs
            for r in batch_records
        ),
    }
    config = {
        "n": n,
        "jobs": n_jobs,
        "sweeps": sweeps,
        "backend": "fast",
        "min_speedup": None if quick else BATCH_FUSED_MIN_SPEEDUP,
    }
    record = _finish(
        "batch_fused", quick, config, sides, checks,
        pair=("per_job", "batch_fused"),
    )
    if not quick:
        # the acceptance gate rides the record so CI and humans see it
        record["checks"]["meets_min_speedup"] = (
            record["speedup"] >= BATCH_FUSED_MIN_SPEEDUP
        )
        record["ok"] = all(record["checks"].values())
    return record


def _scenario_analysis_coverage(quick: bool) -> Dict[str, Any]:
    """Untimed: the static analyzer's coverage over the bench corpus.

    Two-sided acceptance check rather than a timing race — the corpus
    programs (every registry solver at the quick and full bench shapes)
    must analyze *clean*, and every seeded defect class must be flagged
    with its expected rule on every solver (zero false negatives).
    Emits ``"untimed": True`` instead of backend sides and speedups, so
    baseline comparison and speedup gates skip it by construction.
    """
    from repro.analysis import analyze_program
    from repro.analysis.seeding import SEEDED_DEFECTS
    from repro.arch.node import NodeConfig
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.registry import SOLVERS

    node = NodeConfig()
    generator = MicrocodeGenerator(node, run_checker=False)
    shapes = (7,) if quick else (7, 9)
    corpus = []
    for entry in SOLVERS.values():
        for n in shapes:
            setup = entry.build_setup(
                node, (n, n, n), eps=1e-4, max_iterations=100, omega=1.5
            )
            corpus.append(
                (f"{entry.name}-{n}", generator.generate(setup.program))
            )

    checks: Dict[str, bool] = {}
    findings_total = 0
    issues_walked = 0
    for name, program in corpus:
        verdict = analyze_program(program)
        checks[f"clean_{name}"] = verdict.clean
        findings_total += len(verdict.findings)
        issues_walked += verdict.issues_walked

    # positive side: every defect class must be caught on every solver
    seeded = 0
    for rule, injector in SEEDED_DEFECTS.items():
        caught = True
        for name, program in corpus:
            mutant = injector(program)
            verdict = analyze_program(mutant)
            caught &= rule in {f.rule for f in verdict.findings}
            seeded += 1
        checks[f"detects_{rule}"] = caught

    return {
        "scenario": "analysis_coverage",
        "quick": quick,
        "untimed": True,
        "config": {
            "solvers": sorted(SOLVERS),
            "shapes": list(shapes),
            "programs_analyzed": len(corpus),
            "mutants_analyzed": seeded,
            "issues_walked": issues_walked,
            "corpus_findings": findings_total,
        },
        "checks": checks,
        "ok": all(checks.values()),
    }


_SCENARIO_FNS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "jacobi_single": _scenario_jacobi_single,
    "jacobi_multinode": _scenario_jacobi_multinode,
    "batch_service": _scenario_batch_service,
    "jacobi_converge": _scenario_jacobi_converge,
    "hypercube_scaling": _scenario_hypercube_scaling,
    "batch_shm": _scenario_batch_shm,
    "fused_coverage": _scenario_fused_coverage,
    "batch_fused": _scenario_batch_fused,
    "analysis_coverage": _scenario_analysis_coverage,
}


# ----------------------------------------------------------------------
# driver API
# ----------------------------------------------------------------------
def run_scenario(name: str, quick: bool = False) -> Dict[str, Any]:
    """Run one named scenario on both backends; returns its record."""
    fn = _SCENARIO_FNS.get(name)
    if fn is None:
        raise BenchError(
            f"unknown scenario {name!r}; expected one of {SCENARIOS}"
        )
    import repro.sim.progplan  # noqa: F401  (module load is not a per-run cost)

    return fn(quick)


def write_record(record: Dict[str, Any], out_dir: str) -> Path:
    """Write ``BENCH_<scenario>.json`` under *out_dir*; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{record['scenario']}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_record(record: Dict[str, Any]) -> str:
    """One human-readable summary line per scenario."""
    if record.get("untimed"):
        status = "checks ok" if record["ok"] else "CHECKS FAILED"
        failed = [k for k, v in record["checks"].items() if not v]
        detail = f" (failed: {', '.join(failed)})" if failed else ""
        return (
            f"{record['scenario']:<18} untimed  "
            f"{len(record['checks'])} checks  {status}{detail}"
        )
    base_name, cont_name = record.get("speedup_pair", ["reference", "fast"])
    base = record["backends"][base_name]
    cont = record["backends"][cont_name]
    short = {"reference": "ref"}
    status = "parity ok" if record["ok"] else "CHECKS FAILED"
    failed = [k for k, v in record["checks"].items() if not v]
    detail = f" (failed: {', '.join(failed)})" if failed else ""
    extra = ""
    if "speedup_vs_unfused" in record:
        extra = f" ({record['speedup_vs_unfused']:.1f}x vs per-issue fast)"
    return (
        f"{record['scenario']:<18} "
        f"{short.get(base_name, base_name)} {base['wall_s']:.3f}s "
        f"({base['sim_cycles_per_sec']:.3g} cycles/s)  "
        f"{short.get(cont_name, cont_name)} {cont['wall_s']:.3f}s "
        f"({cont['sim_cycles_per_sec']:.3g} cycles/s)  "
        f"speedup {record['speedup']:.1f}x{extra}  {status}{detail}"
    )


# ----------------------------------------------------------------------
# baselines and regression comparison
# ----------------------------------------------------------------------
#: Record keys treated as regression-guarded speedup metrics.
_BASELINE_METRICS = ("speedup", "speedup_vs_unfused")


def baseline_from_records(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Distill bench records into a committable baseline document.

    Untimed records carry no gateable metrics and are left out — the
    baseline floors speedups, and they have none to floor.
    """
    scenarios: Dict[str, Dict[str, float]] = {}
    for record in records:
        if record.get("untimed"):
            continue
        entry = {
            metric: round(float(record[metric]), 3)
            for metric in _BASELINE_METRICS
            if metric in record
        }
        scenarios[record["scenario"]] = entry
    return {
        "tolerance": REGRESSION_TOLERANCE,
        "quick": bool(records[0]["quick"]) if records else False,
        "scenarios": scenarios,
    }


def write_baseline(records: Sequence[Dict[str, Any]], path: str) -> Path:
    """Write the baseline JSON for *records*; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as fh:
        json.dump(baseline_from_records(records), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return target


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_comparison(comparison: Dict[str, Any], out_dir: str) -> Path:
    """Write ``BENCH_compare.json`` under *out_dir*; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_compare.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(comparison, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def compare_records(
    records: Sequence[Dict[str, Any]],
    baseline: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> Dict[str, Any]:
    """Diff recorded speedups against a committed baseline.

    A metric regresses when it falls more than *tolerance* (default: the
    baseline's own, else :data:`REGRESSION_TOLERANCE`) below its baseline
    value.  Scenarios absent from the baseline are reported but never
    fail — they are new coverage, to be baselined on the next refresh —
    and so are records from a different workload class than the baseline
    (full runs diffed against quick floors measure different problems).

    The diff is symmetric about presence: a baselined scenario the run
    never produced gets an explicit ``"scenario missing from run"`` entry
    per guarded metric (``current: None``, passing — partial runs via
    ``--scenarios`` are legitimate, but the gap must be visible), just as
    an unbaselined scenario gets its ``"not in baseline"`` entry.
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", REGRESSION_TOLERANCE))
    floor_factor = 1.0 - tolerance
    base_quick = baseline.get("quick")
    entries: List[Dict[str, Any]] = []
    ok = True
    ran = {record["scenario"] for record in records}
    for scenario, base_entry in sorted(
        baseline.get("scenarios", {}).items()
    ):
        if scenario in ran:
            continue
        for metric in _BASELINE_METRICS:
            if metric not in base_entry:
                continue
            entries.append(
                {
                    "scenario": scenario,
                    "metric": metric,
                    "current": None,
                    "baseline": float(base_entry[metric]),
                    "ok": True,
                    "note": "scenario missing from run",
                }
            )
    for record in records:
        base_entry = baseline.get("scenarios", {}).get(record["scenario"])
        note = None
        if base_entry is None:
            base_entry = {}
            note = "not in baseline"
        elif base_quick is not None and bool(record.get("quick")) != base_quick:
            base_entry = {}
            note = "workload class differs from baseline (quick vs full)"
        for metric in _BASELINE_METRICS:
            if metric not in record:
                continue
            current = float(record[metric])
            base = (
                float(base_entry[metric]) if metric in base_entry else None
            )
            if base is None:
                entries.append(
                    {
                        "scenario": record["scenario"],
                        "metric": metric,
                        "current": current,
                        "baseline": None,
                        "ok": True,
                        "note": note or "not in baseline",
                    }
                )
                continue
            passed = current >= base * floor_factor
            ok = ok and passed
            entries.append(
                {
                    "scenario": record["scenario"],
                    "metric": metric,
                    "current": current,
                    "baseline": base,
                    "floor": base * floor_factor,
                    "ok": passed,
                }
            )
    return {"ok": ok, "tolerance": tolerance, "entries": entries}


def format_comparison(comparison: Dict[str, Any]) -> str:
    """Human-readable comparison table, one line per guarded metric."""
    lines = []
    for entry in comparison["entries"]:
        name = f"{entry['scenario']}.{entry['metric']}"
        if entry["current"] is None:
            note = entry.get("note", "scenario missing from run")
            lines.append(
                f"  {name:<40} (no run) vs baseline "
                f"{entry['baseline']:.2f}x  ({note})"
            )
            continue
        if entry["baseline"] is None:
            note = entry.get("note", "not in baseline")
            lines.append(f"  {name:<40} {entry['current']:.2f}x  ({note})")
            continue
        verdict = "ok" if entry["ok"] else "REGRESSION"
        lines.append(
            f"  {name:<40} {entry['current']:.2f}x vs baseline "
            f"{entry['baseline']:.2f}x (floor {entry['floor']:.2f}x)  {verdict}"
        )
    header = (
        f"baseline comparison (tolerance {comparison['tolerance']:.0%}): "
        + ("ok" if comparison["ok"] else "REGRESSIONS FOUND")
    )
    return "\n".join([header] + lines)


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    out_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Run the selected (default: all) scenarios, optionally writing JSON."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    for name in names:
        if name not in _SCENARIO_FNS:
            raise BenchError(
                f"unknown scenario {name!r}; expected one of {SCENARIOS}"
            )
    records = []
    for name in names:
        record = run_scenario(name, quick=quick)
        if out_dir is not None:
            write_record(record, out_dir)
        records.append(record)
    return records


__all__ = [
    "SCENARIOS",
    "UNTIMED_SCENARIOS",
    "REGRESSION_TOLERANCE",
    "BenchError",
    "run_scenario",
    "run_bench",
    "write_record",
    "format_record",
    "baseline_from_records",
    "write_baseline",
    "load_baseline",
    "write_comparison",
    "compare_records",
    "format_comparison",
]
