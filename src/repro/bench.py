"""Performance harness: the reference interpreter vs. the fast path.

Each scenario runs an identical workload on both execution backends
(:data:`repro.sim.fastpath.BACKENDS`), *verifies* that they agree —
bit-identical grids, identical cycle and flop counts — and reports wall
time, simulated-cycle throughput, and speedup.  Results serialize to
machine-readable ``BENCH_<scenario>.json`` files, which CI uploads as
artifacts on every PR (the ``bench-smoke`` job fails if the backends ever
disagree).

Scenarios:

- ``jacobi_single`` — the paper's Eq. 1 example to convergence on one node;
- ``jacobi_multinode`` — the 64-node hypercube system (§2), one z-plane per
  slab, fixed sweep count: the headline fast-path scenario;
- ``batch_service`` — Poisson solver jobs through the batch service,
  measuring end-to-end job throughput.

Drive it with ``nsc-vpe bench [--quick] [--scenarios ...] [--out DIR]``, or
programmatically via :func:`run_scenario` / :func:`run_bench`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.fastpath import BACKENDS

#: Scenario names in canonical execution order.
SCENARIOS = ("jacobi_single", "jacobi_multinode", "batch_service")


class BenchError(ValueError):
    """Unknown scenario or malformed bench request."""


def _timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def _side(wall_s: float, sim_cycles: int, **extra: Any) -> Dict[str, Any]:
    record = {
        "wall_s": wall_s,
        "sim_cycles": int(sim_cycles),
        "sim_cycles_per_sec": sim_cycles / wall_s if wall_s > 0 else 0.0,
    }
    record.update(extra)
    return record


def _finish(
    name: str,
    quick: bool,
    config: Dict[str, Any],
    sides: Dict[str, Dict[str, Any]],
    checks: Dict[str, bool],
) -> Dict[str, Any]:
    ref_wall = sides["reference"]["wall_s"]
    fast_wall = sides["fast"]["wall_s"]
    return {
        "scenario": name,
        "quick": quick,
        "config": config,
        "backends": sides,
        "speedup": ref_wall / fast_wall if fast_wall > 0 else 0.0,
        "checks": checks,
        "ok": all(checks.values()),
    }


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _scenario_jacobi_single(quick: bool) -> Dict[str, Any]:
    from repro.arch.node import NodeConfig
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
    from repro.sim.machine import NSCMachine

    n = 8 if quick else 12
    eps = 1e-5
    shape = (n, n, n)
    node = NodeConfig()
    setup = build_jacobi_program(node, shape, eps=eps, max_iterations=5000)
    program = MicrocodeGenerator(node).generate(setup.program)
    from repro.apps.poisson3d import manufactured_solution

    _u_star, f, _h = manufactured_solution(shape, h=setup.h)

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        machine = NSCMachine(node, backend=backend)
        machine.load_program(program)
        load_jacobi_inputs(machine, setup, np.zeros(shape), f)
        result, wall = _timed(machine.run)
        sweeps = result.loop_iterations.get(setup.update_pipeline, 0)
        runs[backend] = (machine, result)
        sides[backend] = _side(wall, result.total_cycles, sweeps=sweeps)

    (m_ref, r_ref), (m_fast, r_fast) = runs["reference"], runs["fast"]
    checks = {
        "grids_identical": bool(
            np.array_equal(m_ref.get_variable("u"), m_fast.get_variable("u"))
        ),
        "cycles_equal": r_ref.total_cycles == r_fast.total_cycles,
        "flops_equal": r_ref.total_flops == r_fast.total_flops,
        "converged_both": bool(r_ref.converged) and bool(r_fast.converged),
        "metrics_equal": (
            m_ref.metrics(r_ref).summary() == m_fast.metrics(r_fast).summary()
        ),
    }
    config = {"shape": list(shape), "eps": eps, "hypercube_dim": 0}
    return _finish("jacobi_single", quick, config, sides, checks)


def _scenario_jacobi_multinode(quick: bool) -> Dict[str, Any]:
    from repro.apps.poisson3d import manufactured_solution
    from repro.sim.multinode import MultiNodeStencil

    dim = 6  # the paper's 64-node system
    shape = (8, 8, 64)  # one real z-plane per slab
    sweeps = 12 if quick else 40
    u_star, _f, _h = manufactured_solution(shape)

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        stencil = MultiNodeStencil(
            hypercube_dim=dim, shape=shape, eps=1e-30, backend=backend
        )
        stencil.scatter("u", u_star)
        result, wall = _timed(lambda: stencil.run(max_iterations=sweeps))
        runs[backend] = (stencil, result)
        sides[backend] = _side(
            wall,
            result.total_cycles,
            iterations=result.iterations,
            achieved_gflops=result.achieved_gflops,
        )

    (s_ref, r_ref), (s_fast, r_fast) = runs["reference"], runs["fast"]
    checks = {
        "grids_identical": bool(
            np.array_equal(s_ref.gather("u"), s_fast.gather("u"))
        ),
        "compute_cycles_equal": r_ref.compute_cycles == r_fast.compute_cycles,
        "comm_cycles_equal": r_ref.comm_cycles == r_fast.comm_cycles,
        "flops_equal": r_ref.flops == r_fast.flops,
        "words_equal": r_ref.words_exchanged == r_fast.words_exchanged,
        "residual_history_equal": (
            r_ref.residual_history == r_fast.residual_history
        ),
    }
    config = {
        "shape": list(shape),
        "hypercube_dim": dim,
        "n_nodes": 1 << dim,
        "sweeps": sweeps,
    }
    return _finish("jacobi_multinode", quick, config, sides, checks)


#: Record keys that may legitimately differ between backend runs.
_BACKEND_DEPENDENT_KEYS = ("job_id", "label", "backend", "cache_hit")


def _scenario_batch_service(quick: bool) -> Dict[str, Any]:
    from repro.apps.poisson3d import poisson_jobs
    from repro.service.runner import BatchRunner

    n = 5 if quick else 7
    eps = 1e-3 if quick else 1e-4
    methods = ("jacobi", "rb-gs", "rb-sor")
    max_sweeps = 2000

    runs: Dict[str, Any] = {}
    sides: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        jobs = poisson_jobs(
            n=n, methods=methods, eps=eps, max_sweeps=max_sweeps, backend=backend
        )
        runner = BatchRunner(workers=1)
        (records, summary), wall = _timed(lambda: runner.run(jobs))
        runs[backend] = records
        sides[backend] = _side(
            wall,
            summary.total_cycles,
            jobs=summary.total,
            jobs_per_sec=summary.total / wall if wall > 0 else 0.0,
        )

    def comparable(record: Dict[str, Any]) -> Dict[str, Any]:
        return {
            k: v for k, v in record.items() if k not in _BACKEND_DEPENDENT_KEYS
        }

    ref_records, fast_records = runs["reference"], runs["fast"]
    checks = {
        "all_jobs_ok": all(
            r.get("ok") for r in ref_records + fast_records
        ),
        "records_equal": [comparable(r) for r in ref_records]
        == [comparable(r) for r in fast_records],
    }
    config = {
        "n": n,
        "methods": list(methods),
        "eps": eps,
        "max_sweeps": max_sweeps,
    }
    return _finish("batch_service", quick, config, sides, checks)


_SCENARIO_FNS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "jacobi_single": _scenario_jacobi_single,
    "jacobi_multinode": _scenario_jacobi_multinode,
    "batch_service": _scenario_batch_service,
}


# ----------------------------------------------------------------------
# driver API
# ----------------------------------------------------------------------
def run_scenario(name: str, quick: bool = False) -> Dict[str, Any]:
    """Run one named scenario on both backends; returns its record."""
    fn = _SCENARIO_FNS.get(name)
    if fn is None:
        raise BenchError(
            f"unknown scenario {name!r}; expected one of {SCENARIOS}"
        )
    return fn(quick)


def write_record(record: Dict[str, Any], out_dir: str) -> Path:
    """Write ``BENCH_<scenario>.json`` under *out_dir*; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{record['scenario']}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_record(record: Dict[str, Any]) -> str:
    """One human-readable summary line per scenario."""
    ref = record["backends"]["reference"]
    fast = record["backends"]["fast"]
    status = "parity ok" if record["ok"] else "BACKENDS DISAGREE"
    failed = [k for k, v in record["checks"].items() if not v]
    detail = f" (failed: {', '.join(failed)})" if failed else ""
    return (
        f"{record['scenario']:<18} ref {ref['wall_s']:.3f}s "
        f"({ref['sim_cycles_per_sec']:.3g} cycles/s)  "
        f"fast {fast['wall_s']:.3f}s "
        f"({fast['sim_cycles_per_sec']:.3g} cycles/s)  "
        f"speedup {record['speedup']:.1f}x  {status}{detail}"
    )


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    out_dir: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Run the selected (default: all) scenarios, optionally writing JSON."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    for name in names:
        if name not in _SCENARIO_FNS:
            raise BenchError(
                f"unknown scenario {name!r}; expected one of {SCENARIOS}"
            )
    records = []
    for name in names:
        record = run_scenario(name, quick=quick)
        if out_dir is not None:
            write_record(record, out_dir)
        records.append(record)
    return records


__all__ = [
    "SCENARIOS",
    "BenchError",
    "run_scenario",
    "run_bench",
    "write_record",
    "format_record",
]
