"""PipelineBuilder: programmatic construction of pipeline diagrams.

The builder performs the same steps a user performs in the graphical editor
— place ALSs, wire pads, fill in DMA pop-ups, program units — but driven by
an API.  It makes the greedy resource decisions a human makes at the screen:
pick the least-capable free unit that can do the job (don't burn the one
integer unit on an add), and use an ALS's hardwired internal route instead
of the switch network when the producing unit sits in the same ALS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.arch.als import ALS_CLASSES
from repro.arch.dma import DMASpec, Direction
from repro.arch.funcunit import FUCapability, OPCODES, Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import (
    DeviceKind,
    Endpoint,
    cache_read,
    cache_write,
    fu_in,
    fu_out,
    mem_read,
    mem_write,
    sd_in,
    sd_tap,
)
from repro.diagram.pipeline import (
    ConditionSpec,
    InputMod,
    InputModKind,
    PipelineDiagram,
)
from repro.diagram.program import VisualProgram


class BuilderError(Exception):
    """Resource exhaustion or inconsistent builder requests."""


@dataclass(frozen=True)
class MemSource:
    """A stream read from a memory plane (symbolic variable addressing)."""

    variable: str
    plane: int
    offset: int
    stride: int
    endpoint: Endpoint


@dataclass(frozen=True)
class CacheSource:
    cache: int
    offset: int
    stride: int
    endpoint: Endpoint


@dataclass(frozen=True)
class TapSource:
    unit: int
    tap: int
    shift: int
    endpoint: Endpoint


@dataclass(frozen=True)
class FURef:
    fu: int
    endpoint: Endpoint


@dataclass(frozen=True)
class ConstOperand:
    value: float


@dataclass(frozen=True)
class FeedbackOperand:
    init: float


Operand = Union[MemSource, CacheSource, TapSource, FURef, ConstOperand, FeedbackOperand]


#: Operations whose operands may be swapped to exploit a hardwired route.
COMMUTATIVE_OPS = {
    Opcode.FADD,
    Opcode.FMUL,
    Opcode.MAX,
    Opcode.MIN,
    Opcode.MAXABS,
    Opcode.MINABS,
    Opcode.IADD,
    Opcode.IMUL,
    Opcode.IAND,
    Opcode.IOR,
    Opcode.IXOR,
}


def _capability_richness(cap: FUCapability) -> int:
    return sum(
        1
        for flag in (FUCapability.FP, FUCapability.INT_LOGICAL, FUCapability.MINMAX)
        if flag in cap
    )


class PipelineBuilder:
    """Builds one :class:`PipelineDiagram` against a node and a program.

    The *program* supplies variable declarations (for symbolic DMA) and
    receives the finished diagram on :meth:`build`.
    """

    def __init__(
        self,
        node: NodeConfig,
        program: VisualProgram,
        label: str = "",
        vector_length: Optional[int] = None,
    ) -> None:
        self.node = node
        self.program = program
        self.diagram = PipelineDiagram(number=len(program.pipelines), label=label)
        self.diagram.vector_length = vector_length
        self._used_fus: set[int] = set()
        self._used_sd_units: set[int] = set()
        self._next_tap: Dict[int, int] = {}
        self._mem_reads: Dict[int, MemSource] = {}  # plane -> source in use

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def read_var(
        self, name: str, offset: int = 0, stride: int = 1,
        count: Optional[int] = None,
    ) -> MemSource:
        """Stream a declared variable in from its memory plane."""
        decl = self.program.declarations.get(name)
        if decl is None:
            raise BuilderError(f"variable {name!r} is not declared")
        plane = decl.plane
        existing = self._mem_reads.get(plane)
        if existing is not None:
            if (existing.variable, existing.offset, existing.stride) != (
                name, offset, stride,
            ):
                raise BuilderError(
                    f"memory plane {plane} read port already streams "
                    f"{existing.variable!r}; cannot also stream {name!r} in the "
                    f"same instruction"
                )
            return existing
        ep = mem_read(plane)
        self.diagram.set_dma(
            ep,
            DMASpec(
                device_kind=DeviceKind.MEMORY,
                device=plane,
                direction=Direction.READ,
                variable=name,
                offset=offset,
                stride=stride,
                count=count,
            ),
        )
        src = MemSource(
            variable=name, plane=plane, offset=offset, stride=stride, endpoint=ep
        )
        self._mem_reads[plane] = src
        return src

    def read_cache(
        self, cache: int, offset: int = 0, stride: int = 1,
        count: Optional[int] = None,
    ) -> CacheSource:
        ep = cache_read(cache)
        if ep not in self.diagram.dma:
            self.diagram.set_dma(
                ep,
                DMASpec(
                    device_kind=DeviceKind.CACHE,
                    device=cache,
                    direction=Direction.READ,
                    offset=offset,
                    stride=stride,
                    count=count,
                ),
            )
        return CacheSource(cache=cache, offset=offset, stride=stride, endpoint=ep)

    def constant(self, value: float) -> ConstOperand:
        return ConstOperand(value=value)

    def feedback(self, init: float = 0.0) -> FeedbackOperand:
        return FeedbackOperand(init=init)

    # ------------------------------------------------------------------
    # shift/delay
    # ------------------------------------------------------------------
    def through_sd(
        self, source: MemSource | CacheSource, shifts: Sequence[int],
        unit: Optional[int] = None,
    ) -> List[TapSource]:
        """Route *source* through a shift/delay unit; one tap per shift."""
        if unit is None:
            for candidate in range(self.node.params.n_shift_delay_units):
                if candidate not in self._used_sd_units:
                    unit = candidate
                    break
            else:
                raise BuilderError("no free shift/delay unit")
        if len(shifts) > self.node.params.shift_delay_taps:
            raise BuilderError(
                f"{len(shifts)} taps requested; unit has "
                f"{self.node.params.shift_delay_taps}"
            )
        self._used_sd_units.add(unit)
        self.diagram.connect(source.endpoint, sd_in(unit))
        taps: List[TapSource] = []
        base = self._next_tap.get(unit, 0)
        for i, shift in enumerate(shifts):
            tap = base + i
            self.diagram.set_sd_tap(unit, tap, shift)
            taps.append(
                TapSource(unit=unit, tap=tap, shift=shift, endpoint=sd_tap(unit, tap))
            )
        self._next_tap[unit] = base + len(shifts)
        return taps

    # ------------------------------------------------------------------
    # functional units
    # ------------------------------------------------------------------
    def _choose_fu(
        self, capability: FUCapability, operands: Sequence[Operand]
    ) -> int:
        """Pick a free unit: prefer internal-route colocation, then the
        least-capable unit that suffices."""
        src_fus = {op.fu for op in operands if isinstance(op, FURef)}
        candidates: List[Tuple[int, int, int]] = []  # (-colocate, richness, fu)
        for fu in range(self.node.n_fus):
            if fu in self._used_fus:
                continue
            cap = self.node.fu_capability(fu)
            if capability not in cap:
                continue
            colocate = 0
            als = self.node.als_of_fu(fu)
            my_slot = fu - als.first_fu
            for src in src_fus:
                src_als = self.node.als_of_fu(src)
                if src_als.als_id == als.als_id:
                    src_slot = src - als.first_fu
                    for edge in ALS_CLASSES[als.kind].internal_edges:
                        if edge.src_slot == src_slot and edge.dst_slot == my_slot:
                            colocate += 1
            candidates.append((-colocate, _capability_richness(cap), fu))
        if not candidates:
            raise BuilderError(
                f"no free functional unit with capability {capability.label}"
            )
        candidates.sort()
        return candidates[0][2]

    def _ensure_als_placed(self, fu: int) -> None:
        als = self.node.als_of_fu(fu)
        if als.als_id not in self.diagram.als_uses:
            self.diagram.add_als(als.als_id, als.kind, als.first_fu)

    def _wire_input(self, fu: int, port: str, operand: Operand) -> None:
        if isinstance(operand, ConstOperand):
            self.diagram.set_input_mod(
                fu, port, InputMod(kind=InputModKind.CONSTANT, value=operand.value)
            )
            return
        if isinstance(operand, FeedbackOperand):
            self.diagram.set_input_mod(
                fu, port, InputMod(kind=InputModKind.FEEDBACK, value=operand.init)
            )
            return
        if isinstance(operand, FURef):
            my_als = self.node.als_of_fu(fu)
            src_als = self.node.als_of_fu(operand.fu)
            if my_als.als_id == src_als.als_id:
                src_slot = operand.fu - my_als.first_fu
                my_slot = fu - my_als.first_fu
                routes = ALS_CLASSES[my_als.kind].internal_routes_into(my_slot, port)
                if any(r.src_slot == src_slot for r in routes):
                    self.diagram.set_input_mod(
                        fu,
                        port,
                        InputMod(kind=InputModKind.INTERNAL, src_slot=src_slot),
                    )
                    return
        self.diagram.connect(operand.endpoint, fu_in(fu, port))

    def apply(
        self,
        opcode: Opcode,
        a: Operand,
        b: Optional[Operand] = None,
        constant: float = 0.0,
    ) -> FURef:
        """Program a fresh unit with *opcode* and wire its operands."""
        info = OPCODES[opcode]
        if info.arity == 2 and b is None:
            raise BuilderError(f"{opcode.value} needs two operands")
        if info.arity == 1 and b is not None:
            raise BuilderError(f"{opcode.value} takes one operand")
        operands = [op for op in (a, b) if op is not None]
        fu = self._choose_fu(info.capability, operands)
        self._used_fus.add(fu)
        self._ensure_als_placed(fu)
        self.diagram.set_fu_op(fu, opcode, constant)
        if b is not None and opcode in COMMUTATIVE_OPS:
            # swap operands when that turns a switch hop into a hardwired
            # internal route (ports are asymmetric inside an ALS)
            straight = self._internal_usable(fu, "a", a) + self._internal_usable(
                fu, "b", b
            )
            swapped = self._internal_usable(fu, "a", b) + self._internal_usable(
                fu, "b", a
            )
            if swapped > straight:
                a, b = b, a
        self._wire_input(fu, "a", a)
        if b is not None:
            self._wire_input(fu, "b", b)
        return FURef(fu=fu, endpoint=fu_out(fu))

    def _internal_usable(self, fu: int, port: str, operand: Operand) -> int:
        if not isinstance(operand, FURef):
            return 0
        my_als = self.node.als_of_fu(fu)
        src_als = self.node.als_of_fu(operand.fu)
        if my_als.als_id != src_als.als_id:
            return 0
        src_slot = operand.fu - my_als.first_fu
        my_slot = fu - my_als.first_fu
        routes = ALS_CLASSES[my_als.kind].internal_routes_into(my_slot, port)
        return int(any(r.src_slot == src_slot for r in routes))

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def write_var(
        self,
        source: FURef | TapSource | MemSource | CacheSource,
        name: str,
        offset: int = 0,
        stride: int = 1,
        count: Optional[int] = None,
    ) -> None:
        decl = self.program.declarations.get(name)
        if decl is None:
            raise BuilderError(f"variable {name!r} is not declared")
        ep = mem_write(decl.plane)
        self.diagram.connect(source.endpoint, ep)
        self.diagram.set_dma(
            ep,
            DMASpec(
                device_kind=DeviceKind.MEMORY,
                device=decl.plane,
                direction=Direction.WRITE,
                variable=name,
                offset=offset,
                stride=stride,
                count=count,
            ),
        )

    def write_cache(
        self,
        source: FURef | TapSource | MemSource | CacheSource,
        cache: int,
        offset: int = 0,
        stride: int = 1,
        count: Optional[int] = None,
    ) -> None:
        ep = cache_write(cache)
        self.diagram.connect(source.endpoint, ep)
        self.diagram.set_dma(
            ep,
            DMASpec(
                device_kind=DeviceKind.CACHE,
                device=cache,
                direction=Direction.WRITE,
                offset=offset,
                stride=stride,
                count=count,
            ),
        )

    def condition(self, source: FURef, comparison: str, threshold: float) -> None:
        """Monitor *source*'s final stream element (condition interrupt)."""
        self.diagram.set_condition(
            ConditionSpec(fu=source.fu, comparison=comparison, threshold=threshold)
        )

    # ------------------------------------------------------------------
    def build(self, append: bool = True) -> PipelineDiagram:
        """Finish the diagram; by default append it to the program."""
        if append:
            self.program.insert_pipeline(self.diagram)
        return self.diagram


__all__ = [
    "PipelineBuilder",
    "BuilderError",
    "MemSource",
    "CacheSource",
    "TapSource",
    "FURef",
    "ConstOperand",
    "FeedbackOperand",
    "Operand",
]
