"""Small kernel programs: the vector workloads the NSC was pitched on.

Besides the Jacobi example, the paper's machine is a general reconfigurable
vector engine; these builders produce compact one-pipeline programs used by
the examples, the performance benchmarks (C1's utilization sweeps need
pipelines of varying FU counts), and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.compose.builders import BuilderError, PipelineBuilder
from repro.diagram.program import ExecPipeline, Halt, VisualProgram


@dataclass(frozen=True)
class KernelSetup:
    """A built kernel program plus the names a host loads/reads."""

    program: VisualProgram
    inputs: Tuple[str, ...]
    output: str
    n: int
    flops_per_element: int


def build_saxpy_program(
    node: NodeConfig, n: int, alpha: float = 2.0
) -> KernelSetup:
    """``y <- alpha * x + y``: the canonical two-unit pipeline (quickstart)."""
    prog = VisualProgram(name=f"saxpy-{n}")
    prog.declare("x", plane=0, length=n, initializer="user")
    prog.declare("y", plane=1, length=n, initializer="user")
    prog.declare("out", plane=2, length=n)
    b = PipelineBuilder(node, prog, label="saxpy", vector_length=n)
    x = b.read_var("x")
    y = b.read_var("y")
    ax = b.apply(Opcode.FSCALE, x, constant=alpha)
    s = b.apply(Opcode.FADD, ax, y)
    # a PASS unit decouples the adder (which reads plane 1) from the output
    # plane: §3 allows each unit to touch only one memory plane
    out = b.apply(Opcode.PASS, s)
    b.write_var(out, "out")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())
    return KernelSetup(
        program=prog, inputs=("x", "y"), output="out", n=n, flops_per_element=2
    )


def build_stream_max_program(node: NodeConfig, n: int) -> KernelSetup:
    """Running maximum of a stream via a feedback loop on a min/max unit."""
    prog = VisualProgram(name=f"stream-max-{n}")
    prog.declare("x", plane=0, length=n, initializer="user")
    prog.declare("out", plane=1, length=n)
    b = PipelineBuilder(node, prog, label="running max", vector_length=n)
    x = b.read_var("x")
    m = b.apply(Opcode.MAX, x, b.feedback(float("-inf")))
    out = b.apply(Opcode.PASS, m)  # decouple input plane from output plane
    b.write_var(out, "out")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())
    return KernelSetup(
        program=prog, inputs=("x",), output="out", n=n, flops_per_element=1
    )


def build_heat1d_program(
    node: NodeConfig, n: int, r: float = 0.25, steps: int = 1
) -> KernelSetup:
    """Explicit 1-D heat smoother ``u' = u + r*(u[i-1] - 2u + u[i+1])`` with
    boundary masking, iterated *steps* times by the sequencer."""
    from repro.diagram.program import CacheSwap, Repeat, SwapVars

    prog = VisualProgram(name=f"heat1d-{n}")
    prog.declare("u", plane=0, length=n, initializer="user")
    prog.declare("mask", plane=2, length=n, initializer="interior-mask")
    prog.declare("invmask", plane=3, length=n, initializer="boundary-mask")
    prog.declare("u_new", plane=1, length=n)

    b0 = PipelineBuilder(node, prog, label="load masks", vector_length=n)
    m_src = b0.read_var("mask")
    i_src = b0.read_var("invmask")
    b0.write_cache(m_src, cache=0, count=n)
    b0.write_cache(i_src, cache=1, count=n)
    b0.build()

    b = PipelineBuilder(node, prog, label="heat smoother", vector_length=n)
    u = b.read_var("u")
    u0, up, um = b.through_sd(u, shifts=[0, +1, -1])
    mask_c = b.read_cache(0, count=n)
    inv_c = b.read_cache(1, count=n)
    nsum = b.apply(Opcode.FADD, up, um)
    two_u = b.apply(Opcode.FSCALE, u0, constant=2.0)
    lap = b.apply(Opcode.FSUB, nsum, two_u)
    ru = b.apply(Opcode.FSCALE, lap, constant=r)
    unew = b.apply(Opcode.FADD, u0, ru)
    masked = b.apply(Opcode.FMUL, unew, mask_c)
    kept = b.apply(Opcode.FMUL, u0, inv_c)
    out = b.apply(Opcode.FADD, masked, kept)
    b.write_var(out, "u_new")
    b.build()

    prog.add_control(ExecPipeline(0))
    prog.add_control(CacheSwap(caches=(0, 1)))
    prog.add_control(
        Repeat(body=(ExecPipeline(1), SwapVars("u", "u_new")), times=steps)
    )
    prog.add_control(Halt())
    return KernelSetup(
        program=prog,
        inputs=("u", "mask", "invmask"),
        output="u",
        n=n,
        flops_per_element=7,
    )


def build_chain_program(
    node: NodeConfig, n: int, depth: int
) -> KernelSetup:
    """A dependent chain of *depth* adds: sweeps FU count for utilization
    studies (one stream in, one out, ``depth`` active units)."""
    if depth < 1:
        raise BuilderError("chain depth must be >= 1")
    prog = VisualProgram(name=f"chain-{depth}-{n}")
    prog.declare("x", plane=0, length=n, initializer="user")
    prog.declare("out", plane=1, length=n)
    b = PipelineBuilder(node, prog, label=f"chain of {depth}", vector_length=n)
    cur = b.apply(Opcode.FADDC, b.read_var("x"), constant=1.0)
    for _ in range(depth - 1):
        cur = b.apply(Opcode.FADDC, cur, constant=1.0)
    out = b.apply(Opcode.PASS, cur)  # decouple input plane from output plane
    b.write_var(out, "out")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())
    return KernelSetup(
        program=prog, inputs=("x",), output="out", n=n,
        flops_per_element=depth,
    )


def build_wide_program(
    node: NodeConfig, n: int, lanes: int
) -> KernelSetup:
    """*lanes* independent scale-streams running in parallel pipelines:
    the multiple-pipelines-per-instruction configuration of §2.

    Lane *i* streams a variable from plane ``i`` through a scale unit and a
    PASS unit into plane ``lanes + i``; all lanes share the single
    instruction (two units per lane so each touches one plane, per §3).
    """
    params = node.params
    if 2 * lanes > params.n_memory_planes:
        raise BuilderError(
            f"{lanes} lanes need {2 * lanes} planes; machine has "
            f"{params.n_memory_planes}"
        )
    if 2 * lanes > node.n_fus:
        raise BuilderError(
            f"{lanes} lanes need {2 * lanes} functional units; machine has "
            f"{node.n_fus}"
        )
    prog = VisualProgram(name=f"wide-{lanes}-{n}")
    for lane in range(lanes):
        prog.declare(f"x{lane}", plane=lane, length=n, initializer="user")
        prog.declare(f"y{lane}", plane=lanes + lane, length=n)
    b = PipelineBuilder(node, prog, label=f"{lanes} lanes", vector_length=n)
    for lane in range(lanes):
        x = b.read_var(f"x{lane}")
        y = b.apply(Opcode.FSCALE, x, constant=float(lane + 1))
        out = b.apply(Opcode.PASS, y)
        b.write_var(out, f"y{lane}")
    b.build()
    prog.add_control(ExecPipeline(0))
    prog.add_control(Halt())
    return KernelSetup(
        program=prog,
        inputs=tuple(f"x{lane}" for lane in range(lanes)),
        output="y0",
        n=n,
        flops_per_element=lanes,
    )


def build_chunked_scale_program(
    node: NodeConfig,
    n: int,
    chunk: int,
    alpha: float = 2.0,
    cache: int = 0,
) -> KernelSetup:
    """``out = alpha * x`` streamed through a double-buffered cache in
    chunks: the §2 overlap pattern made explicit.

    For each chunk the program has a *load* pipeline (plane -> cache back
    buffer) and a *compute* pipeline (cache front -> unit -> plane), with a
    sequencer ``CacheSwap`` between them.  DMA windows are static per
    instruction, so each chunk is its own pipeline pair — programs really
    are "a series of pipeline diagrams" (§5), and the per-instruction
    reconfiguration cost of chunking is measurable against the direct
    single-pipeline stream.
    """
    from repro.diagram.program import CacheSwap

    if chunk <= 0 or n % chunk != 0:
        raise BuilderError(f"chunk {chunk} must evenly divide n={n}")
    if chunk > node.params.cache_buffer_words:
        raise BuilderError(
            f"chunk of {chunk} words exceeds the cache buffer "
            f"({node.params.cache_buffer_words})"
        )
    n_chunks = n // chunk
    prog = VisualProgram(name=f"chunked-scale-{n}-by-{chunk}")
    prog.declare("x", plane=0, length=n, initializer="user")
    prog.declare("out", plane=1, length=n)

    for i in range(n_chunks):
        b_load = PipelineBuilder(
            node, prog, label=f"load chunk {i}", vector_length=chunk
        )
        src = b_load.read_var("x", offset=i * chunk, count=chunk)
        b_load.write_cache(src, cache=cache, count=chunk)
        b_load.build()

        b_comp = PipelineBuilder(
            node, prog, label=f"compute chunk {i}", vector_length=chunk
        )
        data = b_comp.read_cache(cache, count=chunk)
        scaled = b_comp.apply(Opcode.FSCALE, data, constant=alpha)
        b_comp.write_var(scaled, "out", offset=i * chunk, count=chunk)
        b_comp.build()

    for i in range(n_chunks):
        prog.add_control(ExecPipeline(2 * i))       # fill the back buffer
        prog.add_control(CacheSwap(caches=(cache,)))
        prog.add_control(ExecPipeline(2 * i + 1))   # consume the front
    prog.add_control(Halt())
    return KernelSetup(
        program=prog, inputs=("x",), output="out", n=n, flops_per_element=1
    )


__all__ = [
    "KernelSetup",
    "build_saxpy_program",
    "build_stream_max_program",
    "build_heat1d_program",
    "build_chain_program",
    "build_wide_program",
    "build_chunked_scale_program",
]
