"""Pipeline-construction aids layered over the semantic model.

The paper closes by noting that a visual environment "is still essentially a
low-level programming language" and points at higher-level front ends as the
open question (§6).  This package is that layer in embryonic form: a
:class:`PipelineBuilder` that allocates functional units and wires diagrams
programmatically, an expression-graph mapper, and the complete point-Jacobi
program of the paper's running example (Eq. 1 / Figs. 2 and 11).
"""

from repro.compose.builders import (
    PipelineBuilder,
    BuilderError,
    ConstOperand,
    FeedbackOperand,
)
from repro.compose.exprmap import Expr, Var, Const, BinOp, UnOp, map_expression
from repro.compose.jacobi import (
    JacobiSetup,
    build_jacobi_program,
    jacobi_grid_index,
)
from repro.compose.iterative import (
    RBSORSetup,
    build_rbsor_program,
    load_rbsor_inputs,
)
from repro.compose.registry import SOLVERS, SolverEntry
from repro.compose.kernels import (
    KernelSetup,
    build_chain_program,
    build_heat1d_program,
    build_saxpy_program,
    build_stream_max_program,
    build_wide_program,
)

__all__ = [
    "PipelineBuilder",
    "BuilderError",
    "ConstOperand",
    "FeedbackOperand",
    "Expr",
    "Var",
    "Const",
    "BinOp",
    "UnOp",
    "map_expression",
    "JacobiSetup",
    "build_jacobi_program",
    "jacobi_grid_index",
    "RBSORSetup",
    "build_rbsor_program",
    "load_rbsor_inputs",
    "SOLVERS",
    "SolverEntry",
    "KernelSetup",
    "build_chain_program",
    "build_heat1d_program",
    "build_saxpy_program",
    "build_stream_max_program",
    "build_wide_program",
]
