"""Named solver registry: the service layer's view of this package.

The batch service addresses solvers by name ("jacobi", "rb-gs", "rb-sor")
and needs, for each, a uniform way to build the visual program, load the
machine's input variables, and find the pipeline whose loop count is the
sweep counter.  :data:`SOLVERS` packages those three things so adding a
solver to the sweep space is one registry entry, not a new branch in the
runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.compose.iterative import (
    build_rbsor_program,
    load_rbsor_inputs,
)
from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs


@dataclass(frozen=True)
class SolverEntry:
    """How to drive one named solver end to end."""

    name: str
    #: (node, shape, eps=..., max_iterations=..., omega=...) -> setup
    build: Callable[..., Any]
    #: (machine, setup, u0, f) -> None
    load: Callable[..., None]
    #: setup attribute naming the convergence-monitor pipeline
    watch_attr: str
    #: forces omega when set (red-black Gauss-Seidel is SOR at 1.0)
    fixed_omega: Optional[float] = None

    def build_setup(self, node, shape: Tuple[int, int, int], eps: float,
                    max_iterations: int, omega: float) -> Any:
        if self.fixed_omega is not None:
            omega = self.fixed_omega
        if self.name == "jacobi":
            return self.build(node, shape, eps=eps,
                              max_iterations=max_iterations)
        return self.build(node, shape, omega=omega, eps=eps,
                          max_iterations=max_iterations)

    def watch_pipeline(self, setup: Any) -> int:
        return getattr(setup, self.watch_attr)


SOLVERS: Dict[str, SolverEntry] = {
    "jacobi": SolverEntry(
        name="jacobi",
        build=build_jacobi_program,
        load=load_jacobi_inputs,
        watch_attr="update_pipeline",
    ),
    "rb-gs": SolverEntry(
        name="rb-gs",
        build=build_rbsor_program,
        load=load_rbsor_inputs,
        watch_attr="black_pipeline",
        fixed_omega=1.0,
    ),
    "rb-sor": SolverEntry(
        name="rb-sor",
        build=build_rbsor_program,
        load=load_rbsor_inputs,
        watch_attr="black_pipeline",
    ),
}


__all__ = ["SolverEntry", "SOLVERS"]
