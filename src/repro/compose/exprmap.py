"""Expression-graph mapping: arithmetic expressions onto ALS pipelines.

Paper §3 identifies "mapping function units onto expression graphs" —
complicated by the singlet/doublet/triplet asymmetry — as a core compiler
difficulty, and §6 wonders about higher-level front ends.  This module is a
small such front end: an expression tree is mapped bottom-up onto functional
units through the :class:`~repro.compose.builders.PipelineBuilder`, with
common-subexpression reuse so shared subtrees occupy one unit.

It is also the engine behind the property-based tests: random expression
trees are mapped, checked, code-generated, simulated, and compared against
direct NumPy evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np

from repro.arch.funcunit import OPCODES, Opcode
from repro.compose.builders import Operand, PipelineBuilder

#: Binary opcodes usable in expressions (two stream operands).
BINARY_OPS = (
    Opcode.FADD,
    Opcode.FSUB,
    Opcode.FMUL,
    Opcode.MAX,
    Opcode.MIN,
)

#: Unary opcodes usable in expressions.
UNARY_OPS = (
    Opcode.FNEG,
    Opcode.FABS,
    Opcode.FSCALE,
    Opcode.FADDC,
)


class ExprError(Exception):
    """Malformed expression tree."""


@dataclass(frozen=True)
class Var:
    """A named input stream."""

    name: str


@dataclass(frozen=True)
class Const:
    """A literal, fed from a register-file constant."""

    value: float


@dataclass(frozen=True)
class BinOp:
    opcode: Opcode
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.opcode not in BINARY_OPS:
            raise ExprError(f"{self.opcode.value} is not a binary expression op")


@dataclass(frozen=True)
class UnOp:
    opcode: Opcode
    operand: "Expr"
    constant: float = 0.0  # for FSCALE / FADDC

    def __post_init__(self) -> None:
        if self.opcode not in UNARY_OPS:
            raise ExprError(f"{self.opcode.value} is not a unary expression op")


Expr = Union[Var, Const, BinOp, UnOp]


def expr_depth(expr: Expr) -> int:
    if isinstance(expr, (Var, Const)):
        return 0
    if isinstance(expr, UnOp):
        return 1 + expr_depth(expr.operand)
    return 1 + max(expr_depth(expr.left), expr_depth(expr.right))


def expr_fu_count(expr: Expr) -> int:
    """Units the mapped pipeline will use (with subtree sharing)."""
    seen: set[Expr] = set()

    def walk(e: Expr) -> None:
        if e in seen or isinstance(e, (Var, Const)):
            return
        seen.add(e)
        if isinstance(e, UnOp):
            walk(e.operand)
        else:
            walk(e.left)
            walk(e.right)

    walk(expr)
    return len(seen)


def map_expression(
    builder: PipelineBuilder,
    expr: Expr,
    inputs: Dict[str, Operand],
) -> Operand:
    """Map *expr* onto functional units; returns the root's operand handle.

    *inputs* supplies the stream source for every :class:`Var`.  Shared
    subtrees (by structural equality) map to a single unit.
    """
    cache: Dict[Expr, Operand] = {}

    def emit(e: Expr) -> Operand:
        if e in cache:
            return cache[e]
        out: Operand
        if isinstance(e, Var):
            try:
                out = inputs[e.name]
            except KeyError:
                raise ExprError(f"no input stream bound for variable {e.name!r}")
        elif isinstance(e, Const):
            out = builder.constant(e.value)
        elif isinstance(e, UnOp):
            child = emit(e.operand)
            if OPCODES[e.opcode].uses_constant:
                out = builder.apply(e.opcode, child, constant=e.constant)
            else:
                out = builder.apply(e.opcode, child)
        elif isinstance(e, BinOp):
            left = emit(e.left)
            right = emit(e.right)
            out = builder.apply(e.opcode, left, right)
        else:  # pragma: no cover - defensive
            raise ExprError(f"unknown expression node {e!r}")
        cache[e] = out
        return out

    return emit(expr)


def eval_expression(
    expr: Expr, env: Dict[str, np.ndarray]
) -> np.ndarray:
    """Reference NumPy evaluation with the same semantics as the pipeline."""
    if isinstance(expr, Var):
        return np.asarray(env[expr.name], dtype=np.float64)
    if isinstance(expr, Const):
        lengths = {np.asarray(v).size for v in env.values()}
        n = lengths.pop() if lengths else 1
        return np.full(n, expr.value, dtype=np.float64)
    if isinstance(expr, UnOp):
        child = eval_expression(expr.operand, env)
        info = OPCODES[expr.opcode]
        if info.uses_constant:
            return np.asarray(info.kernel(child, expr.constant), dtype=np.float64)
        return np.asarray(info.kernel(child), dtype=np.float64)
    if isinstance(expr, BinOp):
        left = eval_expression(expr.left, env)
        right = eval_expression(expr.right, env)
        return np.asarray(
            OPCODES[expr.opcode].kernel(left, right), dtype=np.float64
        )
    raise ExprError(f"unknown expression node {expr!r}")


__all__ = [
    "Expr",
    "Var",
    "Const",
    "BinOp",
    "UnOp",
    "ExprError",
    "BINARY_OPS",
    "UNARY_OPS",
    "map_expression",
    "eval_expression",
    "expr_depth",
    "expr_fu_count",
]
