"""The paper's running example: point Jacobi for the 3-D Poisson equation.

Paper §4, Eq. 1 (after Nosenchuck, Krist & Zang): each grid point is
replaced by the average of its six neighbours minus the scaled source term,

    u'[i,j,k] = (u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k]
                 + u[i,j,k-1] + u[i,j,k+1] - h^2 f[i,j,k]) / 6,

iterated "with a residual convergence check" — Fig. 2 is the hand-drawn
pipeline for this update and Fig. 11 the editor-drawn version.

Mapping onto the machine (one instruction, full-grid vector):

- the grid streams from its plane through a **shift/delay unit**, whose taps
  emit the six neighbour streams plus the centre (flattened-index shifts of
  ±1, ±nx, ±nx*ny);
- Dirichlet boundaries are enforced with mask streams (1 at interior
  points, 0 on the boundary) held in two **double-buffered caches**, so the
  masking units touch no second memory plane (the §3 one-plane rule);
- the residual max|u'-u| accumulates in a **min/max unit with a feedback
  loop** through its register file, and its final element drives the
  **condition interrupt** the sequencer's convergence loop watches;
- a **SwapVars** sequencer step exchanges ``u``/``u_new`` between
  iterations (the paper's relocate-between-phases device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.compose.builders import BuilderError, PipelineBuilder
from repro.diagram.program import (
    CacheSwap,
    ExecPipeline,
    Halt,
    LoopUntil,
    SwapVars,
    VisualProgram,
)


@dataclass(frozen=True)
class JacobiSetup:
    """Everything a host needs to load and run the Jacobi program."""

    program: VisualProgram
    shape: Tuple[int, int, int]
    h: float
    eps: float
    load_pipeline: int
    update_pipeline: int
    residual_fu: int
    mask_cache: int
    invmask_cache: int

    @property
    def n_points(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz


def jacobi_grid_index(i: int, j: int, k: int, shape: Tuple[int, int, int]) -> int:
    """Flattened word index of grid point (i, j, k); x varies fastest."""
    nx, ny, nz = shape
    if not (0 <= i < nx and 0 <= j < ny and 0 <= k < nz):
        raise IndexError(f"({i},{j},{k}) outside grid {shape}")
    return i + nx * (j + ny * k)


def grid_shape(shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Array shape of a flattened problem grid: ``(nz, ny, nx)``.

    Problem shapes are quoted ``(nx, ny, nz)`` throughout (the paper's
    convention), but the flattening order is x-fastest
    (:func:`jacobi_grid_index`: ``i + nx*(j + ny*k)``), so the NumPy
    view of a flat grid is z-major.  Every ``reshape`` of machine grid
    data must use this — on a cubic grid the two orders coincide, which
    is exactly how transposed-axis bugs hide until a non-cubic run.
    """
    nx, ny, nz = shape
    return (nz, ny, nx)


def build_jacobi_program(
    node: NodeConfig,
    shape: Tuple[int, int, int],
    h: Optional[float] = None,
    eps: float = 1e-6,
    max_iterations: int = 10_000,
    loop: bool = True,
) -> JacobiSetup:
    """Construct the complete visual program for Eq. 1 on an ``nx*ny*nz``
    grid.  With ``loop=False`` the control script runs the cache load and a
    single update (hosts that drive iterations themselves — e.g. the
    multi-node layer — use this)."""
    nx, ny, nz = shape
    if min(shape) < 3:
        raise BuilderError("Jacobi needs at least 3 points per dimension")
    n = nx * ny * nz
    if h is None:
        h = 1.0 / (max(shape) - 1)
    params = node.params
    if n > params.cache_buffer_words:
        raise BuilderError(
            f"grid of {n} points exceeds the cache buffer "
            f"({params.cache_buffer_words} words); raise cache_buffer_words "
            f"or shrink the grid"
        )
    if params.n_memory_planes < 5:
        raise BuilderError("Jacobi layout needs at least 5 memory planes")
    if params.shift_delay_taps < 7:
        raise BuilderError("Jacobi needs a shift/delay unit with 7 taps")

    prog = VisualProgram(name=f"jacobi3d-{nx}x{ny}x{nz}")
    prog.declare("u", plane=0, length=n, initializer="user")
    prog.declare("f", plane=1, length=n, initializer="user")
    prog.declare("mask", plane=2, length=n, initializer="interior-mask")
    prog.declare("invmask", plane=3, length=n, initializer="boundary-mask")
    prog.declare("u_new", plane=4, length=n)

    # -- pipeline 0: stream the masks from their planes into caches --------
    b0 = PipelineBuilder(node, prog, label="load mask caches", vector_length=n)
    mask_src = b0.read_var("mask")
    inv_src = b0.read_var("invmask")
    b0.write_cache(mask_src, cache=0, count=n)
    b0.write_cache(inv_src, cache=1, count=n)
    b0.build()

    # -- pipeline 1: the Eq. 1 update with residual reduction --------------
    b = PipelineBuilder(node, prog, label="point Jacobi update", vector_length=n)
    u_src = b.read_var("u")
    taps = b.through_sd(
        u_src, shifts=[0, +1, -1, +nx, -nx, +nx * ny, -(nx * ny)]
    )
    u0, xp, xm, yp, ym, zp, zm = taps
    f_src = b.read_var("f")
    mask_c = b.read_cache(0, count=n)
    inv_c = b.read_cache(1, count=n)

    n1 = b.apply(Opcode.FADD, xp, xm)
    n2 = b.apply(Opcode.FADD, yp, ym)
    n3 = b.apply(Opcode.FADD, zp, zm)
    s1 = b.apply(Opcode.FADD, n1, n2)
    s2 = b.apply(Opcode.FADD, s1, n3)
    fh2 = b.apply(Opcode.FSCALE, f_src, constant=h * h)
    s3 = b.apply(Opcode.FSUB, s2, fh2)
    u_prime = b.apply(Opcode.FSCALE, s3, constant=1.0 / 6.0)
    m1 = b.apply(Opcode.FMUL, u_prime, mask_c)
    m2 = b.apply(Opcode.FMUL, u0, inv_c)
    out = b.apply(Opcode.FADD, m1, m2)
    diff = b.apply(Opcode.FSUB, out, u0)
    resid = b.apply(Opcode.MAXABS, diff, b.feedback(0.0))

    b.write_var(out, "u_new")
    b.condition(resid, comparison="lt", threshold=eps)
    b.build()

    # the load pipeline fills the caches' back buffers; the swap exposes
    # them to the update pipeline (the double-buffer protocol of §2)
    prog.add_control(ExecPipeline(0))
    prog.add_control(CacheSwap(caches=(0, 1)))
    if loop:
        prog.add_control(
            LoopUntil(
                body=(ExecPipeline(1), SwapVars("u", "u_new")),
                condition_pipeline=1,
                max_iterations=max_iterations,
            )
        )
        prog.add_control(Halt())
    else:
        prog.add_control(ExecPipeline(1))
        prog.add_control(SwapVars("u", "u_new"))
        prog.add_control(Halt())

    return JacobiSetup(
        program=prog,
        shape=shape,
        h=h,
        eps=eps,
        load_pipeline=0,
        update_pipeline=1,
        residual_fu=resid.fu,
        mask_cache=0,
        invmask_cache=1,
    )


def interior_masks(shape: Tuple[int, int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """(mask, invmask) flattened arrays: 1/0 at interior, 0/1 on boundary."""
    nx, ny, nz = shape
    mask = np.zeros((nz, ny, nx), dtype=np.float64)
    mask[1:-1, 1:-1, 1:-1] = 1.0
    flat = mask.reshape(-1)  # z-major matches i + nx*(j + ny*k) ordering
    return flat, 1.0 - flat


def load_jacobi_inputs(
    machine,
    setup: JacobiSetup,
    u0: np.ndarray,
    f: np.ndarray,
) -> None:
    """Write the initial guess, source term, and masks into plane memory.

    ``u0`` and ``f`` may be 3-D ``(nz, ny, nx)`` arrays or flattened; the
    flattening convention matches :func:`jacobi_grid_index`.
    """
    n = setup.n_points
    u_flat = np.asarray(u0, dtype=np.float64).reshape(-1)
    f_flat = np.asarray(f, dtype=np.float64).reshape(-1)
    if u_flat.size != n or f_flat.size != n:
        raise ValueError(
            f"grid arrays must have {n} points, got {u_flat.size} and {f_flat.size}"
        )
    mask, invmask = interior_masks(setup.shape)
    machine.set_variable("u", u_flat)
    machine.set_variable("f", f_flat)
    machine.set_variable("mask", mask)
    machine.set_variable("invmask", invmask)
    machine.set_variable("u_new", np.zeros(n))


__all__ = [
    "JacobiSetup",
    "build_jacobi_program",
    "grid_shape",
    "jacobi_grid_index",
    "interior_masks",
    "load_jacobi_inputs",
]
