"""Further iterative solvers for the NSC: red-black Gauss-Seidel and SOR.

The paper's Jacobi walk-through comes from the NSC multigrid work
(Nosenchuck, Krist & Zang, the paper's ref. [6]); production CFD codes of
the era used stronger smoothers.  These builders show how the visual
environment expresses *multi-phase* methods: one pipeline per colour phase,
reconfigured between phases under sequencer control — exactly the "pipeline
configurations may be rapidly modified under program control as the
computation proceeds through different phases" behaviour of §2.

Red-black SOR over the 7-point Poisson stencil:

    phase A:  u <- u + omega * red_mask   * (jacobi(u) - u)
    phase B:  u <- u + omega * black_mask * (jacobi(u) - u)

``omega = 1`` is red-black Gauss-Seidel; ``1 < omega < 2`` over-relaxes.
Each phase streams the whole grid but masks its colour, so both phases fit
the same resource budget as the plain Jacobi pipeline; the double-buffered
``u``/``u_new`` swap realizes the in-place colour update.

The convergence monitor watches the black phase's update norm; for this
splitting the black update bounds the sweep's update, so the loop
terminates within one sweep of the true criterion (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.compose.builders import BuilderError, PipelineBuilder
from repro.compose.jacobi import interior_masks
from repro.diagram.program import (
    CacheSwap,
    ExecPipeline,
    Halt,
    LoopUntil,
    Repeat,
    SwapVars,
    VisualProgram,
)


@dataclass(frozen=True)
class RBSORSetup:
    """Host handle for a red-black SOR program."""

    program: VisualProgram
    shape: Tuple[int, int, int]
    h: float
    eps: float
    omega: float
    load_pipeline: int
    red_pipeline: int
    black_pipeline: int

    @property
    def n_points(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz


def color_masks(
    shape: Tuple[int, int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """(red, black) interior masks: colour by parity of i+j+k."""
    nx, ny, nz = shape
    interior, _ = interior_masks(shape)
    k, j, i = np.meshgrid(
        np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
    )
    red = (((i + j + k) % 2) == 0).astype(np.float64).reshape(-1) * interior
    black = interior - red
    return red, black


def _phase_pipeline(
    node: NodeConfig,
    prog: VisualProgram,
    label: str,
    shape: Tuple[int, int, int],
    h: float,
    omega: float,
    mask_cache: int,
    eps: Optional[float],
) -> int:
    """One colour phase: u_new = u + omega*mask*(jacobi(u) - u)."""
    nx, ny, nz = shape
    n = nx * ny * nz
    b = PipelineBuilder(node, prog, label=label, vector_length=n)
    u = b.read_var("u")
    taps = b.through_sd(u, shifts=[0, +1, -1, +nx, -nx, +nx * ny, -(nx * ny)])
    u0, xp, xm, yp, ym, zp, zm = taps
    f_src = b.read_var("f")
    mask_c = b.read_cache(mask_cache, count=n)

    n1 = b.apply(Opcode.FADD, xp, xm)
    n2 = b.apply(Opcode.FADD, yp, ym)
    n3 = b.apply(Opcode.FADD, zp, zm)
    s1 = b.apply(Opcode.FADD, n1, n2)
    s2 = b.apply(Opcode.FADD, s1, n3)
    fh2 = b.apply(Opcode.FSCALE, f_src, constant=h * h)
    s3 = b.apply(Opcode.FSUB, s2, fh2)
    jac = b.apply(Opcode.FSCALE, s3, constant=1.0 / 6.0)
    delta = b.apply(Opcode.FSUB, jac, u0)
    relaxed = b.apply(Opcode.FSCALE, delta, constant=omega)
    masked = b.apply(Opcode.FMUL, relaxed, mask_c)
    # stage u through a PASS unit so the adder (which writes the output
    # plane) does not also read the input plane (§3 one-plane rule)
    kept = b.apply(Opcode.PASS, u0)
    out = b.apply(Opcode.FADD, kept, masked)
    resid = b.apply(Opcode.MAXABS, masked, b.feedback(0.0))

    b.write_var(out, "u_new")
    if eps is not None:
        b.condition(resid, comparison="lt", threshold=eps)
    diagram = b.build()
    return diagram.number


def build_rbsor_program(
    node: NodeConfig,
    shape: Tuple[int, int, int],
    omega: float = 1.0,
    h: Optional[float] = None,
    eps: float = 1e-6,
    max_iterations: int = 10_000,
    fixed_sweeps: Optional[int] = None,
) -> RBSORSetup:
    """Red-black SOR; ``fixed_sweeps`` trades the convergence loop for a
    fixed Repeat (used by convergence-rate comparisons)."""
    nx, ny, nz = shape
    if min(shape) < 3:
        raise BuilderError("red-black SOR needs at least 3 points per axis")
    if not (0.0 < omega < 2.0):
        raise BuilderError(f"omega={omega} outside the convergent range (0, 2)")
    n = nx * ny * nz
    if h is None:
        h = 1.0 / (max(shape) - 1)
    if n > node.params.cache_buffer_words:
        raise BuilderError(
            f"grid of {n} points exceeds the cache buffer "
            f"({node.params.cache_buffer_words} words)"
        )

    prog = VisualProgram(name=f"rbsor-{omega:g}-{nx}x{ny}x{nz}")
    prog.declare("u", plane=0, length=n, initializer="user")
    prog.declare("f", plane=1, length=n, initializer="user")
    prog.declare("red", plane=2, length=n, initializer="red-mask")
    prog.declare("black", plane=3, length=n, initializer="black-mask")
    prog.declare("u_new", plane=4, length=n)

    b0 = PipelineBuilder(node, prog, label="load colour caches", vector_length=n)
    red_src = b0.read_var("red")
    black_src = b0.read_var("black")
    b0.write_cache(red_src, cache=0, count=n)
    b0.write_cache(black_src, cache=1, count=n)
    b0.build()

    red_idx = _phase_pipeline(
        node, prog, "red phase", shape, h, omega, mask_cache=0, eps=eps
    )
    black_idx = _phase_pipeline(
        node, prog, "black phase", shape, h, omega, mask_cache=1, eps=eps
    )

    sweep = (
        ExecPipeline(red_idx),
        SwapVars("u", "u_new"),
        ExecPipeline(black_idx),
        SwapVars("u", "u_new"),
    )
    prog.add_control(ExecPipeline(0))
    prog.add_control(CacheSwap(caches=(0, 1)))
    if fixed_sweeps is not None:
        prog.add_control(Repeat(body=sweep, times=fixed_sweeps))
    else:
        prog.add_control(
            LoopUntil(
                body=sweep,
                condition_pipeline=black_idx,
                max_iterations=max_iterations,
            )
        )
    prog.add_control(Halt())
    return RBSORSetup(
        program=prog,
        shape=shape,
        h=h,
        eps=eps,
        omega=omega,
        load_pipeline=0,
        red_pipeline=red_idx,
        black_pipeline=black_idx,
    )


def load_rbsor_inputs(machine, setup: RBSORSetup, u0, f) -> None:
    """Write the initial guess, source term and colour masks."""
    n = setup.n_points
    u_flat = np.asarray(u0, dtype=np.float64).reshape(-1)
    f_flat = np.asarray(f, dtype=np.float64).reshape(-1)
    if u_flat.size != n or f_flat.size != n:
        raise ValueError(f"grid arrays must have {n} points")
    red, black = color_masks(setup.shape)
    machine.set_variable("u", u_flat)
    machine.set_variable("f", f_flat)
    machine.set_variable("red", red)
    machine.set_variable("black", black)
    machine.set_variable("u_new", np.zeros(n))


def rbsor_reference_run(
    u0: np.ndarray,
    f: np.ndarray,
    shape: Tuple[int, int, int],
    h: float,
    omega: float = 1.0,
    eps: float = 1e-6,
    max_iterations: int = 10_000,
):
    """Machine-order NumPy reference for the two-phase sweep.

    Returns ``(u, sweeps, history)`` with one history entry per sweep (the
    black phase's update norm, matching the machine's monitor).
    """
    from repro.arch.shift_delay import shift_stream

    nx, ny, _nz = shape
    red, black = color_masks(shape)
    u = np.asarray(u0, dtype=np.float64).reshape(-1).copy()
    f = np.asarray(f, dtype=np.float64).reshape(-1)
    history = []

    def phase(u, mask):
        xp = shift_stream(u, +1)
        xm = shift_stream(u, -1)
        yp = shift_stream(u, +nx)
        ym = shift_stream(u, -nx)
        zp = shift_stream(u, +nx * ny)
        zm = shift_stream(u, -(nx * ny))
        s2 = ((xp + xm) + (yp + ym)) + (zp + zm)
        jac = (s2 - f * (h * h)) * (1.0 / 6.0)
        masked = ((jac - u) * omega) * mask
        return u + masked, float(np.max(np.abs(masked)))

    for sweep in range(1, max_iterations + 1):
        u, _red_norm = phase(u, red)
        u, black_norm = phase(u, black)
        history.append(black_norm)
        if black_norm < eps:
            return u, sweep, history
    return u, max_iterations, history


__all__ = [
    "RBSORSetup",
    "build_rbsor_program",
    "load_rbsor_inputs",
    "rbsor_reference_run",
    "color_masks",
]
