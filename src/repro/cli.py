"""Command-line interface: ``nsc-vpe``.

Subcommands mirror the toolchain:

- ``info``       — the machine inventory (Fig. 1 as text)
- ``icons``      — the ALS icon catalog (Fig. 4)
- ``check``      — validate a saved visual program
- ``analyze``    — static dataflow/hazard analysis of compiled microcode
- ``disasm``     — generate microcode and print the textual disassembly
- ``render``     — render a pipeline diagram from a saved program
- ``jacobi``     — build, run, and report the paper's Eq. 1 example
- ``solve``      — run jacobi / rb-gs / rb-sor on a Poisson problem
- ``batch``      — run a JSON file of simulation jobs through the service
- ``sweep``      — expand a parameter sweep into a job batch and run it
- ``bench``      — compare the reference and fast execution backends
- ``stats``      — aggregate telemetry from a result store or history
- ``serve``      — host the service as a resident HTTP daemon

Programs are the JSON files written by
:func:`repro.diagram.serialize.save` or :meth:`EditorSession.save`.

``--subset`` (target the §6 architectural-subset machine) is accepted
uniformly: either before the subcommand (``nsc-vpe --subset info``) or
after it (``nsc-vpe info --subset``).  Machine-running commands resolve
it through the shared :func:`_node` helper; for ``batch`` it sets the
default for jobs that do not specify ``subset`` themselves, and for
``sweep`` it selects the subset machine axis.  ``bench`` is the one
exception: its scenarios are fixed full-machine workloads, so it rejects
``--subset`` rather than silently ignoring it.

``--backend {reference,fast}`` on the executing commands (``jacobi``,
``solve``, ``batch``, ``sweep``) selects the execution backend; results
are bit-identical either way (``nsc-vpe bench`` proves it and measures
the speedup — see ``docs/BACKENDS.md`` for the full matrix).

``batch`` and ``sweep`` additionally take ``--workers``, ``--timeout``,
``--cache-dir``, ``--results``, ``--transport {pickle,shm}`` (how grids
move between parent and workers on parallel runs — ``shm`` is the
zero-copy shared-memory path), ``--run-checker {auto,always,never}``
(when the design-rule checker runs at compile time; ``auto`` skips it
for fingerprint-verified cache-warmed programs) and ``--batch-fusion
{off,auto}`` (``auto`` runs fusable same-program jobs as one stacked
batch-fused slab on serial runs — see ``docs/BACKENDS.md``).  ``sweep``
also takes ``--seeds`` to add a seeded-initial-guess axis.

The reliability knobs (``docs/RELIABILITY.md``): ``--max-attempts`` and
``--backoff-base`` give every job a deterministic retry budget for
transient failures (timeouts, dead workers, shm attach races), and
``--resume`` (requires ``--results``) skips jobs the store already
holds a success record for, so an interrupted sweep picks up where it
stopped and converges to the uninterrupted store, byte for byte.
``docs/SERVICE.md`` is the cookbook.

``serve`` keeps all of the above resident: one daemon process holds the
warm program/plan caches (and, for ``--transport shm``, a persistent
arena) across requests, so repeat batches skip recompilation entirely.
``batch`` and ``sweep`` gain ``--server URL`` to submit to a daemon
instead of executing locally — same records, same summary line, and
(when the daemon runs with ``--results``) a digest-compatible store.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.arch.node import NodeConfig
from repro.arch.params import NSCParameters, SUBSET_PARAMS


def _node(args: argparse.Namespace) -> NodeConfig:
    return NodeConfig(SUBSET_PARAMS if getattr(args, "subset", False) else
                      NSCParameters())


def _load_program(path: str):
    from repro.diagram import serialize

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    # accept both bare programs and editor-session saves
    if "program" in payload and "format" not in payload:
        return serialize.program_from_dict(payload["program"])
    return serialize.program_from_dict(payload)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.editor.render_ascii import render_datapath

    node = _node(args)
    print(render_datapath(node))
    print(f"\nregister file: {node.params.regfile_words} words/unit; "
          f"switch fan-out limit {node.params.switch_max_fanout}; "
          f"hypercube dimension {node.params.hypercube_dim} "
          f"({node.params.n_nodes} nodes, "
          f"{node.params.peak_gflops_system:.1f} GFLOPS system peak)")
    return 0


def cmd_icons(args: argparse.Namespace) -> int:
    from repro.editor.render_ascii import render_icon_catalog

    print(render_icon_catalog())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.checker.checker import Checker

    node = _node(args)
    program = _load_program(args.program)
    report = Checker(node).check_program(program)
    print(report.format())
    return 0 if report.ok else 1


def _registry_programs(node: NodeConfig):
    """Compiled (name, MachineProgram) pairs for the analyze/bench corpus:
    every registry solver at the standard quick and full bench shapes."""
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.registry import SOLVERS

    generator = MicrocodeGenerator(node, run_checker=False)
    for entry in SOLVERS.values():
        for n in (7, 9):
            setup = entry.build_setup(
                node, (n, n, n), eps=1e-4, max_iterations=100, omega=1.5
            )
            yield f"{entry.name}-{n}", generator.generate(setup.program)


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_program, severity_rank
    from repro.codegen.generator import MicrocodeGenerator

    node = _node(args)
    if args.registry == (args.program is not None):
        print("error: give a program file or --registry (not both)",
              file=sys.stderr)
        return 2
    if args.registry:
        targets = list(_registry_programs(node))
    else:
        generator = MicrocodeGenerator(node, run_checker=False)
        machine_program = generator.generate(_load_program(args.program))
        targets = [(machine_program.name, machine_program)]

    verdicts = [(name, analyze_program(program))
                for name, program in targets]
    if args.json:
        print(json.dumps(
            [dict(verdict.to_dict(), target=name)
             for name, verdict in verdicts],
            indent=2, sort_keys=True,
        ))
    else:
        for name, verdict in verdicts:
            print(verdict.format())
    if args.fail_on == "never":
        return 0
    floor = severity_rank(args.fail_on)
    failed = any(
        severity_rank(f.severity) >= floor
        for _name, verdict in verdicts
        for f in verdict.findings
    )
    return 1 if failed else 0


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.codegen.asmtext import disassemble_program
    from repro.codegen.generator import MicrocodeGenerator

    node = _node(args)
    program = _load_program(args.program)
    machine_program = MicrocodeGenerator(node).generate(program)
    print(disassemble_program(machine_program))
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.editor.render_ascii import render_pipeline_diagram
    from repro.editor.render_svg import render_pipeline_svg

    program = _load_program(args.program)
    if not (0 <= args.pipeline < len(program.pipelines)):
        print(f"error: program has {len(program.pipelines)} pipelines",
              file=sys.stderr)
        return 1
    diagram = program.pipelines[args.pipeline]
    if args.svg:
        print(render_pipeline_svg(diagram))
    else:
        print(render_pipeline_diagram(diagram))
    return 0


def cmd_jacobi(args: argparse.Namespace) -> int:
    from repro.apps.poisson3d import manufactured_solution
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.jacobi import (
        build_jacobi_program,
        grid_shape,
        load_jacobi_inputs,
    )
    from repro.sim.machine import NSCMachine

    node = _node(args)
    shape = (args.n, args.n, args.n)
    setup = build_jacobi_program(node, shape, eps=args.eps,
                                 max_iterations=args.max_sweeps)
    program = MicrocodeGenerator(node).generate(setup.program)
    u_star, f, h = manufactured_solution(shape, h=setup.h)
    machine = NSCMachine(node, backend=args.backend)
    machine.load_program(program)
    load_jacobi_inputs(machine, setup, np.zeros(shape), f)
    result = machine.run()
    metrics = machine.metrics(result)
    # machine grids flatten x-fastest: the 3-D view is (nz, ny, nx),
    # the layout manufactured_solution returns
    u = machine.get_variable("u").reshape(grid_shape(shape))
    print(f"converged: {result.converged} in "
          f"{result.loop_iterations.get(setup.update_pipeline, 0)} sweeps")
    print(f"error vs analytic solution: "
          f"{float(np.max(np.abs(u - u_star))):.3e}")
    print(metrics.format())
    return 0 if result.converged else 1


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.apps.poisson3d import manufactured_solution
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.iterative import (
        build_rbsor_program,
        load_rbsor_inputs,
    )
    from repro.compose.jacobi import (
        build_jacobi_program,
        grid_shape,
        load_jacobi_inputs,
    )
    from repro.sim.machine import NSCMachine

    node = _node(args)
    shape = (args.n, args.n, args.n)
    u_star, f, h = manufactured_solution(shape)
    machine = NSCMachine(node, backend=args.backend)
    if args.method == "jacobi":
        setup = build_jacobi_program(node, shape, h=h, eps=args.eps,
                                     max_iterations=args.max_sweeps)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        load_jacobi_inputs(machine, setup, np.zeros(shape), f)
        watch = setup.update_pipeline
    else:
        omega = 1.0 if args.method == "rb-gs" else args.omega
        setup = build_rbsor_program(node, shape, omega=omega, h=h,
                                    eps=args.eps,
                                    max_iterations=args.max_sweeps)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        load_rbsor_inputs(machine, setup, np.zeros(shape), f)
        watch = setup.black_pipeline
    result = machine.run()
    u = machine.get_variable("u").reshape(grid_shape(shape))
    print(f"{args.method}: converged={result.converged} "
          f"sweeps={result.loop_iterations.get(watch, 0)} "
          f"cycles={result.total_cycles} "
          f"err={float(np.max(np.abs(u - u_star))):.3e}")
    return 0 if result.converged else 1


def _parse_int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _parse_str_list(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.service.jobs import JobSpecError, SimJob
    from repro.service.results import ResultStore
    from repro.service.runner import BatchRunner

    try:
        with open(args.jobs, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read jobs file: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: jobs file is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if isinstance(payload, dict):
        if "jobs" not in payload:
            print('error: jobs file object must have a "jobs" list',
                  file=sys.stderr)
            return 2
        specs = payload["jobs"]
    else:
        specs = payload
    if not isinstance(specs, list):
        print("error: jobs file must be a list of job specs",
              file=sys.stderr)
        return 2
    jobs = []
    try:
        for spec in specs:
            spec = dict(spec)
            if getattr(args, "subset", False):
                spec.setdefault("subset", True)
            spec.setdefault("backend", args.backend)
            spec.setdefault("run_checker", args.run_checker)
            jobs.append(SimJob.from_dict(spec))
    except (JobSpecError, TypeError, ValueError) as exc:
        print(f"error: bad job spec: {exc}", file=sys.stderr)
        return 2
    if args.server:
        return _run_via_server(args, [job.to_dict() for job in jobs])
    if args.resume and not args.results:
        print("error: --resume needs --results (the store to resume "
              "from)", file=sys.stderr)
        return 2
    store = ResultStore(args.results) if args.results else None
    runner = BatchRunner(workers=args.workers, timeout=args.timeout,
                         cache_dir=args.cache_dir, store=store,
                         transport=args.transport,
                         batch_fusion=args.batch_fusion,
                         retry=_retry_policy(args), resume=args.resume)
    records, summary = runner.run(jobs)
    _print_batch(records, summary)
    return 0 if summary.failed == 0 else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.service.jobs import JobSpecError
    from repro.service.results import ResultStore
    from repro.service.runner import BatchRunner
    from repro.service.sweep import SweepSpec

    subset_axis: tuple
    if args.include_subset:
        subset_axis = (False, True)
    elif getattr(args, "subset", False):
        subset_axis = (True,)
    else:
        subset_axis = (False,)
    try:
        spec = SweepSpec(
            grids=tuple(_parse_int_list(args.grids)),
            methods=tuple(_parse_str_list(args.methods)),
            dims=tuple(_parse_int_list(args.dims)),
            subset=subset_axis,
            seeds=tuple(_parse_int_list(args.seeds)) if args.seeds else (),
            eps=args.eps,
            max_sweeps=args.max_sweeps,
            omega=args.omega,
            repeats=args.repeats,
            backend=args.backend,
            run_checker=args.run_checker,
            batch_fusion=args.batch_fusion,
            max_attempts=args.max_attempts,
            backoff_base=args.backoff_base,
        )
    except (JobSpecError, ValueError) as exc:
        print(f"error: bad sweep axes: {exc}", file=sys.stderr)
        return 2
    if args.resume and not args.results and not args.server:
        print("error: --resume needs --results (the store to resume "
              "from)", file=sys.stderr)
        return 2
    print(f"sweep: {spec.describe()}")
    jobs = spec.expand()
    if args.server:
        return _run_via_server(args, [job.to_dict() for job in jobs])
    store = ResultStore(args.results) if args.results else None
    runner = BatchRunner(workers=args.workers, timeout=args.timeout,
                         cache_dir=args.cache_dir, store=store,
                         transport=args.transport,
                         batch_fusion=spec.batch_fusion,
                         resume=args.resume)
    records, summary = runner.run(jobs)
    _print_batch(records, summary)
    return 0 if summary.failed == 0 else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        SCENARIOS,
        BenchError,
        compare_records,
        format_comparison,
        format_record,
        load_baseline,
        run_scenario,
        write_baseline,
        write_comparison,
        write_record,
    )

    if getattr(args, "subset", False):
        # scenario configurations are fixed full-machine workloads; a
        # silently ignored --subset would misrepresent the results
        print("error: bench scenarios target the full machine; "
              "--subset is not supported", file=sys.stderr)
        return 2
    names = (_parse_str_list(args.scenarios) if args.scenarios
             else list(SCENARIOS))
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"error: unknown scenario(s) {', '.join(unknown)}; "
              f"expected from {', '.join(SCENARIOS)}", file=sys.stderr)
        return 2
    if args.compare:
        try:
            baseline = load_baseline(args.compare)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    ok = True
    records = []
    for name in names:
        try:
            record = run_scenario(name, quick=args.quick)
        except BenchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        records.append(record)
        path = write_record(record, args.out)
        print(format_record(record))
        print(f"  -> {path}")
        if not record["ok"]:
            ok = False
        if args.min_speedup > 0 and "speedup" in record:
            # untimed scenarios (e.g. analysis_coverage) have no timing
            gated = {"speedup": record["speedup"]}
            if "speedup_vs_unfused" in record:
                gated["speedup_vs_unfused"] = record["speedup_vs_unfused"]
            for metric, value in gated.items():
                if value < args.min_speedup:
                    print(f"  {metric} {value:.1f}x below required "
                          f"{args.min_speedup:g}x", file=sys.stderr)
                    ok = False
    if args.save_baseline:
        base_path = write_baseline(records, args.save_baseline)
        print(f"baseline -> {base_path}")
    if args.compare:
        comparison = compare_records(records, baseline)
        out_path = write_comparison(comparison, args.out)
        print(format_comparison(comparison))
        print(f"  -> {out_path}")
        if not comparison["ok"]:
            ok = False
    if args.history:
        from repro.obs import (
            append_history,
            detect_alerts,
            format_alerts,
            load_history,
            write_alerts,
        )

        append_history(records, args.history)
        print(f"history -> {args.history}")
        alerts = detect_alerts(load_history(args.history))
        alerts_path = write_alerts(alerts, args.out)
        print(format_alerts(alerts))
        print(f"  -> {alerts_path}")
        if not alerts["ok"]:
            ok = False
    print("bench: all backends agree" if ok
          else "bench: FAILURES (see above)")
    return 0 if ok else 1


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import (
        aggregate_history,
        aggregate_records,
        format_history_stats,
        format_record_stats,
        load_history,
    )
    from repro.service.results import ResultStore

    if bool(args.results) == bool(args.history):
        print("error: give exactly one of --results or --history",
              file=sys.stderr)
        return 2
    if args.results:
        store = ResultStore(args.results)
        if not store.path.exists():
            print(f"error: no result store at {args.results}",
                  file=sys.stderr)
            return 2
        stats = aggregate_records(store.load())
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(format_record_stats(stats))
        return 0
    entries = load_history(args.history)
    summaries = aggregate_history(entries, window=args.window)
    if args.json:
        print(json.dumps(summaries, indent=2, sort_keys=True))
    else:
        print(format_history_stats(summaries))
    return 0


def _run_via_server(args: argparse.Namespace, specs: List[dict]) -> int:
    """Thin-client mode shared by ``batch``/``sweep --server URL``:
    submit the (already normalized) specs to a resident daemon, wait,
    and print the same per-record lines and summary an offline run
    would."""
    from repro.server.client import ServerError, ServiceClient
    from repro.service.runner import BatchSummary

    client = ServiceClient(args.server)
    try:
        result = client.run(jobs=specs, tag=getattr(args, "tag", "") or "",
                            resume=args.resume)
    except ServerError as exc:
        print(f"error: server refused the batch: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:  # URLError, ConnectionError: no daemon there
        print(f"error: cannot reach server {args.server}: {exc}",
              file=sys.stderr)
        return 2
    summary = BatchSummary(**result["summary"])
    _print_batch(result["records"], summary)
    return 0 if summary.failed == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.tracer import JsonlSink
    from repro.server.app import serve_forever
    from repro.server.events import EventBuffer
    from repro.server.rate_limiter import RateLimiter
    from repro.server.service import SimService

    downstream = JsonlSink(args.events_log) if args.events_log else None
    events = EventBuffer(maxlen=args.events_buffer, downstream=downstream)
    service = SimService(
        store_path=args.results,
        cache_dir=args.cache_dir,
        workers=args.workers,
        timeout=args.timeout,
        transport=args.transport,
        batch_fusion=args.batch_fusion,
        run_checker=args.run_checker,
        retry=_retry_policy(args),
        events=events,
        max_queued=args.max_queued,
    )
    limiter = RateLimiter(capacity=args.rate_capacity,
                          refill_rate=args.rate_refill)
    service.start()
    try:
        serve_forever(service, host=args.host, port=args.port,
                      limiter=limiter)
    finally:
        service.stop()
        if downstream is not None:
            downstream.close()
    print("serve: stopped")
    return 0


def _print_batch(records, summary) -> None:
    for r in records:
        if r.get("ok"):
            line = (f"  ok   {r['label']:<24} converged={r.get('converged')} "
                    f"sweeps={r.get('sweeps')} cycles={r.get('cycles')}")
        else:
            line = f"  FAIL {r['label']:<24} {r.get('error', '')}"
        if r.get("tier"):
            line += f"  tier={r['tier']}"
        if "cache_hit" in r:
            line += "  [cache hit]" if r["cache_hit"] else "  [compiled]"
        print(line)
    print(summary.format())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nsc-vpe",
        description="Visual programming environment for the Navier-Stokes "
        "Computer (ICPP 1988 reproduction)",
    )
    parser.add_argument(
        "--subset",
        action="store_true",
        help="target the §6 architectural-subset machine",
    )
    # every subcommand also accepts --subset after its name; SUPPRESS keeps
    # the subparser from clobbering a --subset given before the subcommand
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--subset",
        action="store_true",
        default=argparse.SUPPRESS,
        help="target the §6 architectural-subset machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="machine inventory (Fig. 1)",
                   parents=[common])
    sub.add_parser("icons", help="ALS icon catalog (Fig. 4)",
                   parents=[common])

    p = sub.add_parser("check", help="validate a saved program",
                       parents=[common])
    p.add_argument("program", help="path to a saved .json program")

    p = sub.add_parser(
        "analyze",
        help="static dataflow/hazard analysis of compiled microcode",
        parents=[common],
    )
    p.add_argument("program", nargs="?", default=None,
                   help="path to a saved .json program (omit with "
                   "--registry)")
    p.add_argument("--registry", action="store_true",
                   help="analyze every registry solver program instead of "
                   "a file (jacobi, rb-gs, rb-sor at the standard bench "
                   "shapes)")
    p.add_argument("--json", action="store_true",
                   help="emit verdicts as a JSON array instead of text")
    p.add_argument("--fail-on", choices=("error", "warning", "info",
                                         "never"),
                   default="error", dest="fail_on",
                   help="exit non-zero when any finding reaches this "
                   "severity (default error; 'never' always exits 0)")

    p = sub.add_parser("disasm", help="microcode disassembly of a program",
                       parents=[common])
    p.add_argument("program")

    p = sub.add_parser("render", help="render a pipeline diagram",
                       parents=[common])
    p.add_argument("program")
    p.add_argument("--pipeline", type=int, default=0)
    p.add_argument("--svg", action="store_true")

    p = sub.add_parser("jacobi", help="run the paper's Eq. 1 example",
                       parents=[common])
    p.add_argument("-n", type=int, default=9, help="grid points per axis")
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--max-sweeps", type=int, default=10_000)
    _add_backend_option(p)

    p = sub.add_parser("solve", help="run an iterative Poisson solver",
                       parents=[common])
    p.add_argument("method", choices=["jacobi", "rb-gs", "rb-sor"])
    p.add_argument("-n", type=int, default=9)
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--omega", type=float, default=1.5)
    p.add_argument("--max-sweeps", type=int, default=10_000)
    _add_backend_option(p)

    p = sub.add_parser(
        "batch",
        help="run a JSON jobs file through the simulation service",
        parents=[common],
    )
    p.add_argument("jobs", help="JSON file: a list of job specs (or "
                   '{"jobs": [...]})')
    _add_service_options(p)

    p = sub.add_parser(
        "sweep",
        help="expand a parameter sweep into jobs and run the batch",
        parents=[common],
    )
    p.add_argument("--grids", default="7,9",
                   help="comma-separated grid sizes (points per axis)")
    p.add_argument("--methods", default="jacobi,rb-gs",
                   help="comma-separated solvers (jacobi, rb-gs, rb-sor)")
    p.add_argument("--dims", default="0",
                   help="comma-separated hypercube dimensions (0 = one node)")
    p.add_argument("--include-subset", action="store_true",
                   help="sweep both the full and §6 subset machines")
    p.add_argument("--eps", type=float, default=1e-4)
    p.add_argument("--omega", type=float, default=1.5)
    p.add_argument("--max-sweeps", type=int, default=10_000)
    p.add_argument("--repeats", type=int, default=2,
                   help="run the whole grid this many times (repeats land "
                   "in the program cache)")
    p.add_argument("--seeds", default=None,
                   help="comma-separated u0 seeds: adds a seeded "
                   "initial-guess axis (same program, different "
                   "convergence trajectories — the slab shape "
                   "--batch-fusion auto groups)")
    _add_service_options(p)

    p = sub.add_parser(
        "bench",
        help="benchmark the execution backends against each other",
        parents=[common],
    )
    from repro.bench import SCENARIOS as _BENCH_SCENARIOS

    p.add_argument("--quick", action="store_true",
                   help="smaller problems / fewer sweeps (the CI smoke "
                   "configuration; batch_shm's quick run is a parity "
                   "check, not a perf claim)")
    p.add_argument("--scenarios", default=None,
                   help="comma-separated scenario names (default: run all "
                   f"of: {', '.join(_BENCH_SCENARIOS)})")
    p.add_argument("--out", default="benchmarks/perf/out",
                   help="directory for BENCH_<scenario>.json artifacts")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="fail unless every scenario reaches this speedup "
                   "(gates speedup_vs_unfused too where reported)")
    p.add_argument("--compare", default=None, metavar="BASELINE",
                   help="diff speedups against a baseline JSON and fail on "
                   ">20%% regression (writes BENCH_compare.json)")
    p.add_argument("--save-baseline", default=None, metavar="PATH",
                   help="write this run's speedups as a new baseline JSON")
    p.add_argument("--history", default=None, metavar="PATH",
                   help="append this run's per-scenario metrics to a JSONL "
                   "history file, then run the rolling-window alert "
                   "detector over it (writes BENCH_alerts.json; fires "
                   "fail the command)")

    p = sub.add_parser(
        "stats",
        help="aggregate telemetry from a result store or bench history",
        parents=[common],
    )
    p.add_argument("--results", default=None, metavar="JSONL",
                   help="result store written by batch/sweep --results: "
                   "report per-stage timings, tier mix, cache hits, and "
                   "the reliability picture (retries by reason, "
                   "resumed-vs-fresh mix, transport fallbacks)")
    p.add_argument("--history", default=None, metavar="JSONL",
                   help="bench history written by bench --history: report "
                   "per-scenario run counts and metric trends")
    p.add_argument("--window", type=int, default=5,
                   help="rolling window for history medians (default 5)")
    p.add_argument("--json", action="store_true",
                   help="emit the aggregate as JSON instead of text")

    p = sub.add_parser(
        "serve",
        help="host the simulation service as a resident HTTP daemon",
        parents=[common],
    )
    from repro.service.jobs import CHECKER_MODES as _CHECKER_MODES

    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8787,
                   help="bind port; 0 picks an ephemeral port and prints "
                   "it in the startup banner")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes per batch (1 = in-process "
                   "serial, which shares the daemon's warm cache)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds (forces the process "
                   "pool)")
    p.add_argument("--results", default=None, metavar="JSONL",
                   help="append every record to this store; enables "
                   "GET /runs and resume=true submissions")
    p.add_argument("--cache-dir", default=None,
                   help="disk layer under the daemon's warm program cache")
    p.add_argument("--transport", choices=("pickle", "shm"),
                   default="pickle",
                   help="payload transport for parallel batches; 'shm' "
                   "keeps one persistent arena for the daemon's "
                   "lifetime")
    p.add_argument("--run-checker", choices=_CHECKER_MODES, default=None,
                   dest="run_checker",
                   help="override every submitted job's checker mode "
                   "(default: honor each job's own setting)")
    p.add_argument("--batch-fusion", choices=("off", "auto"),
                   default="off", dest="batch_fusion",
                   help="slab-fuse fusable same-program jobs on serial "
                   "batches")
    p.add_argument("--max-attempts", type=int, default=1,
                   dest="max_attempts",
                   help="daemon-wide retry budget for transient job "
                   "failures (overrides per-job budgets when > 1)")
    p.add_argument("--backoff-base", type=float, default=0.0,
                   dest="backoff_base",
                   help="base delay for retry backoff (deterministic, "
                   "no jitter)")
    p.add_argument("--events-log", default=None, metavar="JSONL",
                   dest="events_log",
                   help="also append every event on the live stream to "
                   "this JSONL file (the durable telemetry artifact)")
    p.add_argument("--events-buffer", type=int, default=4096,
                   dest="events_buffer",
                   help="size of the in-memory event ring GET /events "
                   "serves; older events are dropped (and counted)")
    p.add_argument("--rate-capacity", type=float, default=60,
                   dest="rate_capacity",
                   help="token-bucket burst size per client")
    p.add_argument("--rate-refill", type=float, default=10.0,
                   dest="rate_refill",
                   help="token-bucket refill rate per client "
                   "(requests/second)")
    p.add_argument("--max-queued", type=int, default=256,
                   dest="max_queued",
                   help="refuse new submissions beyond this many "
                   "queued+running")
    return parser


def _add_backend_option(p: argparse.ArgumentParser) -> None:
    from repro.sim.fastpath import BACKENDS

    p.add_argument("--backend", choices=BACKENDS, default="reference",
                   help="execution backend (results are bit-identical; "
                   "'fast' is the vectorized path)")


def _retry_policy(args: argparse.Namespace):
    """A RetryPolicy when the CLI asked for retries, else None.

    None keeps per-job ``max_attempts`` / ``backoff_base`` authoritative
    (a runner-level policy overrides them for every job in the batch).
    """
    if args.max_attempts > 1 or args.backoff_base > 0:
        from repro.service.retry import RetryPolicy

        return RetryPolicy(max_attempts=args.max_attempts,
                           backoff_base=args.backoff_base)
    return None


def _add_service_options(p: argparse.ArgumentParser) -> None:
    from repro.service.jobs import CHECKER_MODES

    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process serial)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds")
    p.add_argument("--results", default=None,
                   help="append JSONL records to this file")
    p.add_argument("--cache-dir", default=None,
                   help="on-disk program cache shared across workers/runs "
                   "(also persists checker trust marks for --run-checker "
                   "auto)")
    p.add_argument("--transport", choices=("pickle", "shm"),
                   default="pickle",
                   help="how grids move between parent and workers on "
                   "parallel runs: classic pickling, or zero-copy "
                   "shared-memory segments (ignored when running "
                   "serially)")
    p.add_argument("--run-checker", choices=CHECKER_MODES, default="auto",
                   dest="run_checker",
                   help="when the design-rule checker runs at compile "
                   "time; 'auto' skips it for fingerprint-verified "
                   "cache-warmed programs")
    p.add_argument("--batch-fusion", choices=("off", "auto"),
                   default="off", dest="batch_fusion",
                   help="'auto' stacks fusable same-program jobs into "
                   "one batch-fused slab per group on serial runs "
                   "(records gain tier=batch_fused and slab_size); "
                   "anything unfusable falls back per job")
    p.add_argument("--max-attempts", type=int, default=1,
                   dest="max_attempts",
                   help="run each job up to this many times before its "
                   "failure is final; only transient failures "
                   "(timeouts, dead workers, shm attach races) are "
                   "retried — see docs/RELIABILITY.md")
    p.add_argument("--backoff-base", type=float, default=0.0,
                   dest="backoff_base",
                   help="base delay in seconds before retry rounds; "
                   "attempt k waits base * 2^(k-1) (deterministic, "
                   "no jitter)")
    p.add_argument("--resume", action="store_true",
                   help="skip jobs the --results store already holds a "
                   "success record for and rerun the rest; the "
                   "completed store matches an uninterrupted run "
                   "(with --server, resumes from the daemon's store)")
    p.add_argument("--server", default=None, metavar="URL",
                   help="submit to a resident 'nsc-vpe serve' daemon at "
                   "URL instead of executing locally; local execution "
                   "flags (--workers, --cache-dir, ...) are ignored — "
                   "the daemon's configuration governs")
    p.add_argument("--tag", default="",
                   help="submission tag for --server mode: identical "
                   "payloads with the same tag coalesce onto one "
                   "execution; send a fresh tag to run the same jobs "
                   "again (warm caches make the rerun cheap)")
    _add_backend_option(p)


_COMMANDS = {
    "info": cmd_info,
    "icons": cmd_icons,
    "check": cmd_check,
    "analyze": cmd_analyze,
    "disasm": cmd_disasm,
    "render": cmd_render,
    "jacobi": cmd_jacobi,
    "solve": cmd_solve,
    "batch": cmd_batch,
    "sweep": cmd_sweep,
    "bench": cmd_bench,
    "stats": cmd_stats,
    "serve": cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
