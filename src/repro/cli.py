"""Command-line interface: ``nsc-vpe``.

Subcommands mirror the toolchain:

- ``info``       — the machine inventory (Fig. 1 as text)
- ``icons``      — the ALS icon catalog (Fig. 4)
- ``check``      — validate a saved visual program
- ``disasm``     — generate microcode and print the textual disassembly
- ``render``     — render a pipeline diagram from a saved program
- ``jacobi``     — build, run, and report the paper's Eq. 1 example
- ``solve``      — run jacobi / rb-gs / rb-sor on a Poisson problem

Programs are the JSON files written by
:func:`repro.diagram.serialize.save` or :meth:`EditorSession.save`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.arch.node import NodeConfig
from repro.arch.params import NSCParameters, SUBSET_PARAMS


def _node(args: argparse.Namespace) -> NodeConfig:
    return NodeConfig(SUBSET_PARAMS if getattr(args, "subset", False) else
                      NSCParameters())


def _load_program(path: str):
    from repro.diagram import serialize

    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    # accept both bare programs and editor-session saves
    if "program" in payload and "format" not in payload:
        return serialize.program_from_dict(payload["program"])
    return serialize.program_from_dict(payload)


def cmd_info(args: argparse.Namespace) -> int:
    from repro.editor.render_ascii import render_datapath

    node = _node(args)
    print(render_datapath(node))
    inv = node.inventory()
    print(f"\nregister file: {node.params.regfile_words} words/unit; "
          f"switch fan-out limit {node.params.switch_max_fanout}; "
          f"hypercube dimension {node.params.hypercube_dim} "
          f"({node.params.n_nodes} nodes, "
          f"{node.params.peak_gflops_system:.1f} GFLOPS system peak)")
    return 0


def cmd_icons(args: argparse.Namespace) -> int:
    from repro.editor.render_ascii import render_icon_catalog

    print(render_icon_catalog())
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from repro.checker.checker import Checker

    node = _node(args)
    program = _load_program(args.program)
    report = Checker(node).check_program(program)
    print(report.format())
    return 0 if report.ok else 1


def cmd_disasm(args: argparse.Namespace) -> int:
    from repro.codegen.asmtext import disassemble_program
    from repro.codegen.generator import MicrocodeGenerator

    node = _node(args)
    program = _load_program(args.program)
    machine_program = MicrocodeGenerator(node).generate(program)
    print(disassemble_program(machine_program))
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.editor.render_ascii import render_pipeline_diagram
    from repro.editor.render_svg import render_pipeline_svg

    program = _load_program(args.program)
    if not (0 <= args.pipeline < len(program.pipelines)):
        print(f"error: program has {len(program.pipelines)} pipelines",
              file=sys.stderr)
        return 1
    diagram = program.pipelines[args.pipeline]
    if args.svg:
        print(render_pipeline_svg(diagram))
    else:
        print(render_pipeline_diagram(diagram))
    return 0


def cmd_jacobi(args: argparse.Namespace) -> int:
    from repro.apps.poisson3d import manufactured_solution
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
    from repro.sim.machine import NSCMachine

    node = _node(args)
    shape = (args.n, args.n, args.n)
    setup = build_jacobi_program(node, shape, eps=args.eps,
                                 max_iterations=args.max_sweeps)
    program = MicrocodeGenerator(node).generate(setup.program)
    u_star, f, h = manufactured_solution(shape, h=setup.h)
    machine = NSCMachine(node)
    machine.load_program(program)
    load_jacobi_inputs(machine, setup, np.zeros(shape), f)
    result = machine.run()
    metrics = machine.metrics(result)
    u = machine.get_variable("u").reshape(shape)
    print(f"converged: {result.converged} in "
          f"{result.loop_iterations.get(setup.update_pipeline, 0)} sweeps")
    print(f"error vs analytic solution: "
          f"{float(np.max(np.abs(u - u_star))):.3e}")
    print(metrics.format())
    return 0 if result.converged else 1


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.apps.poisson3d import manufactured_solution
    from repro.codegen.generator import MicrocodeGenerator
    from repro.compose.iterative import (
        build_rbsor_program,
        load_rbsor_inputs,
    )
    from repro.compose.jacobi import build_jacobi_program, load_jacobi_inputs
    from repro.sim.machine import NSCMachine

    node = _node(args)
    shape = (args.n, args.n, args.n)
    u_star, f, h = manufactured_solution(shape)
    machine = NSCMachine(node)
    if args.method == "jacobi":
        setup = build_jacobi_program(node, shape, h=h, eps=args.eps,
                                     max_iterations=args.max_sweeps)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        load_jacobi_inputs(machine, setup, np.zeros(shape), f)
        watch = setup.update_pipeline
    else:
        omega = 1.0 if args.method == "rb-gs" else args.omega
        setup = build_rbsor_program(node, shape, omega=omega, h=h,
                                    eps=args.eps,
                                    max_iterations=args.max_sweeps)
        machine.load_program(MicrocodeGenerator(node).generate(setup.program))
        load_rbsor_inputs(machine, setup, np.zeros(shape), f)
        watch = setup.black_pipeline
    result = machine.run()
    u = machine.get_variable("u").reshape(shape)
    print(f"{args.method}: converged={result.converged} "
          f"sweeps={result.loop_iterations.get(watch, 0)} "
          f"cycles={result.total_cycles} "
          f"err={float(np.max(np.abs(u - u_star))):.3e}")
    return 0 if result.converged else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nsc-vpe",
        description="Visual programming environment for the Navier-Stokes "
        "Computer (ICPP 1988 reproduction)",
    )
    parser.add_argument(
        "--subset",
        action="store_true",
        help="target the §6 architectural-subset machine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="machine inventory (Fig. 1)")
    sub.add_parser("icons", help="ALS icon catalog (Fig. 4)")

    p = sub.add_parser("check", help="validate a saved program")
    p.add_argument("program", help="path to a saved .json program")

    p = sub.add_parser("disasm", help="microcode disassembly of a program")
    p.add_argument("program")

    p = sub.add_parser("render", help="render a pipeline diagram")
    p.add_argument("program")
    p.add_argument("--pipeline", type=int, default=0)
    p.add_argument("--svg", action="store_true")

    p = sub.add_parser("jacobi", help="run the paper's Eq. 1 example")
    p.add_argument("-n", type=int, default=9, help="grid points per axis")
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--max-sweeps", type=int, default=10_000)

    p = sub.add_parser("solve", help="run an iterative Poisson solver")
    p.add_argument("method", choices=["jacobi", "rb-gs", "rb-sor"])
    p.add_argument("-n", type=int, default=9)
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--omega", type=float, default=1.5)
    p.add_argument("--max-sweeps", type=int, default=10_000)
    return parser


_COMMANDS = {
    "info": cmd_info,
    "icons": cmd_icons,
    "check": cmd_check,
    "disasm": cmd_disasm,
    "render": cmd_render,
    "jacobi": cmd_jacobi,
    "solve": cmd_solve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
