"""Constraint rules: "conflicts, constraints, asymmetries and other
restrictions in the NSC architecture" (§4).

Each rule inspects one pipeline diagram against the machine knowledge base
and reports diagnostics.  Rules are deliberately independent so the set can
evolve with the machine design; :data:`ALL_RULES` is the production set run
by :meth:`Checker.check_pipeline`.

Rules directly traceable to the paper:

- ``plane-single-fu`` — §3: "a function unit can read or write in only a
  single memory plane" per instruction;
- ``plane-one-writer`` — §4's worked example: "if the user has routed the
  output from one function unit to a particular memory plane, the graphical
  editor will not let him send the output of a second unit to the same
  plane";
- ``fu-capability`` — §3: only one unit per ALS has integer circuitry,
  another has min/max;
- ``regfile-capacity`` — §2/§5: constants and circular delay queues share
  the finite register file;
- ``dma-spec`` — Fig. 9: every memory/cache pad needs plane/address/stride
  details for its DMA controller.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.dma import DMASpecError, Direction
from repro.arch.funcunit import OPCODES
from repro.arch.switch import DeviceKind, Endpoint, fu_in, fu_out
from repro.checker.diagnostics import Diagnostic, error, warning
from repro.checker.knowledge import MachineKnowledge
from repro.diagram.pipeline import DiagramError, InputModKind, PipelineDiagram
from repro.diagram.program import Declaration

Declarations = Optional[Dict[str, Declaration]]


class Rule:
    """Base class: subclasses set ``rule_id``/``description`` and implement
    :meth:`check`."""

    rule_id: str = "abstract"
    description: str = ""

    def check(
        self,
        diagram: PipelineDiagram,
        kb: MachineKnowledge,
        declarations: Declarations = None,
    ) -> List[Diagnostic]:  # pragma: no cover - interface
        raise NotImplementedError

    def _e(self, message: str, subject: str = "", pipeline: int = -1) -> Diagnostic:
        return error(self.rule_id, message, subject, pipeline)

    def _w(self, message: str, subject: str = "", pipeline: int = -1) -> Diagnostic:
        return warning(self.rule_id, message, subject, pipeline)


class ALSPlacementRule(Rule):
    """Placed ALS icons must correspond to real ALSs of the node."""

    rule_id = "als-placement"
    description = "placed ALSs exist in the machine with matching shape"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for use in diagram.als_uses.values():
            if not kb.als_matches(use.als_id, use.kind, use.first_fu):
                out.append(
                    self._e(
                        f"no {use.kind.value} with id {use.als_id} at fu{use.first_fu} "
                        f"in this machine",
                        subject=f"als{use.als_id}",
                        pipeline=diagram.number,
                    )
                )
        return out


class FUCapabilityRule(Rule):
    """Assigned operations must match the unit's circuitry (§3 asymmetry)."""

    rule_id = "fu-capability"
    description = "operation selectable only on capable functional units"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for fu, assign in diagram.fu_ops.items():
            if not kb.fu_exists(fu):
                out.append(
                    self._e(f"fu{fu} does not exist", subject=f"fu{fu}",
                            pipeline=diagram.number)
                )
                continue
            if not kb.fu_supports(fu, assign.opcode):
                cap = kb.fu_capability(fu).label
                out.append(
                    self._e(
                        f"fu{fu} ({cap}) cannot perform {assign.opcode.value}",
                        subject=f"fu{fu}",
                        pipeline=diagram.number,
                    )
                )
        return out


class ConnectionEndpointRule(Rule):
    """Wires must join a real switch source to a real switch sink."""

    rule_id = "conn-endpoints"
    description = "connections reference existing device ports"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for src, sink in diagram.connections:
            if not kb.is_switch_source(src):
                out.append(
                    self._e(f"{src} is not a data source on this machine",
                            subject=str(src), pipeline=diagram.number)
                )
            if not kb.is_switch_sink(sink):
                out.append(
                    self._e(f"{sink} is not a data sink on this machine",
                            subject=str(sink), pipeline=diagram.number)
                )
        return out


class SinkUniquenessRule(Rule):
    """Every sink is driven by at most one source — including the case where
    a FU input has both a drawn wire and a register-file/internal source."""

    rule_id = "sink-unique"
    description = "each input pad is fed exactly once"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        seen: Dict[Endpoint, Endpoint] = {}
        for src, sink in diagram.connections:
            if sink in seen:
                out.append(
                    self._e(
                        f"{sink} is driven by both {seen[sink]} and {src}",
                        subject=str(sink),
                        pipeline=diagram.number,
                    )
                )
            else:
                seen[sink] = src
        for (fu, port), mod in diagram.input_mods.items():
            ep = fu_in(fu, port)
            if ep in seen:
                out.append(
                    self._e(
                        f"{ep} has both a wired connection from {seen[ep]} and a "
                        f"{mod.kind.value} source",
                        subject=str(ep),
                        pipeline=diagram.number,
                    )
                )
        return out


class FanoutRule(Rule):
    """Switch sources may drive a bounded number of sinks."""

    rule_id = "switch-fanout"
    description = "source fan-out within the switch network's limit"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        counts: Dict[Endpoint, int] = {}
        for src, _sink in diagram.connections:
            counts[src] = counts.get(src, 0) + 1
        for src, n in counts.items():
            if n > kb.max_fanout:
                out.append(
                    self._e(
                        f"{src} drives {n} sinks; the switch network allows "
                        f"{kb.max_fanout}",
                        subject=str(src),
                        pipeline=diagram.number,
                    )
                )
        return out


class SinglePlanePerFURule(Rule):
    """§3: during one instruction a unit touches at most one memory plane."""

    rule_id = "plane-single-fu"
    description = "one memory plane per functional unit per instruction"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for fu in diagram.active_fus():
            planes = diagram.planes_touched_by_fu(fu)
            if len(planes) > 1:
                out.append(
                    self._e(
                        f"fu{fu} touches memory planes {sorted(planes)}; only one "
                        f"plane per unit per instruction is allowed",
                        subject=f"fu{fu}",
                        pipeline=diagram.number,
                    )
                )
        return out


class OneWriterPerPlaneRule(Rule):
    """§4's example: at most one stream may write a given plane."""

    rule_id = "plane-one-writer"
    description = "at most one writer per memory plane per instruction"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for plane, writers in diagram.plane_writers().items():
            if len(writers) > 1:
                srcs = ", ".join(str(w) for w in writers)
                out.append(
                    self._e(
                        f"memory plane {plane} is written by {len(writers)} "
                        f"sources ({srcs})",
                        subject=f"mem[{plane}].write",
                        pipeline=diagram.number,
                    )
                )
        return out


class DMASpecRule(Rule):
    """Fig. 9: every memory/cache pad in use needs a consistent DMA spec."""

    rule_id = "dma-spec"
    description = "memory and cache connections carry valid DMA programs"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        used = [
            e
            for e in diagram.used_endpoints()
            if e.kind in (DeviceKind.MEMORY, DeviceKind.CACHE)
        ]
        for ep in sorted(used, key=lambda e: e.key):
            spec = diagram.dma.get(ep)
            if spec is None:
                out.append(
                    self._e(
                        f"{ep} is connected but has no DMA specification "
                        f"(fill in the pop-up subwindow)",
                        subject=str(ep),
                        pipeline=diagram.number,
                    )
                )
                continue
            if spec.device_kind is not ep.kind or spec.device != ep.device:
                out.append(
                    self._e(
                        f"DMA spec names {spec.device_kind.value}[{spec.device}] but "
                        f"is attached to {ep}",
                        subject=str(ep),
                        pipeline=diagram.number,
                    )
                )
            expected = Direction.READ if ep.port == "read" else Direction.WRITE
            if spec.direction is not expected:
                out.append(
                    self._e(
                        f"DMA spec direction {spec.direction.value} does not match "
                        f"{ep.port} pad",
                        subject=str(ep),
                        pipeline=diagram.number,
                    )
                )
            try:
                spec.validate_against(kb.params)
            except DMASpecError as exc:
                out.append(
                    self._e(str(exc), subject=str(ep), pipeline=diagram.number)
                )
            if spec.is_symbolic and declarations is not None:
                decl = declarations.get(spec.variable or "")
                if decl is None:
                    out.append(
                        self._e(
                            f"DMA spec references undeclared variable "
                            f"{spec.variable!r}",
                            subject=str(ep),
                            pipeline=diagram.number,
                        )
                    )
                elif ep.kind is DeviceKind.MEMORY and decl.plane != ep.device:
                    out.append(
                        self._e(
                            f"variable {spec.variable!r} lives on plane "
                            f"{decl.plane}, not plane {ep.device}",
                            subject=str(ep),
                            pipeline=diagram.number,
                        )
                    )
        for ep in diagram.dma:
            if ep not in diagram.used_endpoints() or diagram.dma[ep] is None:
                continue
        return out


class OneDMAProgramPerDeviceRule(Rule):
    """Each memory plane / cache has one DMA controller (§2), so one DMA
    program — a plane cannot both stream in and stream out of the same
    instruction (the microword holds a single program per device)."""

    rule_id = "dma-one-program"
    description = "one DMA program per memory plane / cache per instruction"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        seen: Dict[Tuple[DeviceKind, int], Endpoint] = {}
        for ep in sorted(diagram.dma, key=lambda e: e.key):
            key = (ep.kind, ep.device)
            if key in seen:
                out.append(
                    self._e(
                        f"{ep.kind.value}[{ep.device}] already runs a DMA "
                        f"program for {seen[key]}; its single controller "
                        f"cannot also serve {ep}",
                        subject=str(ep),
                        pipeline=diagram.number,
                    )
                )
            else:
                seen[key] = ep
        return out


class InputsFedRule(Rule):
    """Programmed units must have every required input fed, and units with
    wiring should carry an operation."""

    rule_id = "inputs-fed"
    description = "operation arity matches the fed input pads"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for fu, assign in sorted(diagram.fu_ops.items()):
            arity = OPCODES[assign.opcode].arity
            fed = {
                port: diagram.input_source(fu, port) for port in ("a", "b")
            }
            if fed["a"] is None:
                out.append(
                    self._e(
                        f"fu{fu} performs {assign.opcode.value} but input a is "
                        f"unconnected",
                        subject=f"fu{fu}.a",
                        pipeline=diagram.number,
                    )
                )
            if arity == 2 and fed["b"] is None:
                out.append(
                    self._e(
                        f"fu{fu} performs {assign.opcode.value} (two inputs) but "
                        f"input b is unconnected",
                        subject=f"fu{fu}.b",
                        pipeline=diagram.number,
                    )
                )
            if arity == 1 and fed["b"] is not None:
                out.append(
                    self._w(
                        f"fu{fu} performs unary {assign.opcode.value}; input b is "
                        f"fed but ignored",
                        subject=f"fu{fu}.b",
                        pipeline=diagram.number,
                    )
                )
        # wired-but-unprogrammed units
        wired: set[int] = set()
        for src, sink in diagram.connections:
            if sink.kind is DeviceKind.FU:
                wired.add(sink.device)
            if src.kind is DeviceKind.FU:
                wired.add(src.device)
        for fu in sorted(wired - set(diagram.fu_ops)):
            out.append(
                self._e(
                    f"fu{fu} is wired into the pipeline but has no operation "
                    f"assigned (use the function-unit menu)",
                    subject=f"fu{fu}",
                    pipeline=diagram.number,
                )
            )
        return out


class InternalRouteRule(Rule):
    """INTERNAL input mods must use a hardwired route that exists in the
    ALS shape and whose source slot is active and programmed."""

    rule_id = "internal-route"
    description = "internal connections follow the ALS's hardwired edges"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for (fu, port), mod in sorted(diagram.input_mods.items()):
            if mod.kind is not InputModKind.INTERNAL:
                continue
            use = diagram.als_use_of_fu(fu)
            if use is None:
                out.append(
                    self._e(
                        f"fu{fu} uses an internal route but belongs to no placed ALS",
                        subject=f"fu{fu}.{port}",
                        pipeline=diagram.number,
                    )
                )
                continue
            slot = use.slot_of(fu)
            routes = kb.internal_routes_into(use.kind, slot, port)
            if not any(r.src_slot == mod.src_slot for r in routes):
                out.append(
                    self._e(
                        f"{use.kind.value} has no hardwired route from slot "
                        f"{mod.src_slot} into slot {slot} port {port}",
                        subject=f"fu{fu}.{port}",
                        pipeline=diagram.number,
                    )
                )
                continue
            src_fu = use.first_fu + mod.src_slot
            if mod.src_slot in use.bypassed_slots:
                out.append(
                    self._e(
                        f"internal route source slot {mod.src_slot} is bypassed",
                        subject=f"fu{fu}.{port}",
                        pipeline=diagram.number,
                    )
                )
            elif src_fu not in diagram.fu_ops:
                out.append(
                    self._e(
                        f"internal route source fu{src_fu} has no operation",
                        subject=f"fu{fu}.{port}",
                        pipeline=diagram.number,
                    )
                )
        return out


class FeedbackRule(Rule):
    """FEEDBACK input mods require a two-input operation on that unit."""

    rule_id = "feedback"
    description = "feedback loops feed a binary operation's second input"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for (fu, port), mod in sorted(diagram.input_mods.items()):
            if mod.kind is not InputModKind.FEEDBACK:
                continue
            assign = diagram.fu_ops.get(fu)
            if assign is None:
                out.append(
                    self._e(
                        f"fu{fu} has a feedback loop but no operation",
                        subject=f"fu{fu}.{port}",
                        pipeline=diagram.number,
                    )
                )
                continue
            if OPCODES[assign.opcode].arity != 2:
                out.append(
                    self._e(
                        f"feedback into unary {assign.opcode.value} on fu{fu} has "
                        f"no effect",
                        subject=f"fu{fu}.{port}",
                        pipeline=diagram.number,
                    )
                )
        return out


class RegfileCapacityRule(Rule):
    """Constants plus delay queues must fit the register file (§2/§5)."""

    rule_id = "regfile-capacity"
    description = "register-file words cover constants and delay queues"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for fu in diagram.active_fus():
            words = 0
            assign = diagram.fu_ops[fu]
            if OPCODES[assign.opcode].uses_constant:
                words += 1
            for port in ("a", "b"):
                mod = diagram.input_mods.get((fu, port))
                if mod is not None and mod.kind is InputModKind.CONSTANT:
                    words += 1
                if mod is not None and mod.kind is InputModKind.FEEDBACK:
                    words += 1  # feedback initial value
                words += diagram.delays.get((fu, port), 0)
            if words > kb.regfile_words:
                out.append(
                    self._e(
                        f"fu{fu} needs {words} register-file words (constants + "
                        f"delays) but only {kb.regfile_words} exist",
                        subject=f"fu{fu}",
                        pipeline=diagram.number,
                    )
                )
        return out


class ShiftDelayRule(Rule):
    """Shift/delay units: taps in range, shifts bounded, input fed."""

    rule_id = "shift-delay"
    description = "shift/delay tap configuration is realizable"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        for (unit, tap), shift in sorted(diagram.sd_taps.items()):
            if not kb.sd_tap_exists(unit, tap):
                out.append(
                    self._e(
                        f"shift/delay unit {unit} tap {tap} does not exist",
                        subject=f"sd[{unit}].tap{tap}",
                        pipeline=diagram.number,
                    )
                )
            elif not kb.sd_shift_legal(shift):
                out.append(
                    self._e(
                        f"shift {shift} exceeds the unit's range "
                        f"+-{kb.params.shift_delay_max_shift}",
                        subject=f"sd[{unit}].tap{tap}",
                        pipeline=diagram.number,
                    )
                )
        # taps used in wiring must be configured; unit inputs must be fed
        for src, _sink in diagram.connections:
            if src.kind is DeviceKind.SHIFT_DELAY and src.port.startswith("tap"):
                unit = src.device
                tap = int(src.port[3:])
                if (unit, tap) not in diagram.sd_taps:
                    out.append(
                        self._e(
                            f"{src} is wired but its shift is not configured",
                            subject=str(src),
                            pipeline=diagram.number,
                        )
                    )
                feeder = diagram.driver_of(
                    Endpoint(DeviceKind.SHIFT_DELAY, unit, "in")
                )
                if feeder is None:
                    out.append(
                        self._e(
                            f"shift/delay unit {unit} emits streams but its input "
                            f"is unconnected",
                            subject=f"sd[{unit}].in",
                            pipeline=diagram.number,
                        )
                    )
        return out


class UnusedOutputRule(Rule):
    """A programmed unit whose output feeds nothing is probably a mistake."""

    rule_id = "unused-output"
    description = "programmed units should drive something"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        condition_fu = diagram.condition.fu if diagram.condition else None
        for fu in diagram.active_fus():
            sinks = diagram.sinks_of(fu_out(fu))
            used_internally = any(
                mod.kind is InputModKind.INTERNAL
                and diagram.als_use_of_fu(consumer) is diagram.als_use_of_fu(fu)
                and diagram.als_use_of_fu(consumer) is not None
                and diagram.als_use_of_fu(consumer).first_fu + mod.src_slot == fu
                for (consumer, _p), mod in diagram.input_mods.items()
            )
            if not sinks and not used_internally and fu != condition_fu:
                out.append(
                    self._w(
                        f"fu{fu} output drives nothing",
                        subject=f"fu{fu}.out",
                        pipeline=diagram.number,
                    )
                )
        return out


class ConditionRule(Rule):
    """Condition monitors must watch a programmed unit."""

    rule_id = "condition"
    description = "condition interrupts watch an active functional unit"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        cond = diagram.condition
        if cond is None:
            return out
        if cond.fu not in diagram.fu_ops:
            out.append(
                self._e(
                    f"condition watches fu{cond.fu}, which performs no operation",
                    subject=f"fu{cond.fu}",
                    pipeline=diagram.number,
                )
            )
        return out


class AcyclicityRule(Rule):
    """Drawn wiring must be a DAG; loops must use the FEEDBACK mod."""

    rule_id = "acyclic"
    description = "pipelines are acyclic (feedback via register file only)"

    def check(self, diagram, kb, declarations=None):
        try:
            diagram.topological_order()
        except DiagramError as exc:
            return [self._e(str(exc), pipeline=diagram.number)]
        return []


class VectorLengthRule(Rule):
    """Explicit DMA counts must agree with each other and any explicit
    vector length (they all pace the same pipeline)."""

    rule_id = "vector-length"
    description = "stream lengths are mutually consistent"

    def check(self, diagram, kb, declarations=None):
        out: List[Diagnostic] = []
        lengths: Dict[int, List[str]] = {}
        if diagram.vector_length is not None:
            lengths.setdefault(diagram.vector_length, []).append("pipeline")
        for ep, spec in diagram.dma.items():
            if spec.count is not None:
                lengths.setdefault(spec.count, []).append(str(ep))
        if len(lengths) > 1:
            desc = "; ".join(
                f"{n} ({', '.join(who)})" for n, who in sorted(lengths.items())
            )
            out.append(
                self._e(
                    f"inconsistent stream lengths: {desc}",
                    pipeline=diagram.number,
                )
            )
        return out


#: The production rule set, in the order diagnostics are reported.
ALL_RULES: Tuple[Rule, ...] = (
    ALSPlacementRule(),
    FUCapabilityRule(),
    ConnectionEndpointRule(),
    SinkUniquenessRule(),
    FanoutRule(),
    SinglePlanePerFURule(),
    OneWriterPerPlaneRule(),
    DMASpecRule(),
    OneDMAProgramPerDeviceRule(),
    InputsFedRule(),
    InternalRouteRule(),
    FeedbackRule(),
    RegfileCapacityRule(),
    ShiftDelayRule(),
    UnusedOutputRule(),
    ConditionRule(),
    AcyclicityRule(),
    VectorLengthRule(),
)


__all__ = ["Rule", "ALL_RULES"] + [r.__class__.__name__ for r in ALL_RULES]
