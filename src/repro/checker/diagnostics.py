"""Diagnostics: the errors and warnings the environment shows the user.

Paper §4: "Any errors are flagged as soon as they are detected" — in the
prototype they appear in the message strip across the top of the display
window (Fig. 5).  Each diagnostic carries the rule that produced it and a
*subject* string locating the offending object (a pad, a unit, a plane), so
the editor can highlight it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List


class Severity(enum.Enum):
    ERROR = "error"      # must be fixed before microcode generation
    WARNING = "warning"  # suspicious but codegen may proceed
    INFO = "info"        # advisory

    @property
    def is_error(self) -> bool:
        return self is Severity.ERROR


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a checker rule."""

    severity: Severity
    rule: str
    message: str
    subject: str = ""
    pipeline: int = -1

    def format(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        pipe = f" (pipeline {self.pipeline})" if self.pipeline >= 0 else ""
        return f"{self.severity.value.upper()} {self.rule}{pipe}{where}: {self.message}"

    def __str__(self) -> str:
        return self.format()


@dataclass
class CheckReport:
    """An ordered collection of diagnostics from one checking pass."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def merge(self, other: "CheckReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no errors are present (warnings do not block)."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def format(self) -> str:
        if not self.diagnostics:
            return "clean"
        return "\n".join(d.format() for d in self.diagnostics)

    def first_error_message(self) -> str:
        """What the message strip shows: the first error, or empty."""
        errs = self.errors
        return errs[0].format() if errs else ""


def error(rule: str, message: str, subject: str = "", pipeline: int = -1) -> Diagnostic:
    return Diagnostic(Severity.ERROR, rule, message, subject, pipeline)


def warning(rule: str, message: str, subject: str = "", pipeline: int = -1) -> Diagnostic:
    return Diagnostic(Severity.WARNING, rule, message, subject, pipeline)


def info(rule: str, message: str, subject: str = "", pipeline: int = -1) -> Diagnostic:
    return Diagnostic(Severity.INFO, rule, message, subject, pipeline)


__all__ = [
    "Severity",
    "Diagnostic",
    "CheckReport",
    "error",
    "warning",
    "info",
]
