"""The machine knowledge base consulted by every checker rule.

Paper §4 argues the knowledge-base organization "helps to make the whole
visual environment more robust in the face of changes to the machine
design.  Some changes can be handled merely by updating the knowledge base"
— here that means constructing :class:`MachineKnowledge` from a different
:class:`~repro.arch.params.NSCParameters` (e.g. :data:`SUBSET_PARAMS`),
with no rule-code changes.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.arch.als import ALS_CLASSES, ALSClass, ALSKind, InternalEdge
from repro.arch.funcunit import FUCapability, Opcode, OPCODES, ops_for_capability
from repro.arch.node import NodeConfig
from repro.arch.params import NSCParameters
from repro.arch.switch import Endpoint


class MachineKnowledge:
    """Query layer over a :class:`~repro.arch.node.NodeConfig`."""

    def __init__(self, node: NodeConfig) -> None:
        self.node = node
        self.params: NSCParameters = node.params

    # ------------------------------------------------------------------
    # functional units and ALSs
    # ------------------------------------------------------------------
    def fu_exists(self, fu: int) -> bool:
        return 0 <= fu < self.node.n_fus

    def fu_capability(self, fu: int) -> FUCapability:
        return self.node.fu_capability(fu)

    def fu_supports(self, fu: int, opcode: Opcode) -> bool:
        if not self.fu_exists(fu):
            return False
        return OPCODES[opcode].capability in self.fu_capability(fu)

    def legal_ops_for_fu(self, fu: int) -> List[Opcode]:
        """The entries shown in the Fig. 10 pop-up menu for this unit."""
        if not self.fu_exists(fu):
            return []
        return ops_for_capability(self.fu_capability(fu))

    def als_class(self, kind: ALSKind) -> ALSClass:
        return ALS_CLASSES[kind]

    def als_matches(self, als_id: int, kind: ALSKind, first_fu: int) -> bool:
        """Does the node really have this ALS with these FU indices?"""
        try:
            inst = self.node.als(als_id)
        except IndexError:
            return False
        return inst.kind is kind and inst.first_fu == first_fu

    def internal_routes_into(
        self, kind: ALSKind, slot: int, port: str
    ) -> Tuple[InternalEdge, ...]:
        return ALS_CLASSES[kind].internal_routes_into(slot, port)

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------
    def plane_exists(self, plane: int) -> bool:
        return 0 <= plane < self.params.n_memory_planes

    def cache_exists(self, cache: int) -> bool:
        return 0 <= cache < self.params.n_caches

    def sd_unit_exists(self, unit: int) -> bool:
        return 0 <= unit < self.params.n_shift_delay_units

    def sd_tap_exists(self, unit: int, tap: int) -> bool:
        return self.sd_unit_exists(unit) and 0 <= tap < self.params.shift_delay_taps

    def sd_shift_legal(self, shift: int) -> bool:
        return abs(shift) <= self.params.shift_delay_max_shift

    # ------------------------------------------------------------------
    # switch network
    # ------------------------------------------------------------------
    def is_switch_source(self, ep: Endpoint) -> bool:
        return self.node.switch.is_source(ep)

    def is_switch_sink(self, ep: Endpoint) -> bool:
        return self.node.switch.is_sink(ep)

    @property
    def max_fanout(self) -> int:
        return self.params.switch_max_fanout

    @property
    def regfile_words(self) -> int:
        return self.params.regfile_words

    def all_sources(self) -> Set[Endpoint]:
        return set(self.node.switch.sources)

    def all_sinks(self) -> Set[Endpoint]:
        return set(self.node.switch.sinks)

    def describe(self) -> str:
        inv = self.node.inventory()
        return (
            f"NSC node: {inv['functional_units']} FUs "
            f"({inv['als']['singlets']}S/{inv['als']['doublets']}D/"
            f"{inv['als']['triplets']}T), {inv['memory_planes']} planes x "
            f"{inv['memory_plane_mbytes']} MB, {inv['caches']} caches, "
            f"{inv['shift_delay_units']} shift/delay units, "
            f"peak {inv['peak_mflops']:.0f} MFLOPS"
        )


__all__ = ["MachineKnowledge"]
