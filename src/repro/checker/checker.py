"""The checker facade: incremental edit-time checks and global validation.

Paper §4: "The graphical editor calls on the checker at appropriate points
during interaction with the user to validate the information being input.
Any errors are flagged as soon as they are detected.  In addition, the
graphical editor uses the checker's knowledge of the architecture to reduce
the possibilities for making errors" — realized here by
:meth:`Checker.legal_sources_for`, which enumerates exactly the menu entries
the editor may offer for a given input pad.

The microcode generator invokes :meth:`check_program` "to perform a thorough
check of global constraints and other conditions which may not be practical
to check during the editing process".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch.funcunit import Opcode
from repro.arch.node import NodeConfig
from repro.arch.switch import DeviceKind, Endpoint
from repro.checker.diagnostics import CheckReport, error, warning
from repro.checker.knowledge import MachineKnowledge
from repro.checker.rules import ALL_RULES, Rule
from repro.diagram.pipeline import PipelineDiagram
from repro.diagram.program import (
    Declaration,
    ProgramError,
    VisualProgram,
)


class Checker:
    """Validates diagrams and programs against one machine description."""

    def __init__(
        self,
        node: NodeConfig,
        rules: Sequence[Rule] = ALL_RULES,
    ) -> None:
        self.kb = MachineKnowledge(node)
        self.rules: List[Rule] = list(rules)
        self.incremental_checks = 0
        self.full_checks = 0

    # ------------------------------------------------------------------
    # incremental (edit-time) checks
    # ------------------------------------------------------------------
    def check_connection(
        self,
        diagram: PipelineDiagram,
        source: Endpoint,
        sink: Endpoint,
    ) -> CheckReport:
        """Validate a *proposed* connection before the editor commits it.

        This is the rubber-band check of Fig. 8: "The checker is used during
        this operation to ensure that only legal connections are attempted."
        """
        self.incremental_checks += 1
        report = CheckReport()
        kb = self.kb
        if not kb.is_switch_source(source):
            report.add(
                error("conn-endpoints", f"{source} is not a data source",
                      str(source), diagram.number)
            )
        if not kb.is_switch_sink(sink):
            report.add(
                error("conn-endpoints", f"{sink} is not a data sink",
                      str(sink), diagram.number)
            )
        if not report.ok:
            return report
        if diagram.driver_of(sink) is not None:
            report.add(
                error("sink-unique",
                      f"{sink} is already driven by {diagram.driver_of(sink)}",
                      str(sink), diagram.number)
            )
        if sink.kind is DeviceKind.FU and (sink.device, sink.port) in diagram.input_mods:
            mod = diagram.input_mods[(sink.device, sink.port)]
            report.add(
                error("sink-unique",
                      f"{sink} already has a {mod.kind.value} source",
                      str(sink), diagram.number)
            )
        fanout = len(diagram.sinks_of(source))
        if fanout + 1 > kb.max_fanout:
            report.add(
                error("switch-fanout",
                      f"{source} already drives {fanout} sinks (limit "
                      f"{kb.max_fanout})", str(source), diagram.number)
            )
        # the paper's worked example: second writer to a plane is refused
        if sink.kind is DeviceKind.MEMORY and sink.port == "write":
            writers = diagram.plane_writers().get(sink.device, [])
            if writers:
                report.add(
                    error("plane-one-writer",
                          f"memory plane {sink.device} is already written by "
                          f"{writers[0]}", str(sink), diagram.number)
                )
        # single plane per FU, evaluated on the hypothetical diagram
        if self._would_violate_single_plane(diagram, source, sink):
            report.add(
                error("plane-single-fu",
                      "this connection would make a functional unit touch a "
                      "second memory plane in one instruction",
                      str(sink), diagram.number)
            )
        return report

    def _would_violate_single_plane(
        self, diagram: PipelineDiagram, source: Endpoint, sink: Endpoint
    ) -> bool:
        probe = diagram.copy()
        try:
            probe.connect(source, sink)
        except Exception:
            return False
        for fu in set(
            d for d in (
                [source.device] if source.kind is DeviceKind.FU else []
            ) + (
                [sink.device] if sink.kind is DeviceKind.FU else []
            )
        ):
            if len(probe.planes_touched_by_fu(fu)) > 1:
                return True
        return False

    def check_fu_op(
        self, diagram: PipelineDiagram, fu: int, opcode: Opcode
    ) -> CheckReport:
        """Validate a proposed operation assignment (the Fig. 10 menu)."""
        self.incremental_checks += 1
        report = CheckReport()
        if not self.kb.fu_exists(fu):
            report.add(
                error("fu-capability", f"fu{fu} does not exist", f"fu{fu}",
                      diagram.number)
            )
            return report
        if not self.kb.fu_supports(fu, opcode):
            report.add(
                error(
                    "fu-capability",
                    f"fu{fu} ({self.kb.fu_capability(fu).label}) cannot perform "
                    f"{opcode.value}",
                    f"fu{fu}",
                    diagram.number,
                )
            )
        use = diagram.als_use_of_fu(fu)
        if use is None:
            report.add(
                error("als-placement",
                      f"fu{fu} belongs to no ALS placed in this diagram",
                      f"fu{fu}", diagram.number)
            )
        elif fu not in use.active_fus:
            report.add(
                error("als-placement", f"fu{fu} is bypassed in ALS {use.als_id}",
                      f"fu{fu}", diagram.number)
            )
        return report

    def legal_sources_for(
        self, diagram: PipelineDiagram, sink: Endpoint
    ) -> List[Endpoint]:
        """Sources that could legally drive *sink* right now.

        The editor builds the pad's pop-up menu from this list, so illegal
        choices are never offered.
        """
        out: List[Endpoint] = []
        for source in sorted(self.kb.all_sources()):
            if source.kind is DeviceKind.FU and source.device == getattr(
                sink, "device", None
            ) and sink.kind is DeviceKind.FU:
                continue  # self-loop is the FEEDBACK mod, not a wire
            if self.check_connection(diagram, source, sink).ok:
                out.append(source)
        return out

    def legal_ops_for(self, fu: int) -> List[Opcode]:
        """Menu entries for a unit (Fig. 10), filtered by capability."""
        return self.kb.legal_ops_for_fu(fu)

    # ------------------------------------------------------------------
    # full checks
    # ------------------------------------------------------------------
    def check_pipeline(
        self,
        diagram: PipelineDiagram,
        declarations: Optional[Dict[str, Declaration]] = None,
    ) -> CheckReport:
        """Run every rule against one diagram."""
        self.full_checks += 1
        report = CheckReport()
        for rule in self.rules:
            report.extend(rule.check(diagram, self.kb, declarations))
        return report

    def check_program(self, program: VisualProgram) -> CheckReport:
        """The thorough pre-codegen pass over a whole program."""
        report = CheckReport()
        # declarations fit their planes and do not collide
        plane_cursor: Dict[int, int] = {}
        for decl in program.declarations.values():
            if not self.kb.plane_exists(decl.plane):
                report.add(
                    error("declaration",
                          f"variable {decl.name!r} names nonexistent plane "
                          f"{decl.plane}", decl.name)
                )
                continue
            used = plane_cursor.get(decl.plane, 0) + decl.length
            if used > self.kb.params.memory_plane_words:
                report.add(
                    error("declaration",
                          f"plane {decl.plane} overflows: {used} words needed, "
                          f"{self.kb.params.memory_plane_words} available",
                          decl.name)
                )
            plane_cursor[decl.plane] = used
        # each pipeline
        for diagram in program.pipelines:
            report.merge(self.check_pipeline(diagram, program.declarations))
        # DMA windows stay inside their variables
        for diagram in program.pipelines:
            n = diagram.vector_length
            for ep, spec in diagram.dma.items():
                if not spec.is_symbolic:
                    continue
                decl = program.declarations.get(spec.variable or "")
                if decl is None:
                    continue  # already reported by the dma-spec rule
                count = spec.count if spec.count is not None else n
                if count is None:
                    continue
                last = spec.offset + (count - 1) * spec.stride
                if last < 0 or last >= decl.length or spec.offset < 0:
                    report.add(
                        error(
                            "dma-bounds",
                            f"DMA window [{spec.offset}..{last}] falls outside "
                            f"variable {decl.name!r} of {decl.length} words",
                            str(ep),
                            diagram.number,
                        )
                    )
        # control flow references
        try:
            for op in program.effective_control():
                program._validate_control(op)
        except ProgramError as exc:
            report.add(error("control-flow", str(exc)))
        if not program.pipelines:
            report.add(warning("program", "program contains no pipelines"))
        return report


__all__ = ["Checker"]
