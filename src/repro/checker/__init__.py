"""The checker: architectural knowledge plus constraint rules.

Paper §4: "The checker contains, in a knowledge base or other suitable
representation, detailed information about the architecture of the NSC ...
More importantly, the checker also knows all of the rules about conflicts,
constraints, asymmetries and other restrictions."  It is called by the
editor *during* interaction (incremental checks, errors flagged as soon as
detected) and again by the microcode generator for "a thorough check of
global constraints".
"""

from repro.checker.diagnostics import Diagnostic, Severity, CheckReport
from repro.checker.knowledge import MachineKnowledge
from repro.checker.checker import Checker
from repro.checker.rules import ALL_RULES, Rule

__all__ = [
    "Diagnostic",
    "Severity",
    "CheckReport",
    "MachineKnowledge",
    "Checker",
    "Rule",
    "ALL_RULES",
]
