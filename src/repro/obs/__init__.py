"""``repro.obs`` — the observability substrate.

Two halves:

- :mod:`repro.obs.tracer` — in-process telemetry: nestable timed spans,
  monotonic counters, annotations, and a structured JSONL event sink,
  summarized into :class:`Telemetry` objects that result records and
  ``nsc-vpe stats`` consume;
- :mod:`repro.obs.alerts` — trend infrastructure over the bench history:
  the JSONL history file, :class:`AlertTrigger` conditions, and the
  :class:`RegressionDetector` that turns a sliding speedup into a fired
  alert record and a non-zero exit.

:mod:`repro.obs.stats` sits on top: the offline aggregators behind
``nsc-vpe stats``.  ``docs/OBSERVABILITY.md`` documents all of it.
"""

from repro.obs.alerts import (
    DEFAULT_TRIGGERS,
    HISTORY_METRICS,
    AlertTrigger,
    RegressionDetector,
    append_history,
    detect_alerts,
    format_alerts,
    history_entries,
    load_history,
    write_alerts,
)
from repro.obs.stats import (
    aggregate_history,
    aggregate_records,
    format_history_stats,
    format_record_stats,
)
from repro.obs.tracer import (
    STAGES,
    ZERO_TIMINGS,
    JsonlSink,
    Telemetry,
    Tracer,
    annotate,
    count,
    current,
    default_sink,
    event,
    set_default_sink,
    span,
    use,
)

__all__ = [
    # tracer
    "STAGES",
    "ZERO_TIMINGS",
    "Telemetry",
    "JsonlSink",
    "Tracer",
    "current",
    "use",
    "span",
    "count",
    "annotate",
    "event",
    "set_default_sink",
    "default_sink",
    # alerts
    "HISTORY_METRICS",
    "AlertTrigger",
    "DEFAULT_TRIGGERS",
    "RegressionDetector",
    "detect_alerts",
    "history_entries",
    "append_history",
    "load_history",
    "write_alerts",
    "format_alerts",
    # stats
    "aggregate_records",
    "format_record_stats",
    "aggregate_history",
    "format_history_stats",
]
