"""Threshold alerting over the bench-history trend.

The committed baseline (``benchmarks/perf/baseline.json``) guards
against regressions relative to one frozen floor; this layer guards
against *drift* — a speedup sliding run over run while staying above the
static floor.  The pieces, detector → triggers → alert records:

- :func:`append_history` / :func:`load_history` maintain the JSONL
  **history file**: one line per scenario per bench run, carrying the
  run's guarded metrics (``nsc-vpe bench --history`` appends on every
  run, so CI accumulates a trajectory as an artifact).
- an :class:`AlertTrigger` names one condition to watch: a metric, a
  rolling window of prior runs, and the fractional drop below the
  window's median that fires.
- the :class:`RegressionDetector` evaluates its triggers over the
  history: for each scenario's latest entry it compares the metric
  against the median of the preceding window (quick and full runs trend
  separately — they measure different problems).  Windows with fewer
  than ``min_samples`` prior entries never fire; a fresh history warms
  up silently.
- the result is a list of **alert records** — plain dicts, written as
  ``BENCH_alerts.json`` next to the other bench artifacts — and a
  non-zero exit from ``nsc-vpe bench`` when any fired.

The median (not the mean) anchors the window so one anomalously slow CI
runner in the history does not drag the floor down with it.

Workflow documentation: ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import math
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

#: Bench-record metrics the history carries and the detector can watch.
HISTORY_METRICS = ("speedup", "speedup_vs_unfused")


def metric_value(entry: Dict[str, Any], metric: str) -> Optional[float]:
    """The entry's finite numeric value for *metric*, else ``None``.

    A history file accumulates across bench versions, so individual
    entries may predate a metric entirely or carry it with a shape a
    different version wrote (``null``, a nested dict, a non-finite
    float).  Schema drift is per-entry data, not corruption: such
    entries are skipped for that metric, never allowed to fail the
    whole detection pass.
    """
    value = entry.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


# ----------------------------------------------------------------------
# the history file
# ----------------------------------------------------------------------
def history_entries(
    records: Sequence[Dict[str, Any]],
    timestamp: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Distill bench records into history lines (one per scenario)."""
    ts = time.time() if timestamp is None else timestamp
    entries: List[Dict[str, Any]] = []
    for record in records:
        entry: Dict[str, Any] = {
            "ts": round(float(ts), 3),
            "scenario": record["scenario"],
            "quick": bool(record.get("quick", False)),
            "ok": bool(record.get("ok", False)),
        }
        for metric in HISTORY_METRICS:
            if metric in record:
                entry[metric] = float(record[metric])
        wall = {
            side: data["wall_s"]
            for side, data in record.get("backends", {}).items()
            if isinstance(data, dict) and "wall_s" in data
        }
        if wall:
            entry["wall_s"] = wall
        entries.append(entry)
    return entries


def append_history(
    records: Sequence[Dict[str, Any]],
    path: str,
    timestamp: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Append one history line per bench record; returns the new lines."""
    entries = history_entries(records, timestamp=timestamp)
    if not entries:
        return entries
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entries


def load_history(path: str) -> List[Dict[str, Any]]:
    """All history entries in append order; missing file reads empty.

    Unparseable lines are skipped (a truncated final line from a killed
    CI run must not poison every later bench)."""
    target = Path(path)
    if not target.exists():
        return []
    entries: List[Dict[str, Any]] = []
    with open(target, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "scenario" in entry:
                entries.append(entry)
    return entries


# ----------------------------------------------------------------------
# triggers and the detector
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlertTrigger:
    """One watched condition: *metric* dropping more than *drop* below
    the median of the last *window* prior runs (needing at least
    *min_samples* of them to make a trend claim at all)."""

    metric: str = "speedup"
    window: int = 5
    min_samples: int = 3
    drop: float = 0.25

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not (0 < self.min_samples <= self.window):
            raise ValueError("min_samples must be in [1, window]")
        if not (0.0 < self.drop < 1.0):
            raise ValueError("drop must be a fraction in (0, 1)")


#: Default watch list: both guarded speedup metrics.
DEFAULT_TRIGGERS = (
    AlertTrigger(metric="speedup"),
    AlertTrigger(metric="speedup_vs_unfused"),
)


class RegressionDetector:
    """Evaluates triggers over a bench history.

    For every ``(scenario, quick)`` series in the history, the latest
    entry is the run under test and the preceding entries (newest
    ``window`` of them) are the trend it is judged against.
    """

    def __init__(
        self, triggers: Sequence[AlertTrigger] = DEFAULT_TRIGGERS
    ) -> None:
        self.triggers = tuple(triggers)

    def detect(
        self, history: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Run every trigger; returns the alert document.

        ``{"ok": bool, "fired": [...], "evaluated": [...]}`` — ``fired``
        holds the alert records, ``evaluated`` one status entry per
        (series, trigger) pair including the quiet ones, so the artifact
        shows what was checked, not only what failed.
        """
        series: Dict[Any, List[Dict[str, Any]]] = {}
        for entry in history:
            key = (entry["scenario"], bool(entry.get("quick", False)))
            series.setdefault(key, []).append(entry)

        fired: List[Dict[str, Any]] = []
        evaluated: List[Dict[str, Any]] = []
        for (scenario, quick), entries in sorted(series.items()):
            current = entries[-1]
            prior = entries[:-1]
            for trigger in self.triggers:
                metric = trigger.metric
                value = metric_value(current, metric)
                if value is None:
                    continue
                window = [
                    v
                    for v in (
                        metric_value(e, metric)
                        for e in prior[-trigger.window:]
                    )
                    if v is not None
                ]
                status: Dict[str, Any] = {
                    "scenario": scenario,
                    "quick": quick,
                    "metric": metric,
                    "current": value,
                    "window_size": len(window),
                }
                if len(window) < trigger.min_samples:
                    status["fired"] = False
                    status["note"] = (
                        f"insufficient history "
                        f"({len(window)} < {trigger.min_samples} runs)"
                    )
                    evaluated.append(status)
                    continue
                median = statistics.median(window)
                floor = median * (1.0 - trigger.drop)
                status.update(
                    {
                        "window_median": median,
                        "floor": floor,
                        "fired": value < floor,
                    }
                )
                evaluated.append(status)
                if status["fired"]:
                    fired.append(
                        {
                            **status,
                            "reason": (
                                f"{scenario}.{metric} "
                                f"{value:.2f}x fell below "
                                f"{floor:.2f}x (median {median:.2f}x of "
                                f"last {len(window)} runs, "
                                f"drop tolerance {trigger.drop:.0%})"
                            ),
                        }
                    )
        return {"ok": not fired, "fired": fired, "evaluated": evaluated}


def detect_alerts(
    history: Sequence[Dict[str, Any]],
    triggers: Sequence[AlertTrigger] = DEFAULT_TRIGGERS,
) -> Dict[str, Any]:
    """Functional shorthand for ``RegressionDetector(triggers).detect``."""
    return RegressionDetector(triggers).detect(history)


def write_alerts(alerts: Dict[str, Any], out_dir: str) -> Path:
    """Write ``BENCH_alerts.json`` under *out_dir*; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "BENCH_alerts.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(alerts, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_alerts(alerts: Dict[str, Any]) -> str:
    """Human-readable alert summary, one line per fired alert."""
    evaluated = alerts.get("evaluated", [])
    fired = alerts.get("fired", [])
    header = (
        f"history alerts ({len(evaluated)} checks): "
        + ("ok" if alerts.get("ok") else f"{len(fired)} FIRED")
    )
    lines = [f"  ALERT {alert['reason']}" for alert in fired]
    quiet = [
        e for e in evaluated if not e.get("fired") and "note" in e
    ]
    if not fired and evaluated and len(quiet) == len(evaluated):
        lines.append(f"  ({quiet[0]['note']})")
    return "\n".join([header] + lines)


__all__ = [
    "HISTORY_METRICS",
    "metric_value",
    "AlertTrigger",
    "DEFAULT_TRIGGERS",
    "RegressionDetector",
    "detect_alerts",
    "history_entries",
    "append_history",
    "load_history",
    "write_alerts",
    "format_alerts",
]
