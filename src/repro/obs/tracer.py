"""Zero-dependency telemetry: timed spans, counters, structured events.

The simulation stack is measured through one small vocabulary:

- a **span** is a timed region (``with tracer.span("compile"): ...``).
  Spans nest; every span's elapsed time is *added* to its name's total,
  so repeated stages (one compile per job, one execute per run)
  aggregate naturally.  The canonical per-job stage names are in
  :data:`STAGES`.
- a **counter** is a monotonic integer (``tracer.count("cache.hit")``):
  cache hits and misses, plan-cache lookups, and — most importantly —
  which execution *tier* actually ran (``tier.fused`` /
  ``tier.per_issue`` / ``tier.reference``).  The reliability layer adds
  ``retry.scheduled`` / ``retry.exhausted``, ``pool.rebuild``,
  ``transport.fallback``, ``resume.skipped``, and ``fault.<site>``
  (batch-level tracer; the matching ``retry`` / ``transport_fallback``
  / ``fault`` events carry the per-job detail — see
  ``docs/RELIABILITY.md``).
- an **annotation** is a last-write-wins fact about the run
  (``tracer.annotate("tier", "fused")``,
  ``tracer.annotate("fallback_reason", ...)``) — what a result record
  stamps, where a counter would only say how often.
- an **event** is one structured dict appended to the tracer's sink
  (a :class:`JsonlSink` file or the in-memory buffer) — the raw stream
  behind the aggregates, for offline digestion.

Instrumented code never takes a tracer parameter.  A tracer is
*activated* for a dynamic extent (``with obs.use(tracer): ...``) and the
instrumentation calls the module-level helpers (:func:`span`,
:func:`count`, :func:`annotate`, :func:`event`), which forward to the
active tracer or do nothing.  With no tracer active the helpers cost one
attribute load and a comparison — the hot paths stay hot.  Activation
nests: a batch-level tracer in the parent and a per-job tracer inside
:func:`~repro.service.runner.execute_job` coexist, each seeing only its
own extent.  The active tracer is per-process state (pool workers each
activate their own), deliberately not shared across threads' spans.

A finished tracer summarizes into a :class:`Telemetry` — plain dicts,
JSON-ready — which is what result records, batch summaries, and
``nsc-vpe stats`` consume.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

#: Canonical per-job stage names, in pipeline order.  Result records
#: report a timing for every stage (0.0 when the stage did not run, so
#: the schema is stable across cache hits, transports, and tiers).
STAGES = ("compile", "check", "bind", "execute", "transport")

#: The all-zero stage dict — what a record reports when its job never
#: ran (a dead worker's synthesized failure record).  Copy before use.
ZERO_TIMINGS = {stage: 0.0 for stage in STAGES}


@dataclass
class Telemetry:
    """Aggregated, JSON-ready summary of one tracer's lifetime.

    ``timings`` sums seconds per span name; ``span_counts`` says how
    many spans contributed to each sum; ``counters`` and
    ``annotations`` are copied verbatim.
    """

    timings: Dict[str, float] = field(default_factory=dict)
    span_counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    annotations: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "timings": dict(self.timings),
            "span_counts": dict(self.span_counts),
            "counters": dict(self.counters),
            "annotations": dict(self.annotations),
        }

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold *other* into this summary (in place; returns self).

        Timings and counters add; annotations take the other's values
        (last writer wins, matching :meth:`Tracer.annotate`).
        """
        for name, seconds in other.timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + seconds
        for name, n in other.span_counts.items():
            self.span_counts[name] = self.span_counts.get(name, 0) + n
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.annotations.update(other.annotations)
        return self

    def stage_timings(self, ndigits: int = 6) -> Dict[str, float]:
        """The fixed-schema per-stage dict result records carry."""
        return {
            stage: round(self.timings.get(stage, 0.0), ndigits)
            for stage in STAGES
        }

    def format(self) -> str:
        """One human-readable line: stages with time, then counters."""
        stages = ", ".join(
            f"{name} {self.timings[name]:.3f}s"
            for name in STAGES
            if self.timings.get(name)
        )
        counters = ", ".join(
            f"{name}={value}" for name, value in sorted(self.counters.items())
        )
        parts = [p for p in (stages, counters) if p]
        return "; ".join(parts) if parts else "(no telemetry)"


class JsonlSink:
    """Appends structured events to a JSONL file, one dict per line.

    Writes are line-buffered appends; a sink failure must never sink the
    run, so I/O errors disable the sink instead of propagating.
    """

    def __init__(self, path: str) -> None:
        self.path = Path(path)
        self._fh: Optional[Any] = None
        self._dead = False

    def emit(self, payload: Dict[str, Any]) -> None:
        if self._dead:
            return
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
            self._fh.flush()
        except OSError:
            self._dead = True

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


class Tracer:
    """Collects spans, counters, annotations, and events for one extent.

    ``sink`` optionally receives every event as it happens (e.g. a
    :class:`JsonlSink`); ``keep_events=True`` additionally buffers them
    on ``tracer.events`` (bounded by :data:`MAX_EVENTS`, for tests and
    in-process inspection).  The clock is monotonic
    (:func:`time.perf_counter`); event timestamps are offsets from the
    tracer's creation, so event files diff cleanly run to run apart from
    the durations themselves.

    A tracer constructed without an explicit sink inherits the process
    *default sink* (:func:`set_default_sink`) — how a long-lived host
    (the ``nsc-vpe serve`` daemon) wires every tracer the stack creates,
    batch-level and per-job alike, into one live event stream without a
    single call site changing.  With no default set (the normal CLI and
    test case) nothing changes: the sink stays None.
    """

    MAX_EVENTS = 10_000

    def __init__(self, sink: Optional[JsonlSink] = None,
                 keep_events: bool = False) -> None:
        self.sink = sink if sink is not None else _DEFAULT_SINK
        self.keep_events = keep_events
        self.events: List[Dict[str, Any]] = []
        self.timings: Dict[str, float] = {}
        self.span_counts: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self.annotations: Dict[str, Any] = {}
        self._stack: List[str] = []
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time a region under *name*; nests, aggregates, never raises
        on behalf of the instrumentation (the body's exceptions pass
        through untouched, the span still records)."""
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.timings[name] = self.timings.get(name, 0.0) + elapsed
            self.span_counts[name] = self.span_counts.get(name, 0) + 1
            payload = {"type": "span", "name": name, "dur_s": elapsed}
            if parent is not None:
                payload["parent"] = parent
            if attrs:
                payload.update(attrs)
            self._emit(payload)

    def count(self, name: str, n: int = 1) -> None:
        """Increment the monotonic counter *name* by *n*."""
        self.counters[name] = self.counters.get(name, 0) + n

    def annotate(self, key: str, value: Any) -> None:
        """Record a last-write-wins fact about this extent."""
        self.annotations[key] = value

    def event(self, kind: str, **payload: Any) -> None:
        """Emit one structured event to the sink / event buffer."""
        self._emit({"type": kind, **payload})

    def _emit(self, payload: Dict[str, Any]) -> None:
        if self.sink is None and not self.keep_events:
            return
        payload = dict(payload)
        payload.setdefault("t", round(time.perf_counter() - self._t0, 6))
        if self.keep_events and len(self.events) < self.MAX_EVENTS:
            self.events.append(payload)
        if self.sink is not None:
            self.sink.emit(payload)

    # ------------------------------------------------------------------
    def telemetry(self) -> Telemetry:
        """Snapshot the aggregates (the tracer stays usable)."""
        return Telemetry(
            timings=dict(self.timings),
            span_counts=dict(self.span_counts),
            counters=dict(self.counters),
            annotations=dict(self.annotations),
        )


# ----------------------------------------------------------------------
# the process default sink (long-lived hosts' live event stream)
# ----------------------------------------------------------------------
#: Sink inherited by every Tracer constructed without one.  Anything
#: with an ``emit(dict)`` method qualifies (a :class:`JsonlSink`, the
#: server's bounded event buffer, a test double).
_DEFAULT_SINK: Optional[Any] = None


def set_default_sink(sink: Optional[Any]) -> Optional[Any]:
    """Install *sink* as the process default (None uninstalls).

    Returns the previous default so callers can restore it.  Only
    tracers constructed *after* this call inherit the sink; existing
    tracers keep whatever they were built with.
    """
    global _DEFAULT_SINK
    previous = _DEFAULT_SINK
    _DEFAULT_SINK = sink
    return previous


def default_sink() -> Optional[Any]:
    """The currently installed process default sink, or None."""
    return _DEFAULT_SINK


# ----------------------------------------------------------------------
# the active tracer (per-process dynamic scoping)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The tracer activated for the current extent, or None."""
    return _ACTIVE


@contextmanager
def use(tracer: Tracer) -> Iterator[Tracer]:
    """Activate *tracer* for the dynamic extent of the ``with`` body.

    Nesting saves and restores the previous tracer, so a per-job tracer
    inside a batch-level one shadows it only for the job.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Module-level :meth:`Tracer.span` against the active tracer
    (no-op without one — instrumented code never checks)."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.span(name, **attrs):
        yield


def count(name: str, n: int = 1) -> None:
    """Module-level :meth:`Tracer.count` against the active tracer."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)


def annotate(key: str, value: Any) -> None:
    """Module-level :meth:`Tracer.annotate` against the active tracer."""
    if _ACTIVE is not None:
        _ACTIVE.annotate(key, value)


def event(kind: str, **payload: Any) -> None:
    """Module-level :meth:`Tracer.event` against the active tracer."""
    if _ACTIVE is not None:
        _ACTIVE.event(kind, **payload)


__all__ = [
    "STAGES",
    "ZERO_TIMINGS",
    "Telemetry",
    "JsonlSink",
    "Tracer",
    "current",
    "use",
    "span",
    "count",
    "annotate",
    "event",
    "set_default_sink",
    "default_sink",
]
