"""Offline aggregation behind ``nsc-vpe stats``.

Two sources, two aggregators:

- :func:`aggregate_records` folds a result store's job records (the
  ``--results`` JSONL from ``nsc-vpe batch`` / ``sweep``) into one
  summary: per-stage time totals and means, the tier distribution and
  batch-fusion slab mix (how many jobs rode slabs, and how wide),
  cache-hit accounting, fallback count, total measured wall time, and
  the reliability picture — retries by reason, resumed-vs-fresh record
  mix, transport fallbacks (see ``docs/RELIABILITY.md``).
- :func:`aggregate_history` folds a bench history file (``nsc-vpe bench
  --history``) into one summary per ``(scenario, quick)`` series: run
  count, the latest value and rolling median of every guarded metric.

Both return plain JSON-ready dicts; the ``format_*`` twins render the
human-readable report the CLI prints.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from statistics import median
from typing import Any, Dict, List, Sequence

from repro.obs.alerts import HISTORY_METRICS, metric_value
from repro.obs.tracer import STAGES


def aggregate_records(
    records: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold job records into one stats document."""
    timings = {stage: 0.0 for stage in STAGES}
    tiers: Dict[str, int] = {}
    cache = {"hits": 0, "misses": 0}
    slab_sizes: Dict[int, int] = {}
    jobs = ok = fallbacks = 0
    duration_s = 0.0
    retried_jobs = extra_attempts = resumed = transport_fallbacks = 0
    retry_reasons: Dict[str, int] = {}
    for record in records:
        jobs += 1
        if record.get("ok"):
            ok += 1
        attempts = int(record.get("attempts") or 1)
        if attempts > 1:
            retried_jobs += 1
            extra_attempts += attempts - 1
        for reason in record.get("retry_reasons") or ():
            retry_reasons[reason] = retry_reasons.get(reason, 0) + 1
        if record.get("resumed"):
            resumed += 1
        if record.get("transport_fallback"):
            transport_fallbacks += 1
        for stage, seconds in (record.get("timings") or {}).items():
            timings[stage] = timings.get(stage, 0.0) + float(seconds)
        tier = record.get("tier")
        if tier is not None:
            tiers[tier] = tiers.get(tier, 0) + 1
        if record.get("fallback_reason") is not None:
            fallbacks += 1
        if "cache_hit" in record:
            cache["hits" if record["cache_hit"] else "misses"] += 1
        size = record.get("slab_size")
        if size:
            slab_sizes[int(size)] = slab_sizes.get(int(size), 0) + 1
        duration_s += float(record.get("duration_s") or 0.0)
    slabs = {
        "jobs": sum(slab_sizes.values()),
        # each job of slab_size k belonged to a k-wide slab, so k jobs
        # at size k mean one slab ran
        "slabs": sum(n // k for k, n in slab_sizes.items()),
        "sizes": {str(k): n for k, n in sorted(slab_sizes.items())},
    }
    return {
        "jobs": jobs,
        "ok": ok,
        "failed": jobs - ok,
        "duration_s": round(duration_s, 6),
        "timings": {k: round(v, 6) for k, v in timings.items()},
        "timings_mean": {
            k: round(v / jobs, 6) if jobs else 0.0
            for k, v in timings.items()
        },
        "tiers": tiers,
        "slabs": slabs,
        "fallbacks": fallbacks,
        "cache": cache,
        "reliability": {
            "retried_jobs": retried_jobs,
            "extra_attempts": extra_attempts,
            "retry_reasons": {
                k: retry_reasons[k] for k in sorted(retry_reasons)
            },
            "resumed": resumed,
            "fresh": jobs - resumed,
            "transport_fallbacks": transport_fallbacks,
        },
    }


def format_record_stats(stats: Dict[str, Any]) -> str:
    """Human-readable report for :func:`aggregate_records`."""
    lines = [
        f"{stats['jobs']} jobs ({stats['ok']} ok, {stats['failed']} "
        f"failed), {stats['duration_s']:.3f}s measured wall",
    ]
    total = sum(stats["timings"].values())
    for stage in STAGES:
        seconds = stats["timings"].get(stage, 0.0)
        share = seconds / total if total > 0 else 0.0
        lines.append(
            f"  {stage:<10} {seconds:8.3f}s total  "
            f"{stats['timings_mean'].get(stage, 0.0):8.4f}s/job  "
            f"{share:6.1%}"
        )
    if stats["tiers"]:
        tiers = ", ".join(
            f"{tier}={n}" for tier, n in sorted(stats["tiers"].items())
        )
        line = f"  tiers: {tiers}"
        if stats["fallbacks"]:
            line += f" ({stats['fallbacks']} fused->per-issue fallbacks)"
        lines.append(line)
    slabs = stats.get("slabs") or {}
    if slabs.get("jobs"):
        sizes = ", ".join(
            f"{n} jobs @ width {k}"
            for k, n in sorted(
                slabs["sizes"].items(), key=lambda kv: int(kv[0])
            )
        )
        lines.append(
            f"  slabs: {slabs['jobs']} batch-fused jobs across "
            f"{slabs['slabs']} slabs ({sizes})"
        )
    cache = stats["cache"]
    if cache["hits"] or cache["misses"]:
        lines.append(
            f"  cache: {cache['hits']} hits, {cache['misses']} misses"
        )
    rel = stats.get("reliability") or {}
    if rel.get("retried_jobs") or rel.get("resumed") \
            or rel.get("transport_fallbacks"):
        parts = []
        if rel.get("retried_jobs"):
            reasons = ", ".join(
                f"{reason}={n}"
                for reason, n in sorted(rel["retry_reasons"].items())
            )
            parts.append(
                f"{rel['retried_jobs']} retried jobs "
                f"({rel['extra_attempts']} extra attempts"
                + (f"; {reasons}" if reasons else "") + ")"
            )
        if rel.get("resumed"):
            parts.append(
                f"{rel['resumed']} resumed / {rel['fresh']} fresh records"
            )
        if rel.get("transport_fallbacks"):
            parts.append(
                f"{rel['transport_fallbacks']} transport fallbacks"
            )
        lines.append("  reliability: " + ", ".join(parts))
    return "\n".join(lines)


def aggregate_history(
    entries: Sequence[Dict[str, Any]], window: int = 5
) -> List[Dict[str, Any]]:
    """Fold history entries into one summary per (scenario, quick).

    Each summary carries the series' run count and, per guarded metric,
    the latest value plus the median over the newest *window* entries
    (the same trend statistic the alert detector floors against).
    """
    series: Dict[Any, List[Dict[str, Any]]] = {}
    for entry in entries:
        key = (entry["scenario"], bool(entry.get("quick", False)))
        series.setdefault(key, []).append(entry)
    summaries: List[Dict[str, Any]] = []
    for (scenario, quick), items in sorted(series.items()):
        summary: Dict[str, Any] = {
            "scenario": scenario,
            "quick": quick,
            "runs": len(items),
            "metrics": {},
        }
        for metric in HISTORY_METRICS:
            # metric_value skips entries that predate the metric or carry
            # a drifted shape (see repro.obs.alerts) instead of raising
            values = [
                v
                for v in (metric_value(e, metric) for e in items)
                if v is not None
            ]
            if not values:
                continue
            summary["metrics"][metric] = {
                "latest": round(values[-1], 3),
                "median": round(median(values[-window:]), 3),
                "best": round(max(values), 3),
            }
        summaries.append(summary)
    return summaries


def format_history_stats(summaries: Sequence[Dict[str, Any]]) -> str:
    """Human-readable report for :func:`aggregate_history`."""
    if not summaries:
        return "(empty history)"
    lines = []
    for summary in summaries:
        kind = "quick" if summary["quick"] else "full"
        lines.append(
            f"{summary['scenario']} [{kind}]: {summary['runs']} runs"
        )
        for metric, stats in sorted(summary["metrics"].items()):
            lines.append(
                f"  {metric:<20} latest {stats['latest']:.2f}x  "
                f"median {stats['median']:.2f}x  "
                f"best {stats['best']:.2f}x"
            )
    return "\n".join(lines)


__all__ = [
    "aggregate_records",
    "format_record_stats",
    "aggregate_history",
    "format_history_stats",
]
