"""Reproduction of *A Visual Programming Environment for the Navier-Stokes
Computer* (Tomboulian, Crockett & Middleton, ICPP 1988 / ICASE 88-6).

The package implements the full system the paper describes:

- :mod:`repro.arch` — the Navier-Stokes Computer (NSC) node architecture:
  functional units, arithmetic-logic structures (ALSs), register files,
  memory planes, double-buffered caches, shift/delay units, the FLONET
  switch network, DMA controllers, interrupts, and the hyperspace router.
- :mod:`repro.diagram` — the semantic model of a visual program: icons,
  pads, connections, pipeline diagrams, and whole programs.
- :mod:`repro.checker` — the knowledge base and constraint rules used to
  validate diagrams incrementally while editing and globally before
  code generation.
- :mod:`repro.codegen` — the microcode generator: timing/delay balancing,
  switch-setting derivation, microword emission, and a textual
  micro-assembler used for effort comparisons.
- :mod:`repro.sim` — a cycle-level simulator for NSC nodes executing the
  generated microcode, plus a hypercube multi-node layer.
- :mod:`repro.editor` — a headless graphical-editor core (canvas, pop-up
  menus, control panel, undo) with ASCII and SVG renderers that regenerate
  the paper's figures.
- :mod:`repro.compose` — pipeline-construction aids: an expression-graph
  mapper and builders for the paper's point-Jacobi example.
- :mod:`repro.apps` — reference NumPy applications (3-D Poisson) used to
  validate simulated results.
"""

from repro.arch.params import NSCParameters
from repro.arch.node import NodeConfig
from repro.diagram.pipeline import PipelineDiagram
from repro.diagram.program import VisualProgram
from repro.checker.checker import Checker
from repro.codegen.generator import MicrocodeGenerator
from repro.sim.machine import NSCMachine
from repro.editor.session import EditorSession

__version__ = "1.0.0"

__all__ = [
    "NSCParameters",
    "NodeConfig",
    "PipelineDiagram",
    "VisualProgram",
    "Checker",
    "MicrocodeGenerator",
    "NSCMachine",
    "EditorSession",
    "__version__",
]
