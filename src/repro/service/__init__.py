"""Batch simulation job service.

The paper's environment compiles one visual program and runs it on one
simulated node; this package treats simulations as cacheable, schedulable
*jobs*:

- :mod:`repro.service.jobs`    — the :class:`SimJob` spec with stable
  content hashing;
- :mod:`repro.service.cache`   — a compile-once :class:`ProgramCache`
  (in-memory plus an optional on-disk layer) keyed by
  ``(program hash, params hash)``;
- :mod:`repro.service.pool`    — a :class:`WorkerPool` fanning jobs out
  across processes with deterministic result ordering and failure capture;
- :mod:`repro.service.shm`     — the zero-copy shared-memory transport
  (:class:`ShmArena` and friends) that lets grids and result arrays ride
  named segments instead of executor pipes;
- :mod:`repro.service.sweep`   — declarative parameter sweeps expanding
  into job batches;
- :mod:`repro.service.results` — a JSONL result store for later comparison;
- :mod:`repro.service.retry`   — retry policies and transient-vs-permanent
  failure classification;
- :mod:`repro.service.faults`  — deterministic fault injection for chaos
  tests (:class:`FaultPlan`, the ``NSC_VPE_FAULTS`` env hook);
- :mod:`repro.service.runner`  — the orchestrator wiring it together
  (imported lazily to keep spec-only users light).

The ``nsc-vpe batch`` and ``nsc-vpe sweep`` CLI subcommands are the
front door; ``docs/SERVICE.md`` is the cookbook (batch and sweep recipes,
the shared-memory transport, and the ``run_checker`` trusted path) and
``docs/ARCHITECTURE.md`` places this package in the system.
"""

from repro.service.cache import CacheStats, ProgramCache
from repro.service.faults import FaultInjected, FaultPlan, FaultRule
from repro.service.jobs import CHECKER_MODES, JobSpecError, SimJob
from repro.service.pool import WorkerOutcome, WorkerPool
from repro.service.results import ResultStore
from repro.service.retry import RetryPolicy
from repro.service.shm import ShmArena, ShmArrayRef, ShmAttachError
from repro.service.sweep import SweepSpec

__all__ = [
    "CacheStats",
    "ProgramCache",
    "CHECKER_MODES",
    "JobSpecError",
    "SimJob",
    "WorkerOutcome",
    "WorkerPool",
    "ResultStore",
    "RetryPolicy",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "ShmArena",
    "ShmArrayRef",
    "ShmAttachError",
    "SweepSpec",
    "BatchRunner",
    "BatchSummary",
    "TRANSPORTS",
    "execute_job",
    "execute_job_shm",
]


def __getattr__(name):  # lazy: runner pulls in the whole toolchain
    if name in ("BatchRunner", "BatchSummary", "TRANSPORTS",
                "execute_job", "execute_job_shm"):
        from repro.service import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
