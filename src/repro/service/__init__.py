"""Batch simulation job service.

The paper's environment compiles one visual program and runs it on one
simulated node; this package treats simulations as cacheable, schedulable
*jobs*:

- :mod:`repro.service.jobs`    — the :class:`SimJob` spec with stable
  content hashing;
- :mod:`repro.service.cache`   — a compile-once :class:`ProgramCache`
  (in-memory plus an optional on-disk layer) keyed by
  ``(program hash, params hash)``;
- :mod:`repro.service.pool`    — a :class:`WorkerPool` fanning jobs out
  across processes with deterministic result ordering and failure capture;
- :mod:`repro.service.sweep`   — declarative parameter sweeps expanding
  into job batches;
- :mod:`repro.service.results` — a JSONL result store for later comparison;
- :mod:`repro.service.runner`  — the orchestrator wiring it together
  (imported lazily to keep spec-only users light).

The ``nsc-vpe batch`` and ``nsc-vpe sweep`` CLI subcommands are the
front door.
"""

from repro.service.cache import CacheStats, ProgramCache
from repro.service.jobs import JobSpecError, SimJob
from repro.service.pool import WorkerOutcome, WorkerPool
from repro.service.results import ResultStore
from repro.service.sweep import SweepSpec

__all__ = [
    "CacheStats",
    "ProgramCache",
    "JobSpecError",
    "SimJob",
    "WorkerOutcome",
    "WorkerPool",
    "ResultStore",
    "SweepSpec",
    "BatchRunner",
    "BatchSummary",
    "execute_job",
]


def __getattr__(name):  # lazy: runner pulls in the whole toolchain
    if name in ("BatchRunner", "BatchSummary", "execute_job"):
        from repro.service import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
