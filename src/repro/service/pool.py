"""Parallel worker pool with deterministic ordering and failure capture.

Jobs fan out over a :class:`concurrent.futures.ProcessPoolExecutor`;
results always come back in submission order regardless of completion
order, so a batch is reproducible independent of scheduling.  Every job is
wrapped in a :class:`WorkerOutcome`: a worker raising (or timing out) is
*captured*, not propagated — one bad job must never sink the batch.

``max_workers=1`` without a timeout short-circuits to in-process serial
execution: no subprocesses, no pickling, and the caller's objects (e.g.
a shared :class:`~repro.service.cache.ProgramCache`) are used directly.
A timeout always forces the process path — an in-process job cannot be
preempted, so a serial "timeout" would be a lie.

The pool is transport-agnostic: items are whatever the caller's worker
function takes.  The batch runner's pickle transport sends job dicts and
receives whole records (arrays included) through these futures, while
its shm transport sends only :class:`~repro.service.shm.ShmArrayRef`
handles — a few dozen bytes per grid — and moves the arrays through
shared memory instead (see :mod:`repro.service.runner`).
"""

from __future__ import annotations

import concurrent.futures
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracer as obs


@dataclass
class WorkerOutcome:
    """What happened to one item: its value, or the captured failure."""

    index: int
    ok: bool
    value: Any = None
    error: str = ""
    error_type: str = ""
    duration_s: float = 0.0
    traceback: str = field(default="", repr=False)

    @classmethod
    def failure(cls, index: int, exc: BaseException,
                duration_s: float = 0.0) -> "WorkerOutcome":
        return cls(
            index=index,
            ok=False,
            error=str(exc) or type(exc).__name__,
            error_type=type(exc).__name__,
            duration_s=duration_s,
            traceback="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        )


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Tuple[int, Any]]
) -> List[WorkerOutcome]:
    """Worker-side execution of one chunk of (index, item) pairs.

    Top-level so it pickles into pool workers; failures are captured
    per item, exactly like the serial path.
    """
    outcomes: List[WorkerOutcome] = []
    for index, item in chunk:
        start = time.perf_counter()
        try:
            value = fn(item)
        except Exception as exc:
            outcomes.append(WorkerOutcome.failure(
                index, exc, time.perf_counter() - start))
        else:
            outcomes.append(WorkerOutcome(
                index=index, ok=True, value=value,
                duration_s=time.perf_counter() - start))
    return outcomes


class WorkerPool:
    """Fan a function over items across processes.

    ``timeout`` bounds the wait for each job, counted from the moment the
    pool starts waiting on it (earlier jobs' waits overlap later jobs'
    execution, so this is a per-job ceiling, not a global budget).  A
    timed-out job is reported as a failure with ``error_type='TimeoutError'``
    while the remaining jobs are still collected.

    Without a timeout, items are submitted in *chunks* (at most
    ``CHUNKS_PER_WORKER`` futures per worker), so a batch of many small
    jobs pays a handful of executor round-trips instead of one each;
    ordering stays deterministic because chunks are contiguous slices
    collected in submission order.  A timeout forces per-item futures —
    a chunk-level timeout would charge one slow job to its neighbours.
    Ordinary job exceptions are still captured per item inside the
    chunk.

    A *worker crash* (segfault-level — the executor raises
    ``BrokenProcessPool``) is degraded gracefully: the pool rebuilds the
    executor **once** per map call and resubmits only the items whose
    results were genuinely lost, each as its own future, so a repeat
    crash takes down only the item that caused it.  Chunks completed by
    surviving workers always keep their results.  Items still failing
    after the rebuild are reported with ``error_type='BrokenProcessPool'``
    (classified transient by :mod:`repro.service.retry`).
    """

    #: Upper bound on submitted futures per worker in the chunked path:
    #: enough slack for dynamic load balancing, few enough that executor
    #: round-trips stop dominating small-job batches.
    CHUNKS_PER_WORKER = 4

    def __init__(self, max_workers: int = 1,
                 timeout: Optional[float] = None) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.max_workers = max_workers
        self.timeout = timeout
        #: futures submitted by the most recent parallel map (tests use
        #: this to assert the chunked path's throughput shape)
        self.last_submitted = 0
        #: executor rebuilds performed by the most recent map call (at
        #: most one: a BrokenProcessPool recovery)
        self.last_rebuilds = 0
        #: still-pending futures cancelled at the end of the most recent
        #: timeout-path map (stragglers that would otherwise stall
        #: executor shutdown)
        self.last_stragglers = 0

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any],
            items: Sequence[Any]) -> List[WorkerOutcome]:
        """Apply ``fn`` to every item; outcomes ordered like ``items``."""
        self.last_rebuilds = 0
        self.last_stragglers = 0
        if not items:
            return []
        if self.timeout is None and (self.max_workers == 1
                                     or len(items) == 1):
            return self._map_serial(fn, items)
        return self._map_parallel(fn, items)

    # ------------------------------------------------------------------
    def _map_serial(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[WorkerOutcome]:
        outcomes: List[WorkerOutcome] = []
        for index, item in enumerate(items):
            start = time.perf_counter()
            try:
                value = fn(item)
            except Exception as exc:
                outcomes.append(WorkerOutcome.failure(
                    index, exc, time.perf_counter() - start))
            else:
                outcomes.append(WorkerOutcome(
                    index=index, ok=True, value=value,
                    duration_s=time.perf_counter() - start))
        return outcomes

    @staticmethod
    def _lost_to_break(future: "concurrent.futures.Future") -> bool:
        """Did this future lose its result to the pool break?  Futures
        that completed (value or an ordinary job exception) before the
        crash keep what they have and are not resubmitted."""
        if not future.done() or future.cancelled():
            return True
        return isinstance(future.exception(), BrokenProcessPool)

    def _map_parallel(self, fn: Callable[[Any], Any],
                      items: Sequence[Any]) -> List[WorkerOutcome]:
        if self.timeout is None:
            return self._map_chunked(fn, items)
        workers = min(self.max_workers, len(items))
        outcomes: Dict[int, WorkerOutcome] = {}
        executor = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        timed_out = False
        futures: Dict[int, "concurrent.futures.Future"] = {}
        try:
            start = time.perf_counter()
            futures = {
                index: executor.submit(fn, item)
                for index, item in enumerate(items)
            }
            self.last_submitted = len(futures)
            pending = list(range(len(items)))
            while pending:
                index = pending.pop(0)
                future = futures[index]
                try:
                    value = future.result(timeout=self.timeout)
                except concurrent.futures.TimeoutError:
                    timed_out = True
                    future.cancel()
                    outcomes[index] = WorkerOutcome(
                        index=index, ok=False,
                        error=f"job exceeded {self.timeout:g}s",
                        error_type="TimeoutError",
                        duration_s=time.perf_counter() - start)
                except BrokenProcessPool as exc:
                    if self.last_rebuilds:
                        # already rebuilt once: report this item and let
                        # the loop drain the rest (their futures fail
                        # instantly on the same broken pool)
                        outcomes[index] = WorkerOutcome.failure(index, exc)
                        continue
                    # rebuild the executor once and resubmit only the
                    # items whose results the crash actually lost
                    self.last_rebuilds += 1
                    obs.count("pool.rebuild")
                    lost = [
                        j for j in [index] + pending
                        if self._lost_to_break(futures[j])
                    ]
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=min(workers, len(lost)))
                    for j in lost:
                        futures[j] = executor.submit(fn, items[j])
                    pending.insert(0, index)
                except Exception as exc:
                    outcomes[index] = WorkerOutcome.failure(
                        index, exc, time.perf_counter() - start)
                else:
                    outcomes[index] = WorkerOutcome(
                        index=index, ok=True, value=value,
                        duration_s=time.perf_counter() - start)
        finally:
            # cancel stragglers (futures still pending after their batch
            # already failed) so shutdown cannot block on them
            stragglers = [
                future for future in futures.values() if not future.done()
            ]
            self.last_stragglers = len(stragglers)
            for future in stragglers:
                future.cancel()
            if timed_out:
                # a graceful shutdown would join the hung workers; kill
                # them so one stuck job cannot stall the whole batch
                for proc in list(getattr(executor, "_processes", {}).values()):
                    proc.terminate()
            executor.shutdown(wait=not timed_out, cancel_futures=True)
        return [outcomes[index] for index in range(len(items))]

    def _map_chunked(self, fn: Callable[[Any], Any],
                     items: Sequence[Any]) -> List[WorkerOutcome]:
        workers = min(self.max_workers, len(items))
        max_futures = workers * self.CHUNKS_PER_WORKER
        chunk_size = -(-len(items) // max_futures)  # ceil division
        indexed = list(enumerate(items))
        chunks = [
            indexed[i : i + chunk_size]
            for i in range(0, len(indexed), chunk_size)
        ]
        outcomes: List[WorkerOutcome] = []
        lost: List[Tuple[int, Any]] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as executor:
            futures = [
                executor.submit(_run_chunk, fn, chunk) for chunk in chunks
            ]
            self.last_submitted = len(futures)
            # collect every future even after a pool break: chunks that
            # finished before a worker died still hold their results, so
            # only genuinely lost chunks queue for the rebuild
            for position, future in enumerate(futures):
                try:
                    outcomes.extend(future.result())
                except BrokenProcessPool:
                    lost.extend(chunks[position])
                except Exception as exc:
                    for index, _item in chunks[position]:
                        outcomes.append(WorkerOutcome.failure(index, exc))
        if lost:
            # rebuild the executor once and resubmit the lost items,
            # each as its own chunk: a repeat crash then takes down only
            # the item that caused it, not its neighbours
            self.last_rebuilds += 1
            obs.count("pool.rebuild")
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(lost))
            ) as executor:
                retries = [
                    executor.submit(_run_chunk, fn, [pair]) for pair in lost
                ]
                for pair, future in zip(lost, retries):
                    try:
                        outcomes.extend(future.result())
                    except Exception as exc:
                        outcomes.append(WorkerOutcome.failure(pair[0], exc))
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes


__all__ = ["WorkerPool", "WorkerOutcome"]
