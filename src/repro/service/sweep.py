"""Declarative parameter sweeps.

A :class:`SweepSpec` names axes — grid sizes, solver methods, hypercube
dimensions, subset-vs-full machines — and expands their cross product into
a deterministic, validated list of :class:`SimJob`.  Combinations the
machine cannot run (a multi-node grid whose z-extent does not divide
across the node count, or a non-Jacobi solver on the multi-node path) are
skipped and *counted*, never silently absorbed, so the expansion size is
always explainable.

``repeats > 1`` schedules the whole grid again; repeated jobs are exact
content-hash duplicates, which is how a sweep demonstrates the
:class:`~repro.service.cache.ProgramCache` (every repeat is a hit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.service.jobs import (
    BACKENDS,
    CHECKER_MODES,
    METHODS,
    JobSpecError,
    SimJob,
)


@dataclass(frozen=True)
class SweepSpec:
    """Axes and shared settings for one sweep.

    ``backend``, ``run_checker``, and ``batch_fusion`` are shared
    settings, not axes: a sweep runs entirely on one execution backend,
    one checker-gating mode, and one fusion policy (jobs carry the first
    two so the records say which; ``batch_fusion`` is consumed by the
    :class:`~repro.service.runner.BatchRunner` the sweep is fed to).

    ``seeds`` is the per-job initial-guess axis: each seed adds a
    ``u0_seed`` variant of every combination (innermost, so same-program
    jobs sit adjacently).  Seeded jobs share one compiled program but
    converge in different iteration counts — the sweep shape batch
    fusion slabs are built for.  Empty (default) keeps the single
    zero-start job per combination.

    ``max_attempts``/``backoff_base`` are shared retry settings stamped
    onto every job (see :class:`~repro.service.retry.RetryPolicy`);
    like ``label``, they are excluded from job identity, so a retrying
    sweep and a no-retry sweep produce the same ``job_id``\\ s — and,
    absent permanent failures, the same store digest."""

    grids: Tuple[int, ...] = (7,)
    methods: Tuple[str, ...] = ("jacobi",)
    dims: Tuple[int, ...] = (0,)
    subset: Tuple[bool, ...] = (False,)
    seeds: Tuple[int, ...] = ()
    eps: float = 1e-4
    max_sweeps: int = 10_000
    omega: float = 1.5
    repeats: int = 1
    backend: str = "reference"
    run_checker: str = "auto"
    batch_fusion: str = "off"
    max_attempts: int = 1
    backoff_base: float = 0.0

    def __post_init__(self) -> None:
        from repro.service.runner import BATCH_FUSION_MODES

        if self.repeats < 1:
            raise JobSpecError("repeats must be >= 1")
        if self.backend not in BACKENDS:
            raise JobSpecError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.run_checker not in CHECKER_MODES:
            raise JobSpecError(
                f"unknown run_checker {self.run_checker!r}; "
                f"expected one of {CHECKER_MODES}"
            )
        if self.batch_fusion not in BATCH_FUSION_MODES:
            raise JobSpecError(
                f"unknown batch_fusion {self.batch_fusion!r}; "
                f"expected one of {BATCH_FUSION_MODES}"
            )
        if not self.grids or not self.methods or not self.dims or not self.subset:
            raise JobSpecError("every sweep axis needs at least one value")
        for m in self.methods:
            if m not in METHODS or m == "program":
                raise JobSpecError(
                    f"sweep methods must be builder solvers, got {m!r}"
                )
        for n in self.grids:
            if int(n) < 3:
                raise JobSpecError(f"grid size {n} below solver minimum of 3")
        for d in self.dims:
            if int(d) < 0:
                raise JobSpecError(f"hypercube dim {d} must be >= 0")
        for s in self.seeds:
            if int(s) < 0:
                raise JobSpecError(f"seed {s} must be >= 0")
        if int(self.max_attempts) < 1:
            raise JobSpecError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if float(self.backoff_base) < 0:
            raise JobSpecError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )

    # ------------------------------------------------------------------
    @property
    def axis_product(self) -> int:
        """Size of the raw cross product, before validity filtering."""
        return (len(self.grids) * len(self.methods) * len(self.dims)
                * len(self.subset) * max(len(self.seeds), 1) * self.repeats)

    def expand(self) -> List[SimJob]:
        """The job batch, in deterministic nested-axis order (repeats are
        the outermost axis so a second pass replays the whole grid)."""
        jobs, _ = self._expand_with_skips()
        return jobs

    def skipped(self) -> Dict[str, int]:
        """Counts of cross-product combinations dropped, by reason."""
        _, skips = self._expand_with_skips()
        return skips

    def _expand_with_skips(self) -> Tuple[List[SimJob], Dict[str, int]]:
        jobs: List[SimJob] = []
        skips: Dict[str, int] = {}

        def skip(reason: str) -> None:
            skips[reason] = skips.get(reason, 0) + 1

        for rep in range(self.repeats):
            for sub in self.subset:
                for dim in self.dims:
                    for method in self.methods:
                        for n in self.grids:
                            n = int(n)
                            dim = int(dim)
                            if dim > 0 and method != "jacobi":
                                skip("multinode-supports-jacobi-only")
                                continue
                            if dim > 0 and n % (1 << dim) != 0:
                                skip("grid-not-divisible-across-nodes")
                                continue
                            for seed in (self.seeds or (None,)):
                                if seed is not None and dim > 0:
                                    skip("seeds-apply-to-single-node-only")
                                    continue
                                label = f"{method}-n{n}-d{dim}"
                                if sub:
                                    label += "-subset"
                                if self.backend != "reference":
                                    label += f"-{self.backend}"
                                if seed is not None:
                                    label += f"-s{seed}"
                                if self.repeats > 1:
                                    label += f"#r{rep}"
                                jobs.append(SimJob(
                                    method=method,
                                    shape=(n, n, n),
                                    eps=self.eps,
                                    max_sweeps=self.max_sweeps,
                                    omega=self.omega,
                                    subset=sub,
                                    hypercube_dim=dim,
                                    backend=self.backend,
                                    run_checker=self.run_checker,
                                    u0_seed=seed,
                                    max_attempts=self.max_attempts,
                                    backoff_base=self.backoff_base,
                                    label=label,
                                ))
        return jobs, skips

    def describe(self) -> str:
        jobs, skips = self._expand_with_skips()
        axes = (
            f"{len(self.grids)} grids x {len(self.methods)} methods x "
            f"{len(self.dims)} dims x {len(self.subset)} machines x "
        )
        if self.seeds:
            axes += f"{len(self.seeds)} seeds x "
        parts = [f"{len(jobs)} jobs ({axes}{self.repeats} repeats)"]
        for reason, count in sorted(skips.items()):
            parts.append(f"skipped {count}: {reason}")
        return "; ".join(parts)


__all__ = ["SweepSpec"]
