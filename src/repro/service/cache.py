"""Compile-once program cache.

Microcode generation (checking, FU allocation, microword emission) is the
expensive, perfectly deterministic step of every job, so the service caches
its output keyed by :meth:`SimJob.cache_key` — the pair of program and
parameter hashes.  Two layers:

- an in-memory dict, shared by all jobs executed in one process (the
  serial runner and each pool worker get one each);
- an optional on-disk pickle directory, shared *across* processes and
  sessions, so a parallel pool or a re-run of the same sweep still skips
  compilation.

Values are opaque to the cache; the runner stores
``(setup, MachineProgram)`` pairs.  Disk entries are written atomically
(tmp file + rename) and unreadable entries are treated as misses.

Alongside the compiled entries lives a *verified registry*: for every
cache key whose compile ran the design-rule checker, the fingerprint of
the microcode that checked clean.  The runner's ``run_checker="auto"``
trusted path consults it to skip :meth:`Checker.check_program` on
recompiles of already-vetted ``(program, machine)`` pairs — and because
the registry records the expected *fingerprint*, a skipped check is still
verified after the fact (a mismatch triggers a checked recompile rather
than silent trust).

A third layer holds *execution plans*: the whole-program schedules the
compiled engine (:mod:`repro.sim.progplan`) builds on top of a compiled
program.  Plans hold closures and scratch structure, so they are
memory-only; every :class:`ProgramCache` shares the
process-wide :data:`repro.sim.fastpath.PLAN_CACHE`, which is exactly the
cache the simulator consults at run time — warming it here is warming
the engine.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.obs import tracer as obs
from repro.sim.fastpath import PLAN_CACHE


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced in batch summaries."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0  # subset of hits satisfied from the disk layer
    checks_skipped: int = 0  # compiles that rode the verified registry
    static_clean: int = 0  # compiles vetted by the static analyzer alone

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "checks_skipped": self.checks_skipped,
            "static_clean": self.static_clean,
        }

    def format(self) -> str:
        return (
            f"{self.hits} hits ({self.disk_hits} from disk), "
            f"{self.misses} misses"
        )


class ProgramCache:
    """Memoizes compiled programs by content key.

    ``plans`` is the plan layer: the process-wide
    :data:`~repro.sim.fastpath.PLAN_CACHE`, keyed by program fingerprint
    + params.  It is deliberately the same object the execution engine
    consults at run time — warming it through :meth:`warm_plan` is
    warming the engine.
    """

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self._mem: Dict[str, Any] = {}
        self._verified: Dict[str, str] = {}
        self._static: Dict[str, Dict[str, Any]] = {}
        self.disk_dir = Path(disk_dir) if disk_dir else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.plans = PLAN_CACHE

    # ------------------------------------------------------------------
    def get_or_compile(self, key: str, compile_fn: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, compiling on first sight.

        The whole lookup-or-compile rides the active tracer's
        ``compile`` span (near-zero on a hit), with ``cache.*`` counters
        mirroring :attr:`stats` into per-extent telemetry.
        """
        with obs.span("compile"):
            if key in self._mem:
                self.stats.hits += 1
                obs.count("cache.hit")
                return self._mem[key]
            value = self._load_disk(key)
            if value is not None:
                self._mem[key] = value
                self.stats.hits += 1
                self.stats.disk_hits += 1
                obs.count("cache.hit")
                obs.count("cache.disk_hit")
                return value
            value = compile_fn()
            self.stats.misses += 1
            obs.count("cache.miss")
            self._mem[key] = value
            self._store_disk(key, value)
            return value

    # ------------------------------------------------------------------
    # plan layer
    # ------------------------------------------------------------------
    def warm_plan(self, program: Any, params: Any) -> Optional[Any]:
        """Compile (or fetch) the whole-program execution plan.

        Populates the shared plan cache so the machine's ``"fast"``
        backend starts fused on its first run.  Returns the plan, or
        None when the program cannot be fused (the engine will use the
        per-issue path — not an error).
        """
        from repro.sim.progplan import FusionUnsupported, compiled_plan

        with obs.span("plan_warm"):
            try:
                return compiled_plan(program, params)
            except FusionUnsupported:
                return None

    # ------------------------------------------------------------------
    # verified registry (the run_checker="auto" trusted path)
    # ------------------------------------------------------------------
    def verified_fingerprint(self, key: str) -> Optional[str]:
        """Fingerprint recorded by a checker-validated compile of ``key``,
        or None if this ``(program, machine)`` pair was never vetted."""
        if key in self._verified:
            return self._verified[key]
        path = self._verified_path(key)
        if path is None or not path.exists():
            return None
        try:
            fingerprint = path.read_text(encoding="utf-8").strip()
        except OSError:
            return None
        if fingerprint:
            self._verified[key] = fingerprint
            return fingerprint
        return None

    def mark_verified(self, key: str, fingerprint: str) -> None:
        """Record that ``key``'s program checked clean and compiled to
        ``fingerprint`` (persisted when a disk layer is configured)."""
        self._verified[key] = fingerprint
        path = self._verified_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(fingerprint)
            os.replace(tmp, path)
        except Exception:
            pass  # the registry is an optimisation; never sink a job

    def clear_verified(self) -> None:
        """Forget every trust mark (in-memory and on-disk)."""
        self._verified.clear()
        if self.disk_dir is None:
            return
        for path in (self.disk_dir / "verified").glob("*.fp"):
            try:
                path.unlink()
            except OSError:
                pass

    def _verified_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / "verified" / f"{key}.fp"

    # ------------------------------------------------------------------
    # static-analysis registry (the run_checker="static" trusted path)
    # ------------------------------------------------------------------
    def record_static(self, key: str, verdict: Any) -> None:
        """Record ``key``'s static-analysis verdict next to its trust mark.

        ``verdict`` is an :class:`repro.analysis.AnalysisVerdict`; the
        serialized form persists when a disk layer is configured, so a
        later process (or ``nsc-vpe analyze``) can read why a program
        was — or was not — statically trusted without re-analyzing.
        """
        payload = verdict.to_dict()
        self._static[key] = payload
        path = self._static_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except Exception:
            pass  # the registry is an optimisation; never sink a job

    def static_verdict(self, key: str) -> Optional[Dict[str, Any]]:
        """The recorded verdict dict for ``key``, or None."""
        if key in self._static:
            return self._static[key]
        path = self._static_path(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        self._static[key] = payload
        return payload

    def _static_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / "analysis" / f"{key}.json"

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        if key in self._mem:
            return True
        path = self._disk_path(key)
        return path is not None and path.exists()

    def __len__(self) -> int:
        return len(self._mem)

    def clear(self) -> None:
        """Drop the in-memory compiled layer.  Disk entries and the
        verified registry are left alone — forgetting a compiled program
        does not unvet it (use :meth:`clear_verified` for that)."""
        self._mem.clear()

    # ------------------------------------------------------------------
    # disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.pkl"

    def _load_disk(self, key: str) -> Optional[Any]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except Exception:
            return None  # corrupt/partial entry: recompile and overwrite

    def _store_disk(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.disk_dir), suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh)
            os.replace(tmp, path)
        except Exception:
            # the cache is an optimisation; never let it sink a job
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass


__all__ = ["ProgramCache", "CacheStats"]
