"""Slab execution: one batch-fused run for N same-program service jobs.

The per-job path (:func:`repro.service.runner.execute_job`) pays machine
construction, input loading, state pull/commit, and record assembly once
per job even when every job in a sweep compiles to the *same* program on
the *same* machine parameters.  This module collapses that: fusable jobs
group into **slabs** (:func:`slab_groups`), one *template* machine is
built and loaded once, its pulled planes broadcast into stacked
``(n_jobs, extent)`` storage, each job's seeded initial guess overwrites
its own ``u`` row (the solver loaders write ``u0`` verbatim, so a row
overwrite reproduces ``entry.load`` exactly), and a single
:class:`~repro.sim.batchplan.BatchProgramRun` sweeps the whole stack.
Records are then synthesized per job without ever instantiating per-job
machines — cycles, DMA words, and interrupt-delivery counts all come
from the slab engine's analytic per-job accounting, bit-identical to
what ``machine.metrics(result)`` reports on the per-job fused path.

Anything that stops a slab — an unfusable program, mixed parameters
(those never group), a mid-run decline such as a non-finite value — is
returned as a *reason* and the caller re-runs every member job through
:func:`execute_job`; the slab mutated nothing shared, so the fallback is
exact (the PR 5 commit-point contract, one level up).

Observability: each slab job's record is stamped ``tier="batch_fused"``
and ``slab_size``; counters ``tier.batch_fused`` (per job) and
``slab.formed`` / ``slab.jobs`` (per batch) feed ``nsc-vpe stats``'s
tier mix, and shared bind/execute wall time is apportioned equally
across member jobs' stage timings so per-stage aggregates stay
meaningful.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import tracer as obs
from repro.service.cache import ProgramCache
from repro.service.jobs import SimJob


def slab_groups(jobs: Sequence[SimJob]) -> List[List[int]]:
    """Index groups of fusable same-program jobs, in first-seen order.

    Eligible jobs run a builder solver on a single simulated node with
    the fast backend; grouping on :meth:`SimJob.cache_key` guarantees
    identical compiled microcode *and* identical machine parameters.
    Singleton groups are dropped — a slab of one is just overhead.
    """
    groups: Dict[str, List[int]] = {}
    for i, job in enumerate(jobs):
        if (
            job.backend != "fast"
            or job.hypercube_dim != 0
            or job.method == "program"
        ):
            continue
        groups.setdefault(job.cache_key(), []).append(i)
    return [idxs for idxs in groups.values() if len(idxs) >= 2]


def execute_slab(
    jobs: Sequence[SimJob], cache: ProgramCache
) -> Tuple[Optional[List[Dict[str, Any]]], Optional[str]]:
    """Run one fusable group as a slab.

    Returns ``(records, None)`` on success — one record per job, in
    order, matching :func:`execute_job`'s schema plus ``slab_size`` —
    or ``(None, reason)`` when the slab declines, in which case nothing
    observable has changed and the caller runs each job individually.
    """
    from repro.sim.progplan import FusionUnsupported

    try:
        return _execute_slab(jobs, cache), None
    except FusionUnsupported as exc:
        reason = str(exc)
    except Exception as exc:  # pragma: no cover - defensive
        # a slab must never be able to fail a batch: anything unexpected
        # routes every member through the authoritative per-job path
        reason = f"{type(exc).__name__}: {exc}"
    obs.count("batch_fusion.fallback")
    obs.event("batch_fusion_fallback", scope="slab", jobs=len(jobs),
              reason=reason)
    return None, reason


def _execute_slab(
    jobs: Sequence[SimJob], cache: ProgramCache
) -> List[Dict[str, Any]]:
    from repro.apps.poisson3d import manufactured_solution
    from repro.arch.node import NodeConfig
    from repro.compose.registry import SOLVERS
    from repro.sim.batchplan import (
        BatchProgramRun,
        delivered_count,
        machine_bindings,
        stacked_template_storage,
    )
    from repro.sim.machine import NSCMachine
    from repro.sim.metrics import RunMetrics
    from repro.sim.progplan import FusionUnsupported, compiled_plan
    from repro.service.runner import (
        _compile_single,
        _field_shape,
        _initial_grid,
        _obtain_program,
    )

    n_jobs = len(jobs)
    job0 = jobs[0]
    node = NodeConfig(job0.params())
    params = node.params

    # --- per-job compile stage (preserves cache-hit deltas and checker
    # stamps exactly as N per-job runs would produce them) -------------
    tracers = [obs.Tracer() for _ in jobs]
    records: List[Dict[str, Any]] = []
    checkers: List[Optional[str]] = []
    value = None
    for job, tracer in zip(jobs, tracers):
        record: Dict[str, Any] = {
            "job_id": job.job_id,
            "label": job.describe(),
            "method": job.method,
            "shape": list(job.shape),
            "eps": job.eps,
            "subset": job.subset,
            "hypercube_dim": job.hypercube_dim,
            "backend": job.backend,
            "cache_key": job.cache_key(),
        }
        hits_before = cache.stats.hits
        lookups_before = cache.stats.lookups
        with obs.use(tracer):
            value, checker = _obtain_program(
                job, cache,
                lambda check, j=job: _compile_single(j, node, check),
            )
        if cache.stats.lookups > lookups_before:
            record["cache_hit"] = cache.stats.hits > hits_before
        checkers.append(checker)
        records.append(record)
    setup, program = value
    if setup is None:  # pragma: no cover - "program" jobs never group
        raise FusionUnsupported("saved programs have no slab loader")

    # --- shared bind: plan, template machine, stacked storage ---------
    bind_start = time.perf_counter()
    plan = compiled_plan(program, params)
    entry = SOLVERS[job0.method]
    u_star, f, _h = manufactured_solution(job0.shape, h=setup.h)
    template = NSCMachine(node, backend="fast")
    template.load_program(program)
    entry.load(template, setup, np.zeros(job0.shape), f)
    watch = entry.watch_pipeline(setup)
    variables, armed = machine_bindings(plan, template)
    if "u" not in variables:
        raise FusionUnsupported("solver state variable 'u' not in plan")
    storage = stacked_template_storage(plan, template, n_jobs)
    storage.variables = variables
    uvar = variables["u"]
    u_plane = storage.planes[uvar.plane]
    for j, job in enumerate(jobs):
        if job.u0_seed is not None:
            # the loaders write u0 verbatim (see load_jacobi_inputs /
            # load_rbsor_inputs), so the row overwrite IS entry.load
            u_plane[j, uvar.offset:uvar.end] = _initial_grid(job).reshape(-1)
    run = BatchProgramRun(plan, storage, n_jobs, max_instructions=1_000_000)
    bind_s = time.perf_counter() - bind_start

    # --- one fused execution over the whole stack ---------------------
    exec_start = time.perf_counter()
    results = run.run()  # FusionUnsupported propagates to execute_slab
    exec_s = time.perf_counter() - exec_start

    # --- per-job record synthesis (no machines) -----------------------
    obs.count("slab.formed")
    obs.count("slab.jobs", n_jobs)
    fingerprint = program.fingerprint()
    field_shape = _field_shape(job0)
    # the final u plane may have been reference-swapped; re-resolve
    u_plane = storage.planes[uvar.plane]
    for j, (job, tracer, record) in enumerate(zip(jobs, tracers, records)):
        result = results[j]
        tracer.timings["bind"] = tracer.timings.get("bind", 0.0) \
            + bind_s / n_jobs
        tracer.timings["execute"] = tracer.timings.get("execute", 0.0) \
            + exec_s / n_jobs
        metrics = RunMetrics(
            cycles=result.total_cycles,
            instructions=result.instructions_issued,
            flops=result.total_flops,
            words_moved=run.words_read[j] + run.words_written[j],
            clock_mhz=params.clock_mhz,
            peak_mflops=params.peak_mflops_per_node,
            n_fus=node.n_fus,
            active_fu_cycles=sum(
                r.active_fus * r.vector_length
                for r in result.pipeline_results
            ),
            interrupts_delivered=delivered_count(run.irq_logs[j], armed),
        )
        record.update({
            "converged": bool(result.converged)
            if result.converged is not None else None,
            "sweeps": result.loop_iterations.get(watch, 0)
            if watch is not None else 0,
            "cycles": result.total_cycles,
            "program_fingerprint": fingerprint,
            "metrics": metrics.summary(),
        })
        if checkers[j] is not None:
            record["checker"] = checkers[j]
        u = u_plane[j, uvar.offset:uvar.end].reshape(field_shape)
        record["error_vs_analytic"] = float(np.max(np.abs(u - u_star)))
        if job.keep_fields:
            with obs.use(tracer), obs.span("transport"):
                record["fields"] = {"u": np.array(u, dtype=np.float64)}
        with obs.use(tracer):
            obs.count("tier.batch_fused")
            obs.annotate("tier", "batch_fused")
        telemetry = tracer.telemetry()
        record["ok"] = True
        record["timings"] = telemetry.stage_timings()
        record["tier"] = telemetry.annotations.get("tier")
        record["slab_size"] = n_jobs
    return records


__all__ = ["execute_slab", "slab_groups"]
