"""Zero-copy shared-memory transport for the batch service.

The paper's machine gets its throughput from keeping data in place while
programs stream over it; the batch service does the same across *process*
boundaries.  Instead of pickling grids and result arrays through the
executor's pipes, the parent maps them into named
:mod:`multiprocessing.shared_memory` segments:

- **input segments** are written once per distinct grid shape (the
  manufactured problem ``u_star``/``f`` arrays) and attached *read-only*
  by every worker that needs them — a batch of same-shape jobs shares one
  copy of its inputs instead of regenerating them per job;
- **output segments** are preallocated by the parent (field shapes and
  dtypes are known from the job spec), attached writable by the worker,
  and filled in place — the parent reads the result without a single byte
  crossing a pipe.

Ownership is strictly parent-side: the :class:`ShmArena` that created the
segments closes *and unlinks* every one of them in
:meth:`ShmArena.destroy`, which the runner calls in a ``finally`` block —
a worker crash or timeout can therefore never leak a segment (the OS
releases the dead worker's mappings; the names are gone once the arena is
destroyed).  Workers hold attachments only inside a ``with``
(:func:`attached`) and never unlink.

A :class:`ShmArrayRef` is the picklable coordinate of one array — segment
name, shape, dtype — small enough that task payloads stay cheap no matter
how large the grids are.

See ``docs/SERVICE.md`` for the user-facing knobs
(``BatchRunner(transport="shm")``, ``SimJob(keep_fields=True)``) and
``nsc-vpe bench --scenarios batch_shm`` for the measured speedup over the
pickling pool.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Tuple

import numpy as np


class ShmAttachError(FileNotFoundError):
    """A worker could not attach a named segment (gone, or injected).

    Subclasses :class:`FileNotFoundError` because a vanished name *is*
    a missing file to the caller; the distinct type lets the retry
    layer classify attach failures as transient
    (:data:`repro.service.retry.TRANSIENT_ERROR_TYPES`) and lets the
    runner demote the batch to the pickle transport.
    """


@dataclass(frozen=True)
class ShmArrayRef:
    """Picklable handle to one array living in a named shared segment."""

    segment: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))

    def as_array(self, buf) -> np.ndarray:
        """View ``buf`` (a segment's memory) as this ref's array."""
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=buf)


#: Whether this process shares its parent's resource tracker (decided on
#: the first attach and cached: the discriminator — "was a tracker
#: already running before this process attached anything?" — is only
#: meaningful once per process).
_TRACKER_INHERITED: "bool | None" = None


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without taking ownership of its cleanup.

    Attachers must never unlink: the creating :class:`ShmArena` owns the
    name.  Python 3.13+ supports ``track=False`` directly.  Earlier
    versions register every attachment with the ``resource_tracker``;
    what to do about that depends on whose tracker this process talks to:

    - a *forked* pool worker (and the parent itself) shares the parent's
      tracker, where registrations collapse by name into one entry that
      the arena's ``unlink`` will retire — unregistering here too would
      double-release it and spray KeyErrors from the tracker daemon;
    - a *spawned* worker runs its own tracker, which would "helpfully"
      unlink the parent's still-live segments when the worker exits — so
      there every attachment's registration is undone by hand.  The case
      is recognised by no tracker running before this process's first
      attach (a forked worker inherits a running one), and the verdict
      cached so every later attachment in the process behaves the same.
    """
    global _TRACKER_INHERITED
    try:
        try:
            return shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            pass
        from multiprocessing import resource_tracker

        if _TRACKER_INHERITED is None:
            _TRACKER_INHERITED = getattr(
                resource_tracker._resource_tracker, "_fd", None
            ) is not None
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        # the name is gone (arena destroyed, or never reached this
        # host) — surface the transient-classifiable attach error
        raise ShmAttachError(
            f"cannot attach shm segment {name!r}: {exc}"
        ) from exc
    if not _TRACKER_INHERITED:
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    return seg


@contextmanager
def attached(ref: ShmArrayRef, readonly: bool = True) -> Iterator[np.ndarray]:
    """Worker-side attachment: yield the ref's array, detach on exit.

    The yielded array is a view into the segment and is only valid inside
    the ``with`` block — copy anything that must outlive it.  ``readonly``
    clears the numpy writeable flag (input segments are shared across
    workers; nobody gets to scribble on them).
    """
    seg = _attach_segment(ref.segment)
    try:
        array = ref.as_array(seg.buf)
        if readonly:
            array.flags.writeable = False
        yield array
        del array  # drop the buffer view before closing the mapping
    finally:
        seg.close()


class ShmArena:
    """Parent-side allocator and owner of a batch's shared segments.

    One arena serves one :meth:`BatchRunner.run` call: inputs are
    :meth:`place`\\ d, outputs :meth:`allocate`\\ d, workers attach by
    :class:`ShmArrayRef`, and :meth:`destroy` (always reached via
    ``finally``) closes and unlinks everything.  Usable as a context
    manager for the same guarantee.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    # ------------------------------------------------------------------
    def place(self, array: np.ndarray) -> ShmArrayRef:
        """Copy ``array`` into a fresh segment; returns its ref."""
        array = np.ascontiguousarray(array)
        ref, view = self._new_segment(array.shape, array.dtype)
        view[...] = array
        return ref

    def allocate(self, shape: Tuple[int, ...],
                 dtype: str = "float64") -> ShmArrayRef:
        """Preallocate a zero-filled output segment; returns its ref."""
        ref, view = self._new_segment(tuple(shape), np.dtype(dtype))
        view[...] = 0
        return ref

    def _new_segment(
        self, shape: Tuple[int, ...], dtype: np.dtype
    ) -> Tuple[ShmArrayRef, np.ndarray]:
        nbytes = max(1, int(dtype.itemsize * int(np.prod(shape))))
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments[seg.name] = seg
        ref = ShmArrayRef(segment=seg.name, shape=tuple(int(s) for s in shape),
                          dtype=dtype.name)
        return ref, ref.as_array(seg.buf)

    # ------------------------------------------------------------------
    def view(self, ref: ShmArrayRef) -> np.ndarray:
        """Zero-copy view of an arena-owned array (valid until destroy)."""
        seg = self._segments[ref.segment]
        return ref.as_array(seg.buf)

    def materialize(self, ref: ShmArrayRef) -> np.ndarray:
        """Copy an arena-owned array out into ordinary process memory,
        so it survives :meth:`destroy` (one local memcpy — no pickling,
        no pipe)."""
        return np.array(self.view(ref))

    @property
    def names(self) -> List[str]:
        """Names of every live segment this arena owns."""
        return list(self._segments)

    @property
    def nbytes(self) -> int:
        """Total bytes currently mapped by this arena."""
        return sum(seg.size for seg in self._segments.values())

    # ------------------------------------------------------------------
    def release(self, names: List[str]) -> None:
        """Close and unlink just the named segments, keeping the arena
        alive.  This is the long-lived host's cleanup: the ``nsc-vpe
        serve`` daemon holds one persistent arena across batches and
        releases each batch's segments when it finishes, so the arena
        object (and the process's resource-tracker setup) is paid for
        once, not per request.  Unknown names are ignored — releasing is
        idempotent like :meth:`destroy`."""
        for name in names:
            seg = self._segments.pop(name, None)
            if seg is None:
                continue
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    def destroy(self) -> None:
        """Close and unlink every segment.  Idempotent; missing segments
        (already gone however improbably) are ignored — after this call
        no name created by the arena exists on the system."""
        self.release(list(self._segments))

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *_exc) -> None:
        self.destroy()


__all__ = ["ShmArena", "ShmArrayRef", "ShmAttachError", "attached"]
