"""JSONL result store.

Every executed job appends one self-describing record: the job's identity
(``job_id``, label, method, shape), its outcome (converged, sweeps, cycle
counts, error), the :class:`~repro.sim.metrics.RunMetrics` summary, the
observability stamps (``timings``, ``tier``, ``duration_s``), and whether
its program came from the cache.  Records are written with sorted keys so
identical runs produce byte-identical lines — *after* projecting out the
:data:`VOLATILE_KEYS`, the wall-clock measurements that legitimately vary
run to run.  Re-running a sweep and comparing the stores' canonical
projections (:meth:`ResultStore.canonical_lines` /
:meth:`ResultStore.digest`) is the reproducibility check.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping

#: Record keys that hold wall-clock measurements: identical reruns differ
#: here and nowhere else, so the reproducibility compare drops them.
#: (``tier`` is *not* volatile — which tier runs is deterministic for a
#: given job and backend.)
VOLATILE_KEYS = ("duration_s", "timings")


def canonical_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The record minus its :data:`VOLATILE_KEYS` — what two runs of the
    same job must agree on, byte for byte."""
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}


def canonical_line(record: Mapping[str, Any]) -> str:
    """The sorted-keys JSON line of :func:`canonical_record`."""
    return json.dumps(canonical_record(record), sort_keys=True)


class ResultStore:
    """Append-only JSONL file of job records."""

    def __init__(self, path: str) -> None:
        self.path = Path(path)

    def append(self, record: Mapping[str, Any]) -> None:
        self.extend([record])

    def extend(self, records: List[Mapping[str, Any]]) -> None:
        """Append a batch in one write, so its records land contiguously."""
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(dict(record), sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def load(self) -> List[Dict[str, Any]]:
        """All records in append order; missing file reads as empty."""
        if not self.path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    def records_for(self, job_id: str) -> List[Dict[str, Any]]:
        return [r for r in self.load() if r.get("job_id") == job_id]

    def latest_by_job(self) -> Dict[str, Dict[str, Any]]:
        """Most recent record per job_id (later lines win)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.load():
            job_id = record.get("job_id")
            if job_id:
                latest[job_id] = record
        return latest

    # ------------------------------------------------------------------
    # reproducibility projection
    # ------------------------------------------------------------------
    def canonical_lines(self) -> List[str]:
        """Every record as its volatile-free sorted-keys JSON line."""
        return [canonical_line(record) for record in self.load()]

    def digest(self) -> str:
        """SHA-256 over the canonical lines — two runs of the same sweep
        must produce equal digests, whatever their timings measured."""
        h = hashlib.sha256()
        for line in self.canonical_lines():
            h.update(line.encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.load())


__all__ = [
    "ResultStore",
    "VOLATILE_KEYS",
    "canonical_record",
    "canonical_line",
]
