"""JSONL result store.

Every executed job appends one self-describing record: the job's identity
(``job_id``, label, method, shape), its outcome (converged, sweeps, cycle
counts, error), the :class:`~repro.sim.metrics.RunMetrics` summary, the
observability stamps (``timings``, ``tier``, ``duration_s``), and whether
its program came from the cache.  Records are written with sorted keys so
identical runs produce byte-identical lines — *after* projecting out the
:data:`VOLATILE_KEYS`, the wall-clock measurements that legitimately vary
run to run.  Re-running a sweep and comparing the stores' canonical
projections (:meth:`ResultStore.canonical_lines` /
:meth:`ResultStore.digest`) is the reproducibility check.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

try:  # POSIX advisory locking; absent on some platforms (see extend)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Record keys that legitimately vary between runs of the same sweep, so
#: the reproducibility compare drops them.  ``duration_s``/``timings``
#: are wall-clock measurements; the reliability stamps record *how* a
#: record got here, not *what* the job computed: ``attempts`` and
#: ``retry_reasons`` depend on which faults a run met, ``resumed`` on
#: whether ``--resume`` filled the record in, and ``transport_fallback``
#: on whether shm had to demote to pickling — none of which may change
#: the simulation's output (the chaos suite asserts exactly that), and
#: ``checker`` on how a compile earned its trust (ran the dynamic
#: checker, skipped via the verified registry, or statically analyzed
#: under ``run_checker="static"``) — the analysis suite pins
#: static-vs-always digest identity through exactly this exclusion.
#: (``tier`` is *not* volatile — which tier runs is deterministic for a
#: given job and backend.)
VOLATILE_KEYS = (
    "duration_s",
    "timings",
    "attempts",
    "retry_reasons",
    "resumed",
    "transport_fallback",
    "checker",
)


def canonical_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The record minus its :data:`VOLATILE_KEYS` — what two runs of the
    same job must agree on, byte for byte."""
    return {k: v for k, v in record.items() if k not in VOLATILE_KEYS}


def canonical_line(record: Mapping[str, Any]) -> str:
    """The sorted-keys JSON line of :func:`canonical_record`."""
    return json.dumps(canonical_record(record), sort_keys=True)


class ResultStore:
    """Append-only JSONL file of job records.

    Appends are *newline-atomic*: each :meth:`extend` call is a single
    ``write`` of complete ``line\\n`` units followed by a flush, so a
    process killed mid-append can leave at most one partial trailing
    line — never an interleaved or headless one.  :meth:`load` tolerates
    that partial tail (and any undecodable line) by skipping it with a
    warning, remembering the most recent partial tail in
    :attr:`truncated_tail`, and the next append starts on a fresh line
    even after a torn tail.  This is what makes the store a safe
    checkpoint target for ``BatchRunner(resume=True)``.
    """

    def __init__(self, path: str) -> None:
        self.path = Path(path)
        #: the partial trailing line the most recent :meth:`load` skipped
        #: (evidence of a crash mid-append), or None when the file was
        #: clean
        self.truncated_tail: Optional[str] = None

    def append(self, record: Mapping[str, Any]) -> None:
        self.extend([record])

    def extend(self, records: List[Mapping[str, Any]]) -> None:
        """Append a batch in one write, so its records land contiguously
        and a kill between calls can never tear an individual line.

        Appends take an exclusive advisory lock (``flock``) on the store
        file for the duration of the write: a payload larger than the io
        buffer flushes as several ``write(2)`` calls, which two
        concurrent unlocked appenders could interleave into a torn line.
        The lock serializes whole appends instead, so independent
        writers — two sweeps sharing a store, the serve daemon next to
        an offline batch — can never corrupt each other's records.  On
        platforms without ``fcntl`` the store falls back to the old
        single-write behavior (same-process writers remain safe; the
        serve daemon additionally serializes all appends through its
        single runner thread).
        """
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(
            json.dumps(dict(record), sort_keys=True) + "\n"
            for record in records
        )
        with open(self.path, "a", encoding="utf-8") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                # the torn-tail probe must run under the lock: another
                # writer may have healed (or torn) the tail since this
                # process last looked
                if self._tail_is_torn():
                    # a previous writer died mid-line: terminate its
                    # partial tail so our records start on a line of
                    # their own
                    payload = "\n" + payload
                fh.write(payload)
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _tail_is_torn(self) -> bool:
        """Does the file end mid-line (last byte not a newline)?"""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False  # missing or empty file: nothing torn

    # ------------------------------------------------------------------
    def load(self) -> List[Dict[str, Any]]:
        """All records in append order; missing file reads as empty.

        Undecodable lines are skipped with a warning rather than sinking
        the load — a partial trailing line is the signature of a writer
        killed mid-append and is additionally remembered in
        :attr:`truncated_tail` so resume logic can report it.
        """
        self.truncated_tail = None
        if not self.path.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as fh:
            raw = fh.read()
        lines = raw.split("\n")
        records: List[Dict[str, Any]] = []
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    # no trailing newline: a write died mid-record
                    self.truncated_tail = line
                    warnings.warn(
                        f"{self.path}: skipping truncated trailing "
                        f"record ({len(line)} bytes) — a writer was "
                        f"killed mid-append",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    warnings.warn(
                        f"{self.path}: skipping undecodable line "
                        f"{position + 1}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        return records

    def records_for(self, job_id: str) -> List[Dict[str, Any]]:
        return [r for r in self.load() if r.get("job_id") == job_id]

    def latest_by_job(self) -> Dict[str, Dict[str, Any]]:
        """Most recent record per job_id (later lines win)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.load():
            job_id = record.get("job_id")
            if job_id:
                latest[job_id] = record
        return latest

    # ------------------------------------------------------------------
    # reproducibility projection
    # ------------------------------------------------------------------
    def canonical_lines(self) -> List[str]:
        """Every record as its volatile-free sorted-keys JSON line."""
        return [canonical_line(record) for record in self.load()]

    def digest(self) -> str:
        """SHA-256 over the canonical lines — two runs of the same sweep
        must produce equal digests, whatever their timings measured."""
        h = hashlib.sha256()
        for line in self.canonical_lines():
            h.update(line.encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.load())


__all__ = [
    "ResultStore",
    "VOLATILE_KEYS",
    "canonical_record",
    "canonical_line",
]
