"""JSONL result store.

Every executed job appends one self-describing record: the job's identity
(``job_id``, label, method, shape), its outcome (converged, sweeps, cycle
counts, error), the :class:`~repro.sim.metrics.RunMetrics` summary, and
whether its program came from the cache.  Records are written with sorted
keys so identical runs produce byte-identical lines — re-running a sweep
and diffing the store is the reproducibility check.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping


class ResultStore:
    """Append-only JSONL file of job records."""

    def __init__(self, path: str) -> None:
        self.path = Path(path)

    def append(self, record: Mapping[str, Any]) -> None:
        self.extend([record])

    def extend(self, records: List[Mapping[str, Any]]) -> None:
        """Append a batch in one write, so its records land contiguously."""
        if not records:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(dict(record), sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    def load(self) -> List[Dict[str, Any]]:
        """All records in append order; missing file reads as empty."""
        if not self.path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    def records_for(self, job_id: str) -> List[Dict[str, Any]]:
        return [r for r in self.load() if r.get("job_id") == job_id]

    def latest_by_job(self) -> Dict[str, Dict[str, Any]]:
        """Most recent record per job_id (later lines win)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for record in self.load():
            job_id = record.get("job_id")
            if job_id:
                latest[job_id] = record
        return latest

    def __len__(self) -> int:
        return len(self.load())


__all__ = ["ResultStore"]
